//! Offline vendored subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so this crate provides a
//! small wall-clock benchmarking harness with `criterion`'s calling
//! conventions: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Each benchmark is calibrated so a sample takes a few milliseconds, then
//! timed over `sample_size` samples; the mean, minimum, and maximum
//! nanoseconds per iteration are printed and kept in
//! [`Criterion::results`] so callers can post-process measurements (the
//! workspace's `par_dsv` bench turns them into `BENCH_par_dsv.json`).

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/name` or `group/name/param`).
    pub id: String,
    /// Mean nanoseconds per iteration across samples.
    pub mean_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: f64,
    /// Iterations per sample chosen by calibration.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
}

/// Benchmark identifier combining a function name and an optional
/// parameter, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id with both a function name and a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the harness-chosen number of iterations and
    /// records the total elapsed wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// How long to aim each measured sample at, after calibration.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);
const DEFAULT_SAMPLE_SIZE: usize = 20;

fn run_one(id: &str, sample_size: usize, mut routine: impl FnMut(&mut Bencher)) -> BenchResult {
    // Calibration: one iteration to size the per-sample batch.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample = (TARGET_SAMPLE.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter_ns = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    let mean_ns = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    let min_ns = per_iter_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_ns = per_iter_ns.iter().cloned().fold(0.0, f64::max);
    let result = BenchResult {
        id: id.to_string(),
        mean_ns,
        min_ns,
        max_ns,
        iters_per_sample,
        samples: per_iter_ns.len(),
    };
    println!(
        "bench {id:<50} mean {:>12.1} ns/iter  (min {:.1}, max {:.1}, {}x{} iters)",
        result.mean_ns, result.min_ns, result.max_ns, result.samples, result.iters_per_sample
    );
    result
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, routine: R) -> &mut Self {
        let result = run_one(id, DEFAULT_SAMPLE_SIZE, routine);
        self.results.push(result);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// All measurements taken so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the closing summary line.
    pub fn final_summary(&self) {
        println!("{} benchmarks measured", self.results.len());
    }
}

/// A group of related benchmarks sharing an id prefix and configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides how many samples each benchmark in the group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API compatibility; the vendored harness always sizes
    /// samples by calibration rather than a fixed measurement window.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, routine: R) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let result = run_one(&full, self.sample_size, routine);
        self.criterion.results.push(result);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.label);
        let result = run_one(&full, self.sample_size, |b| routine(b, input));
        self.criterion.results.push(result);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, `criterion`-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        {
            let mut group = c.benchmark_group("grp");
            group.sample_size(5);
            group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            group.finish();
        }
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[0].id, "noop");
        assert_eq!(c.results()[1].id, "grp/sum/10");
        assert!(c.results().iter().all(|r| r.mean_ns > 0.0));
    }
}
