//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate provides a
//! deterministic property-testing harness covering the forms this
//! workspace uses:
//!
//! * `proptest! { ... }` blocks with `x in strategy` and `x: Type` params,
//!   an optional `#![proptest_config(...)]` inner attribute, and the
//!   caller-supplied `#[test]` attribute re-emitted as-is;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`;
//! * range strategies (`Range` / `RangeInclusive` over ints and floats)
//!   and `proptest::collection::vec`.
//!
//! Differences from upstream: no shrinking (failures report the raw
//! values), and case generation is a fixed deterministic schedule (case
//! index → seed), so failures always reproduce.

/// Strategy abstraction: something that can generate values.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A source of generated values for one proptest parameter.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: Clone,
        Range<T>: rand::SampleRange<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.inner().gen_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: Clone,
        RangeInclusive<T>: rand::SampleRange<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.inner().gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident => $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    // Left-to-right field order, matching upstream.
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A => 0, B => 1);
    tuple_strategy!(A => 0, B => 1, C => 2);
    tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
}

/// Test-runner configuration and deterministic per-case RNG.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Number of generated cases per property (subset of upstream's
    /// configuration surface).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many cases to generate and check.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Overrides the number of generated cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Lower than upstream's 256: this harness always runs the same
            // deterministic schedule, and the workspace's properties hold
            // for every input rather than relying on rare cases.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG for one generated case.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Builds the RNG for case number `case` — a fixed mapping, so any
        /// failure reproduces on every run.
        pub fn for_case(case: u32) -> Self {
            TestRng(StdRng::seed_from_u64(
                0x70726F_70746573u64 ^ ((case as u64) << 17),
            ))
        }

        /// Accesses the underlying generator.
        pub fn inner(&mut self) -> &mut StdRng {
            &mut self.0
        }
    }
}

/// `any::<T>()` support for `x: Type` parameters.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain generation strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.inner().gen::<u64>() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.inner().gen::<bool>()
        }
    }

    /// Strategy generating any value of `T` (see [`any`]).
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A vector length specification: fixed or ranged.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.inner().gen_range(self.size.min..=self.size.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Builds a strategy for vectors whose elements come from `element`
    /// and whose length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The usual glob import for proptest consumers.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the current case (returns `Err` from the property body) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::core::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} ({})",
                ::core::stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Fails the current case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                __l,
                __r
            ));
        }
    }};
}

/// Fails the current case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} != {} (both {:?})",
                ::core::stringify!($left),
                ::core::stringify!($right),
                __l
            ));
        }
    }};
}

/// Declares property tests. Accepts an optional
/// `#![proptest_config(...)]` inner attribute followed by `fn` items whose
/// parameters are either `name in strategy` or `name: Type`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one `fn` item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    // `name in strategy` parameters.
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($p:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_run!(($cfg); ($($p),+); ($($strat),+); $body);
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    // `name: Type` parameters.
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($p:ident : $ty:ty),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_run!(($cfg); ($($p),+); ($($crate::arbitrary::any::<$ty>()),+); $body);
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Implementation detail of [`proptest!`]: the per-case loop.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    (($cfg:expr); ($($p:ident),+); ($($strat:expr),+); $body:block) => {{
        let __cfg: $crate::test_runner::ProptestConfig = $cfg;
        for __case in 0..__cfg.cases {
            let mut __rng = $crate::test_runner::TestRng::for_case(__case);
            $(let $p = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
            let mut __described = ::std::string::String::new();
            $(__described.push_str(&::std::format!(
                "{} = {:?}; ",
                ::core::stringify!($p),
                &$p
            ));)+
            let __outcome: ::core::result::Result<(), ::std::string::String> = (move || {
                $body
                ::core::result::Result::Ok(())
            })();
            if let ::core::result::Result::Err(__msg) = __outcome {
                ::core::panic!(
                    "proptest case {}/{} failed: {}\n  inputs: {}",
                    __case + 1,
                    __cfg.cases,
                    __msg,
                    __described
                );
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 10u64..20, y in -1.0f64..=1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1.0..=1.0).contains(&y));
        }

        #[test]
        fn typed_params_generate(a: u16, b: u16) {
            prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0u32..100, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|e| *e < 100));
        }

        #[test]
        fn fixed_len_vec(v in crate::collection::vec(0u32..10, 5usize)) {
            prop_assert_eq!(v.len(), 5);
        }
    }

    #[test]
    fn failures_report_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[allow(unused)]
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("inputs: x ="), "{msg}");
    }

    #[test]
    fn schedule_is_deterministic() {
        use crate::strategy::Strategy;
        let draw = || {
            let mut rng = crate::test_runner::TestRng::for_case(3);
            (0u64..1000).generate(&mut rng)
        };
        assert_eq!(draw(), draw());
    }
}
