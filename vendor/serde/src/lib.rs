//! Offline vendored subset of the `serde` API.
//!
//! The build environment has no network access, so this workspace ships a
//! minimal serde replacement built around an explicit [`Value`] tree
//! instead of upstream's visitor architecture:
//!
//! * [`Serialize`] converts a type **to** a [`Value`];
//! * [`Deserialize`] reconstructs a type **from** a [`Value`];
//! * the companion `serde_derive` crate derives both for plain structs
//!   and enums (externally-tagged, matching `serde_json`'s default
//!   representation), honouring `#[serde(transparent)]` and
//!   `#[serde(skip)]`;
//! * the companion `serde_json` crate renders a [`Value`] to JSON text
//!   and parses it back.
//!
//! Only self-consistency (round-tripping through `serde_json`) is
//! guaranteed; the wire format is standard JSON but no compatibility with
//! upstream serde internals is implied.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped tree.
///
/// Maps preserve insertion order (they are association lists, not hash
/// maps) so serialization output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of `Option::None` and missing fields).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (only produced for negative values or signed sources).
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (JSON array).
    Seq(Vec<Value>),
    /// Ordered key/value map (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Returns the map entries if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the elements if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the string if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// First-match lookup in a map value's association list.
pub fn map_get<'v>(map: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Error produced when a [`Value`] does not match the shape a
/// [`Deserialize`] implementation expects (or when JSON text is malformed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion of a value into the serde data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Reconstruction of a value from the serde data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

unsigned_impl!(u8, u16, u32, u64, usize);

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match v {
                    Value::I64(i) => *i,
                    Value::U64(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom("integer out of i64 range"))?,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64, isize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(u) => Ok(*u as $t),
                    Value::I64(i) => Ok(*i as $t),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(Deserialize::from_value).collect(),
            _ => Err(Error::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_seq().ok_or_else(|| Error::custom("expected sequence"))?;
        let items: Vec<T> = s.iter().map(Deserialize::from_value).collect::<Result<_, _>>()?;
        <[T; N]>::try_from(items).map_err(|_| Error::custom("wrong array length"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected map")),
        }
    }
}

macro_rules! tuple_impl {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::custom("expected tuple sequence"))?;
                let expected = [$(stringify!($idx)),+].len();
                if s.len() != expected {
                    return Err(Error::custom("wrong tuple length"));
                }
                Ok(($($t::from_value(&s[$idx])?,)+))
            }
        }
    )*};
}

tuple_impl! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.25f64.to_value()).unwrap(), 1.25);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<(f64, f64)>> = vec![Some((1.0, 2.0)), None];
        let back = Vec::<Option<(f64, f64)>>::from_value(&v.to_value()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn string_keyed_maps_round_trip_in_key_order() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("b".to_string(), 2u64);
        m.insert("a".to_string(), 1u64);
        let v = m.to_value();
        assert_eq!(v.as_map().unwrap()[0].0, "a", "BTreeMap iterates sorted");
        let back = std::collections::BTreeMap::<String, u64>::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn shape_mismatch_errors() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(bool::from_value(&Value::Null).is_err());
    }
}
