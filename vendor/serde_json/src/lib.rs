//! Offline vendored subset of the `serde_json` API.
//!
//! Renders the vendored `serde::Value` tree to JSON text and parses it
//! back. Floats are written with Rust's shortest-round-trip `{:?}`
//! formatting, so every finite `f64` survives `to_string` → `from_str`
//! bit-exactly. Non-finite floats serialize as `null` (as in upstream
//! `serde_json`).

use serde::{Deserialize, Serialize, Value};

/// Error type shared with the vendored `serde` crate.
pub type Error = serde::Error;

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible in this vendored implementation; the `Result` is kept for
/// API compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (two-space indent).
///
/// # Errors
///
/// Infallible in this vendored implementation; the `Result` is kept for
/// API compatibility.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or on a shape mismatch between
/// the parsed value and `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` is Rust's shortest representation that round-trips the
        // exact bit pattern, and always includes a `.0` or exponent so the
        // token re-parses as a float.
        out.push_str(&format!("{f:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn push_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_value_pretty(out: &mut String, v: &Value, depth: usize) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_indent(out, depth + 1);
                write_value_pretty(out, item, depth + 1);
            }
            push_indent(out, depth);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_indent(out, depth + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_value_pretty(out, val, depth + 1);
            }
            push_indent(out, depth);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.error("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.error("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                    return text
                        .parse::<i64>()
                        .map(Value::I64)
                        .map_err(|_| self.error("integer out of range"));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.error("invalid number"))
    }

    fn parse_seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

fn parse(s: &str) -> Result<Value> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(from_str::<u64>(&to_string(&42u64).unwrap()).unwrap(), 42);
        assert_eq!(from_str::<i64>(&to_string(&-3i64).unwrap()).unwrap(), -3);
        assert_eq!(from_str::<bool>(&to_string(&true).unwrap()).unwrap(), true);
        let s = "line\n\"quoted\" \\ tab\t✓".to_string();
        assert_eq!(from_str::<String>(&to_string(&s).unwrap()).unwrap(), s);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for f in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-7, 0.0] {
            let back: f64 = from_str(&to_string(&f).unwrap()).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f}");
        }
    }

    #[test]
    fn large_u64_round_trips() {
        let v = u64::MAX - 3;
        assert_eq!(from_str::<u64>(&to_string(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<(f64, f64)>> = vec![Some((1.5, -2.25)), None, Some((0.0, 3.0))];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Option<(f64, f64)>>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_reparses() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
