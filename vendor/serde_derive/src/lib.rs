//! Offline vendored `serde_derive`: derives the vendored `serde` crate's
//! `Serialize` / `Deserialize` traits (a `Value`-tree data model) for
//! non-generic structs and enums.
//!
//! The build environment has no crates.io access, so this macro parses the
//! item's raw `TokenStream` directly instead of depending on `syn`/`quote`.
//! Supported shapes — which cover every derived type in this workspace:
//!
//! * named-field structs, tuple structs, unit structs;
//! * enums with unit, newtype, tuple, and struct variants
//!   (externally tagged, `serde_json`-style);
//! * `#[serde(transparent)]` on single-field structs;
//! * `#[serde(skip)]` on named fields (omitted when serializing,
//!   `Default::default()` when deserializing);
//! * `#[serde(default)]` on named fields (absent map entries deserialize
//!   via `Default::default()` instead of erroring);
//! * `#[serde(skip_serializing_if = "path")]` on named fields (the entry
//!   is omitted from the serialized map when `path(&field)` is true; the
//!   path is resolved in the deriving module, as with real serde).

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` (conversion to `serde::Value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives the vendored `serde::Deserialize` (reconstruction from `serde::Value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated impl parses")
}

struct Field {
    name: String,
    skip: bool,
    /// Absent map entries deserialize as `Default::default()`.
    default: bool,
    /// Serialization predicate path: the entry is omitted when
    /// `path(&field)` returns true.
    skip_if: Option<String>,
}

enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<Field>),
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    transparent: bool,
    kind: Kind,
}

/// Returns the serde helper entries carried by an attribute's bracket
/// group — bare idents (`transparent`, `skip`, `default`) paired with
/// `None`, and `ident = "literal"` assignments (`skip_serializing_if`)
/// paired with the literal's unquoted content. Empty for non-serde
/// attributes.
fn serde_attr_idents(group: &Group) -> Vec<(String, Option<String>)> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let args = match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream().into_iter().collect::<Vec<TokenTree>>()
        }
        _ => return Vec::new(),
    };
    let mut entries = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let TokenTree::Ident(id) = &args[i] {
            let name = id.to_string();
            let value = match (args.get(i + 1), args.get(i + 2)) {
                (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                    if eq.as_char() == '=' =>
                {
                    i += 2;
                    Some(lit.to_string().trim_matches('"').to_string())
                }
                _ => None,
            };
            entries.push((name, value));
        }
        i += 1;
    }
    entries
}

/// Consumes leading `#[...]` attributes starting at `*i`, collecting any
/// serde helper entries found in them.
fn eat_attrs(toks: &[TokenTree], i: &mut usize) -> Vec<(String, Option<String>)> {
    let mut idents = Vec::new();
    while let Some(TokenTree::Punct(p)) = toks.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
            idents.extend(serde_attr_idents(g));
            *i += 2;
        } else {
            break;
        }
    }
    idents
}

/// Consumes an optional `pub` / `pub(...)` visibility at `*i`.
fn eat_visibility(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Advances `*i` past one type (or expression), stopping at a `,` that sits
/// outside every `<...>` pair. Shift tokens (`>>`) arrive as two `>` puncts
/// so plain depth counting is sufficient.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut depth: i32 = 0;
    while let Some(tok) = toks.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1; // consume the separator
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(group: &Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let attrs = eat_attrs(&toks, &mut i);
        eat_visibility(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected field name, found {other:?}"),
        };
        i += 1; // field name
        i += 1; // ':'
        skip_type(&toks, &mut i);
        fields.push(Field {
            name,
            skip: attrs.iter().any(|(a, _)| a == "skip"),
            default: attrs.iter().any(|(a, _)| a == "default"),
            skip_if: attrs
                .iter()
                .find(|(a, _)| a == "skip_serializing_if")
                .and_then(|(_, v)| v.clone()),
        });
    }
    fields
}

fn count_tuple_fields(group: &Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < toks.len() {
        let attrs = eat_attrs(&toks, &mut i);
        assert!(
            !attrs.iter().any(|(a, _)| a == "skip"),
            "#[serde(skip)] on tuple fields is not supported by the vendored derive"
        );
        eat_visibility(&toks, &mut i);
        if i >= toks.len() {
            break; // trailing comma
        }
        skip_type(&toks, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(group: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        eat_attrs(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected variant name, found {other:?}"),
        };
        i += 1;
        let variant = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g);
                i += 1;
                Variant::Tuple(name, arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g);
                i += 1;
                Variant::Struct(name, fields)
            }
            _ => Variant::Unit(name),
        };
        variants.push(variant);
        // Consume the separating comma, if present.
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let attrs = eat_attrs(&toks, &mut i);
    let transparent = attrs.iter().any(|(a, _)| a == "transparent");
    eat_visibility(&toks, &mut i);
    let keyword = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        assert!(
            p.as_char() != '<',
            "the vendored serde derive does not support generic types ({name})"
        );
    }
    let kind = match keyword.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g))
            }
            other => panic!("expected enum body for {name}, found {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    };
    Item {
        name,
        transparent,
        kind,
    }
}

/// Map-building expression for a named-field body. `accessor_prefix` is
/// `"self."` for structs and `""` for variant bindings; `take_ref` adds a
/// leading `&` for struct accessors (variant bindings are already
/// references from the `match self` arm).
fn named_struct_to_value(fields: &[Field], accessor_prefix: &str, take_ref: bool) -> String {
    let amp = if take_ref { "&" } else { "" };
    if fields.iter().all(|f| f.skip_if.is_none()) {
        let mut out = String::from("::serde::Value::Map(vec![");
        for f in fields.iter().filter(|f| !f.skip) {
            out.push_str(&format!(
                "(\"{n}\".to_string(), ::serde::Serialize::to_value({amp}{p}{n})),",
                n = f.name,
                p = accessor_prefix,
            ));
        }
        out.push_str("])");
        return out;
    }
    // At least one field carries a serialization predicate: build the map
    // imperatively so predicated entries can be omitted at runtime.
    let mut out = String::from(
        "{ let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();",
    );
    for f in fields.iter().filter(|f| !f.skip) {
        let push = format!(
            "entries.push((\"{n}\".to_string(), ::serde::Serialize::to_value({amp}{p}{n})));",
            n = f.name,
            p = accessor_prefix,
        );
        match &f.skip_if {
            Some(path) => out.push_str(&format!(
                "if !{path}({amp}{p}{n}) {{ {push} }}",
                n = f.name,
                p = accessor_prefix,
            )),
            None => out.push_str(&push),
        }
    }
    out.push_str("::serde::Value::Map(entries) }");
    out
}

/// Field-init list reading each non-skipped field from map `m` (missing
/// entries read as `Null`, so `Option` fields tolerate omission) and
/// defaulting skipped fields.
fn named_struct_from_map(fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        if f.skip {
            out.push_str(&format!("{}: ::core::default::Default::default(),", f.name));
        } else if f.default {
            out.push_str(&format!(
                "{n}: match ::serde::map_get(m, \"{n}\") {{ \
                     ::core::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?, \
                     ::core::option::Option::None => ::core::default::Default::default(), \
                 }},",
                n = f.name,
            ));
        } else {
            out.push_str(&format!(
                "{n}: ::serde::Deserialize::from_value(::serde::map_get(m, \"{n}\").unwrap_or(&::serde::Value::Null))?,",
                n = f.name,
            ));
        }
    }
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if item.transparent {
                assert!(
                    live.len() == 1,
                    "#[serde(transparent)] requires exactly one field ({name})"
                );
                format!("::serde::Serialize::to_value(&self.{})", live[0].name)
            } else {
                named_struct_to_value(fields, "self.", true)
            }
        }
        Kind::TupleStruct(arity) => {
            if item.transparent || *arity == 1 {
                // Newtype structs serialize as their inner value, matching
                // serde_json's default newtype representation.
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", elems.join(","))
            }
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                    )),
                    Variant::Tuple(vn, arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", elems.join(","))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), {inner})]),",
                            binds = binds.join(","),
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        // Bindings carry the field names, so the shared
                        // struct body generator applies with no accessor
                        // prefix (predicates take `&binding`).
                        let inner = named_struct_to_value(fields, "", false);
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), {inner})]),",
                            binds = binds.join(","),
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if item.transparent {
                assert!(
                    live.len() == 1,
                    "#[serde(transparent)] requires exactly one field ({name})"
                );
                let mut inits = format!(
                    "{n}: ::serde::Deserialize::from_value(v)?,",
                    n = live[0].name
                );
                for f in fields.iter().filter(|f| f.skip) {
                    inits.push_str(&format!(
                        "{}: ::core::default::Default::default(),",
                        f.name
                    ));
                }
                format!("Ok({name} {{ {inits} }})")
            } else {
                format!(
                    "let m = v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for {name}\"))?;\
                     Ok({name} {{ {inits} }})",
                    inits = named_struct_from_map(fields),
                )
            }
        }
        Kind::TupleStruct(arity) => {
            if item.transparent || *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                    .collect();
                format!(
                    "let s = v.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected sequence for {name}\"))?;\
                     if s.len() != {arity} {{ return Err(::serde::Error::custom(\"wrong length for {name}\")); }}\
                     Ok({name}({elems}))",
                    elems = elems.join(","),
                )
            }
        }
        Kind::UnitStruct => format!("Ok({name})"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),"));
                    }
                    Variant::Tuple(vn, arity) => {
                        let ctor = if *arity == 1 {
                            format!("Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?))")
                        } else {
                            let elems: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                                .collect();
                            format!(
                                "{{ let s = inner.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected sequence for {name}::{vn}\"))?;\
                                 if s.len() != {arity} {{ return Err(::serde::Error::custom(\"wrong length for {name}::{vn}\")); }}\
                                 Ok({name}::{vn}({elems})) }}",
                                elems = elems.join(","),
                            )
                        };
                        tagged_arms.push_str(&format!("\"{vn}\" => {ctor},"));
                    }
                    Variant::Struct(vn, fields) => {
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ let m = inner.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for {name}::{vn}\"))?;\
                             Ok({name}::{vn} {{ {inits} }}) }},",
                            inits = named_struct_from_map(fields),
                        ));
                    }
                }
            }
            format!(
                "match v {{\
                     ::serde::Value::Str(tag) => match tag.as_str() {{\
                         {unit_arms}\
                         _ => Err(::serde::Error::custom(\"unknown unit variant for {name}\")),\
                     }},\
                     ::serde::Value::Map(m) if m.len() == 1 => {{\
                         let (tag, inner) = &m[0];\
                         match tag.as_str() {{\
                             {tagged_arms}\
                             _ => Err(::serde::Error::custom(\"unknown variant for {name}\")),\
                         }}\
                     }},\
                     _ => Err(::serde::Error::custom(\"expected variant encoding for {name}\")),\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
