//! Offline vendored subset of the `parking_lot` API.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free
//! interface: `lock()` / `read()` / `write()` return guards directly
//! instead of `Result`s. A poisoned std lock means a worker panicked
//! while holding it; propagating that panic (like upstream
//! `parking_lot`, which has no poisoning at all) is the behaviour the
//! execution layer wants.

use std::sync::{self, LockResult};

/// A mutual-exclusion lock with `parking_lot`'s panic-propagating,
/// poison-free locking interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

fn unpoison<G>(result: LockResult<G>) -> G {
    // A poisoned lock means another worker panicked; that panic is already
    // unwinding the scope, so the inner state is never observed torn.
    match result {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// A reader-writer lock with `parking_lot`'s poison-free interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
