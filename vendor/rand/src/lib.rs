//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access and no crates.io cache, so
//! this workspace ships a minimal, deterministic re-implementation of the
//! parts of `rand` it actually uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range` and `gen_bool`;
//! * [`SeedableRng`] with `from_seed` and `seed_from_u64`;
//! * [`rngs::StdRng`] — a xoshiro256++ generator seeded via SplitMix64;
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! The stream is **not** bit-compatible with upstream `rand`'s `StdRng`
//! (which is ChaCha12); every consumer in this workspace only relies on
//! seed-determinism, which this implementation guarantees: the same seed
//! always yields the same stream, on every platform.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, full range for integers, fair coin for bool).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// 53-bit precision uniform in `[0, 1)`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform sampling over a half-open integer span: `lo + next_u64 % span`.
///
/// Modulo introduces negligible bias for the spans this workspace uses and
/// keeps the draw count per sample fixed at one, which the deterministic
/// parallel layer relies on.
macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let u = f64::sample_standard(rng);
        lo + (hi - lo) * u
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let u = f32::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded through SplitMix64 exactly like upstream `rand`'s
    /// `seed_from_u64` convention.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is a fixed point of xoshiro; reseed through
            // SplitMix64 in that case.
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and selection.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle, consuming one draw per swap.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chooses one element, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(-8i16..=8);
            assert!((-8..=8).contains(&v));
            let u = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_inclusive_endpoints() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let run = || {
            let mut v: Vec<u32> = (0..32).collect();
            v.shuffle(&mut StdRng::seed_from_u64(9));
            v
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<u32>>());
        assert_ne!(a, sorted, "a 32-element shuffle virtually never sorts");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(10);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn from_seed_uses_raw_bytes() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        let mut a = StdRng::from_seed(seed);
        let mut b = StdRng::from_seed(seed);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
