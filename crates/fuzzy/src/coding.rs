//! The paper-specific fuzzy codings: WCR bands and trip-point encoding.
//!
//! Fig. 6 defines crisp worst-case-ratio bands — pass `0 ≤ WCR ≤ 0.8`,
//! weakness `0.8 < WCR ≤ 1`, fail `WCR > 1` — and §5 recommends encoding
//! measurement values through fuzzy variables instead ("D is quite close to
//! the limit of the target device-spec"). [`wcr_variable`] softens the
//! fig. 6 bands into overlapping trapezoids; [`TripPointCoder`] turns raw
//! trip-point measurements into the fuzzy target vectors the neural
//! network trains on, and back.

use crate::membership::MembershipFunction;
use crate::variable::LinguisticVariable;
use serde::{Deserialize, Serialize};

/// The fig. 6 worst-case-ratio bands as a fuzzy linguistic variable.
///
/// The transitions are deliberately broad (the pass→weakness ramp spans
/// WCR 0.6–0.9, centred on fig. 6's 0.8 edge): §5 wants the coding to say
/// "quite close to the limit" *gradually*, and a broad ramp lets the
/// neural committee rank tests within the nominally-passing band — which
/// is where almost all random training tests live.
///
/// # Examples
///
/// ```
/// use cichar_fuzzy::coding::wcr_variable;
///
/// let wcr = wcr_variable();
/// assert_eq!(wcr.best_term(0.619).0, "pass");     // Table 1, March
/// assert_eq!(wcr.best_term(0.904).0, "weakness"); // Table 1, NN+GA
/// assert_eq!(wcr.best_term(1.1).0, "fail");
/// ```
pub fn wcr_variable() -> LinguisticVariable {
    let mut v = LinguisticVariable::new("wcr", 0.0, 1.5);
    v.add_term(
        "pass",
        MembershipFunction::trapezoidal(0.0, 0.0, 0.6, 0.9),
    );
    v.add_term(
        "weakness",
        MembershipFunction::trapezoidal(0.6, 0.9, 0.95, 1.05),
    );
    v.add_term(
        "fail",
        MembershipFunction::trapezoidal(0.95, 1.05, 1.5, 1.5),
    );
    v
}

/// How trip-point measurements are encoded as NN targets.
///
/// §5 step (3): "trip point value coding using either fuzzy set data \[8\]
/// or simple numerical coding". Both options are implemented so the
/// ablation bench can compare them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodingScheme {
    /// One output neuron carrying the min-max-normalized trip point.
    Numeric,
    /// One output neuron per fuzzy term carrying its membership grade.
    Fuzzy,
}

/// Encodes trip-point values (via their WCR) into NN target vectors and
/// decodes predictions back into a scalar *severity*.
///
/// Severity is a single `[0, 1]` figure of merit — higher means closer to
/// (or beyond) the spec limit — so both coding schemes can be ranked by
/// the same downstream logic.
///
/// # Examples
///
/// ```
/// use cichar_fuzzy::coding::{CodingScheme, TripPointCoder};
///
/// let coder = TripPointCoder::new(CodingScheme::Fuzzy);
/// let target = coder.encode_wcr(0.904);
/// assert_eq!(target.len(), coder.target_width());
/// // The weakness neuron dominates at WCR 0.904.
/// assert!(target[1] > 0.9);
/// let severity = coder.severity(&target);
/// assert!(severity > 0.55 && severity < 0.95);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TripPointCoder {
    scheme: CodingScheme,
    variable: LinguisticVariable,
}

impl TripPointCoder {
    /// Creates a coder for the given scheme over the fig. 6 WCR bands.
    pub fn new(scheme: CodingScheme) -> Self {
        Self {
            scheme,
            variable: wcr_variable(),
        }
    }

    /// The active scheme.
    pub fn scheme(&self) -> CodingScheme {
        self.scheme
    }

    /// Width of the target vector this coder produces.
    pub fn target_width(&self) -> usize {
        match self.scheme {
            CodingScheme::Numeric => 1,
            CodingScheme::Fuzzy => self.variable.term_count(),
        }
    }

    /// Encodes a WCR value into an NN target vector.
    pub fn encode_wcr(&self, wcr: f64) -> Vec<f64> {
        match self.scheme {
            // WCR is already a ratio against the spec; the numeric channel
            // just clamps it into the unit interval scaled by the 1.5
            // universe end, so fail-region values stay distinguishable.
            CodingScheme::Numeric => vec![(wcr / 1.5).clamp(0.0, 1.0)],
            CodingScheme::Fuzzy => self.variable.grades(wcr),
        }
    }

    /// Collapses a prediction (or target) into scalar severity in `[0, 1]`.
    ///
    /// For fuzzy codings the severity is the grade-weighted mean of the
    /// band peaks normalized to the universe; for numeric codings it is
    /// the value itself.
    pub fn severity(&self, prediction: &[f64]) -> f64 {
        match self.scheme {
            CodingScheme::Numeric => prediction.first().copied().unwrap_or(0.0).clamp(0.0, 1.0),
            CodingScheme::Fuzzy => {
                let mut num = 0.0;
                let mut den = 0.0;
                for ((_, mf), &grade) in self.variable.terms().zip(prediction) {
                    num += mf.peak() * grade;
                    den += grade;
                }
                if den == 0.0 {
                    return 0.0;
                }
                let (lo, hi) = self.variable.universe();
                ((num / den - lo) / (hi - lo)).clamp(0.0, 1.0)
            }
        }
    }

    /// The fuzzy variable backing the coder.
    pub fn variable(&self) -> &LinguisticVariable {
        &self.variable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table1_rows_code_to_expected_bands() {
        let v = wcr_variable();
        assert_eq!(v.best_term(0.619).0, "pass");
        assert_eq!(v.best_term(0.701).0, "pass");
        assert_eq!(v.best_term(0.904).0, "weakness");
    }

    #[test]
    fn band_edges_are_fuzzy() {
        let v = wcr_variable();
        // At the centre of the pass→weakness ramp both terms hold 0.5.
        let at_edge = v.grades(0.75);
        assert!((at_edge[0] - 0.5).abs() < 1e-9, "{at_edge:?}");
        assert!((at_edge[1] - 0.5).abs() < 1e-9, "{at_edge:?}");
        assert_eq!(at_edge[2], 0.0);
    }

    #[test]
    fn pass_band_ramp_lets_the_committee_rank_passing_tests() {
        // Random training tests land around WCR 0.6–0.75; their fuzzy
        // grades must differ or the NN cannot order them.
        let v = wcr_variable();
        assert_ne!(v.grades(0.65), v.grades(0.72));
        assert!(v.grades(0.72)[1] > v.grades(0.65)[1]);
    }

    #[test]
    fn deep_in_band_coding_is_crisp() {
        let v = wcr_variable();
        assert_eq!(v.grades(0.5), vec![1.0, 0.0, 0.0]);
        assert_eq!(v.grades(0.9), vec![0.0, 1.0, 0.0]);
        assert_eq!(v.grades(1.2), vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn numeric_coder_is_single_channel() {
        let c = TripPointCoder::new(CodingScheme::Numeric);
        assert_eq!(c.target_width(), 1);
        assert_eq!(c.encode_wcr(0.75), vec![0.5]);
        assert_eq!(c.severity(&[0.5]), 0.5);
    }

    #[test]
    fn fuzzy_coder_width_matches_terms() {
        let c = TripPointCoder::new(CodingScheme::Fuzzy);
        assert_eq!(c.target_width(), 3);
    }

    #[test]
    fn severity_orders_bands() {
        let c = TripPointCoder::new(CodingScheme::Fuzzy);
        let pass = c.severity(&c.encode_wcr(0.5));
        let weak = c.severity(&c.encode_wcr(0.9));
        let fail = c.severity(&c.encode_wcr(1.2));
        assert!(pass < weak && weak < fail, "{pass} < {weak} < {fail}");
    }

    #[test]
    fn severity_of_zero_vector_is_zero() {
        let c = TripPointCoder::new(CodingScheme::Fuzzy);
        assert_eq!(c.severity(&[0.0, 0.0, 0.0]), 0.0);
        let n = TripPointCoder::new(CodingScheme::Numeric);
        assert_eq!(n.severity(&[]), 0.0);
    }

    proptest! {
        #[test]
        fn encodings_are_unit_bounded(wcr in 0.0f64..2.0) {
            for scheme in [CodingScheme::Numeric, CodingScheme::Fuzzy] {
                let c = TripPointCoder::new(scheme);
                for g in c.encode_wcr(wcr) {
                    prop_assert!((0.0..=1.0).contains(&g));
                }
                let s = c.severity(&c.encode_wcr(wcr));
                prop_assert!((0.0..=1.0).contains(&s));
            }
        }

        #[test]
        fn severity_is_monotone_in_wcr(a in 0.0f64..1.4, delta in 0.05f64..0.3) {
            for scheme in [CodingScheme::Numeric, CodingScheme::Fuzzy] {
                let c = TripPointCoder::new(scheme);
                let lo = c.severity(&c.encode_wcr(a));
                let hi = c.severity(&c.encode_wcr(a + delta));
                prop_assert!(hi >= lo - 1e-9, "{scheme:?}: {lo} then {hi}");
            }
        }
    }
}
