//! Linguistic variables: a universe of discourse plus named fuzzy terms.

use crate::membership::MembershipFunction;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A linguistic variable — e.g. *WCR* with terms `pass`, `weakness`,
/// `fail`, or *margin* with terms `wide`, `close to limit`.
///
/// # Examples
///
/// ```
/// use cichar_fuzzy::{LinguisticVariable, MembershipFunction};
///
/// let mut margin = LinguisticVariable::new("margin", 0.0, 15.0);
/// margin.add_term("tight", MembershipFunction::trapezoidal(0.0, 0.0, 2.0, 4.0));
/// margin.add_term("wide", MembershipFunction::trapezoidal(2.0, 4.0, 15.0, 15.0));
/// let grades = margin.fuzzify(3.0);
/// assert_eq!(grades.len(), 2);
/// let (best, _) = margin.best_term(1.0);
/// assert_eq!(best, "tight");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinguisticVariable {
    name: String,
    min: f64,
    max: f64,
    terms: Vec<(String, MembershipFunction)>,
}

impl LinguisticVariable {
    /// Creates a variable over the universe `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min >= max` or either bound is not finite.
    pub fn new(name: impl Into<String>, min: f64, max: f64) -> Self {
        assert!(
            min.is_finite() && max.is_finite() && min < max,
            "invalid universe [{min}, {max}]"
        );
        Self {
            name: name.into(),
            min,
            max,
            terms: Vec::new(),
        }
    }

    /// Adds a named term.
    ///
    /// # Panics
    ///
    /// Panics if the term name already exists.
    pub fn add_term(&mut self, term: impl Into<String>, mf: MembershipFunction) -> &mut Self {
        let term = term.into();
        assert!(
            self.term(&term).is_none(),
            "duplicate term {term:?} on {}",
            self.name
        );
        self.terms.push((term, mf));
        self
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Universe of discourse.
    pub fn universe(&self) -> (f64, f64) {
        (self.min, self.max)
    }

    /// The terms in insertion order.
    pub fn terms(&self) -> impl Iterator<Item = (&str, &MembershipFunction)> {
        self.terms.iter().map(|(n, f)| (n.as_str(), f))
    }

    /// Number of terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Looks up a term's membership function.
    pub fn term(&self, name: &str) -> Option<&MembershipFunction> {
        self.terms.iter().find(|(n, _)| n == name).map(|(_, f)| f)
    }

    /// Grades a crisp value against every term, in term order.
    ///
    /// The value is clamped into the universe first — measurements slightly
    /// outside the expected band still code to the nearest shoulder.
    pub fn fuzzify(&self, value: f64) -> Vec<(String, f64)> {
        let x = value.clamp(self.min, self.max);
        self.terms
            .iter()
            .map(|(n, f)| (n.clone(), f.grade(x)))
            .collect()
    }

    /// Membership grades only, term order — the NN's fuzzy target vector.
    pub fn grades(&self, value: f64) -> Vec<f64> {
        let x = value.clamp(self.min, self.max);
        self.terms.iter().map(|(_, f)| f.grade(x)).collect()
    }

    /// The term with the highest grade for `value`.
    ///
    /// # Panics
    ///
    /// Panics if the variable has no terms.
    pub fn best_term(&self, value: f64) -> (&str, f64) {
        assert!(!self.terms.is_empty(), "{} has no terms", self.name);
        let x = value.clamp(self.min, self.max);
        self.terms
            .iter()
            .map(|(n, f)| (n.as_str(), f.grade(x)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty terms")
    }
}

impl fmt::Display for LinguisticVariable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in [{}, {}] with {} terms",
            self.name,
            self.min,
            self.max,
            self.terms.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> LinguisticVariable {
        let mut v = LinguisticVariable::new("x", 0.0, 10.0);
        v.add_term("low", MembershipFunction::trapezoidal(0.0, 0.0, 2.0, 5.0));
        v.add_term("high", MembershipFunction::trapezoidal(2.0, 5.0, 10.0, 10.0));
        v
    }

    #[test]
    fn fuzzify_grades_every_term() {
        let v = demo();
        let g = v.fuzzify(3.5);
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].0, "low");
        assert!((g[0].1 - 0.5).abs() < 1e-12);
        assert!((g[1].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn values_outside_universe_clamp() {
        let v = demo();
        assert_eq!(v.best_term(-100.0).0, "low");
        assert_eq!(v.best_term(100.0).0, "high");
    }

    #[test]
    fn grades_align_with_terms() {
        let v = demo();
        let names: Vec<&str> = v.terms().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["low", "high"]);
        assert_eq!(v.grades(1.0), vec![1.0, 0.0]);
    }

    #[test]
    fn term_lookup() {
        let v = demo();
        assert!(v.term("low").is_some());
        assert!(v.term("medium").is_none());
        assert_eq!(v.term_count(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate term")]
    fn duplicate_terms_rejected() {
        let mut v = demo();
        v.add_term("low", MembershipFunction::gaussian(1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "invalid universe")]
    fn inverted_universe_rejected() {
        let _ = LinguisticVariable::new("x", 1.0, 1.0);
    }

    #[test]
    fn display_summarizes() {
        assert_eq!(demo().to_string(), "x in [0, 10] with 2 terms");
    }
}
