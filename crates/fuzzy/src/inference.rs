//! Mamdani inference: min-activation, max-aggregation, centroid defuzz.

use crate::variable::LinguisticVariable;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error raised during rule construction or inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuzzyError {
    /// A rule referenced a variable the rule set does not know.
    UnknownVariable(String),
    /// A rule referenced a term its variable does not define.
    UnknownTerm {
        /// The variable that was referenced.
        variable: String,
        /// The missing term.
        term: String,
    },
    /// Inference was invoked without a value for an input variable.
    MissingInput(String),
    /// The rule set has no rules.
    NoRules,
}

impl fmt::Display for FuzzyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzyError::UnknownVariable(v) => write!(f, "unknown variable {v:?}"),
            FuzzyError::UnknownTerm { variable, term } => {
                write!(f, "variable {variable:?} has no term {term:?}")
            }
            FuzzyError::MissingInput(v) => write!(f, "no input provided for {v:?}"),
            FuzzyError::NoRules => f.write_str("rule set is empty"),
        }
    }
}

impl Error for FuzzyError {}

/// One antecedent clause: `variable IS term`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Antecedent {
    /// Input variable name.
    pub variable: String,
    /// Term of that variable.
    pub term: String,
}

/// How a rule's clauses combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Connective {
    /// Fuzzy AND: the rule fires at the *minimum* clause grade.
    And,
    /// Fuzzy OR: the rule fires at the *maximum* clause grade.
    Or,
}

/// One Mamdani rule: `IF a AND/OR b AND/OR … THEN output IS term`.
///
/// AND-rules (min) match §5's example "if A and B and C, then D is quite
/// close to the limit"; OR-rules (max) express "any of these alone
/// suffices".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// The antecedent clauses.
    pub antecedents: Vec<Antecedent>,
    /// How the clauses combine.
    pub connective: Connective,
    /// Output term the rule asserts.
    pub consequent_term: String,
}

impl Rule {
    /// Builds an AND-rule from `(variable, term)` clauses and an output
    /// term.
    pub fn new(
        clauses: impl IntoIterator<Item = (impl Into<String>, impl Into<String>)>,
        consequent_term: impl Into<String>,
    ) -> Self {
        Self::with_connective(clauses, Connective::And, consequent_term)
    }

    /// Builds an OR-rule: any clause alone can fire it.
    pub fn any(
        clauses: impl IntoIterator<Item = (impl Into<String>, impl Into<String>)>,
        consequent_term: impl Into<String>,
    ) -> Self {
        Self::with_connective(clauses, Connective::Or, consequent_term)
    }

    /// Builds a rule with an explicit connective.
    pub fn with_connective(
        clauses: impl IntoIterator<Item = (impl Into<String>, impl Into<String>)>,
        connective: Connective,
        consequent_term: impl Into<String>,
    ) -> Self {
        Self {
            antecedents: clauses
                .into_iter()
                .map(|(v, t)| Antecedent {
                    variable: v.into(),
                    term: t.into(),
                })
                .collect(),
            connective,
            consequent_term: consequent_term.into(),
        }
    }
}

/// A Mamdani rule set over named input variables and one output variable.
///
/// # Examples
///
/// ```
/// use cichar_fuzzy::{LinguisticVariable, MembershipFunction, Rule, RuleSet};
///
/// let mut sso = LinguisticVariable::new("sso", 0.0, 1.0);
/// sso.add_term("low", MembershipFunction::trapezoidal(0.0, 0.0, 0.3, 0.6));
/// sso.add_term("high", MembershipFunction::trapezoidal(0.3, 0.6, 1.0, 1.0));
///
/// let mut risk = LinguisticVariable::new("risk", 0.0, 1.0);
/// risk.add_term("safe", MembershipFunction::triangular(0.0, 0.0, 0.6));
/// risk.add_term("critical", MembershipFunction::triangular(0.4, 1.0, 1.0));
///
/// let mut rules = RuleSet::new(vec![sso], risk);
/// rules.add_rule(Rule::new([("sso", "high")], "critical"))?;
/// rules.add_rule(Rule::new([("sso", "low")], "safe"))?;
///
/// let crisp = rules.infer(&[("sso", 0.9)])?;
/// assert!(crisp > 0.6, "high switching is critical, got {crisp}");
/// # Ok::<(), cichar_fuzzy::FuzzyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleSet {
    inputs: Vec<LinguisticVariable>,
    output: LinguisticVariable,
    rules: Vec<Rule>,
}

impl RuleSet {
    /// Number of samples for centroid integration.
    const DEFUZZ_SAMPLES: usize = 200;

    /// Creates a rule set over the given input variables and output.
    pub fn new(inputs: Vec<LinguisticVariable>, output: LinguisticVariable) -> Self {
        Self {
            inputs,
            output,
            rules: Vec::new(),
        }
    }

    /// The output variable.
    pub fn output(&self) -> &LinguisticVariable {
        &self.output
    }

    /// The rules added so far.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Adds a rule after validating every referenced variable and term.
    ///
    /// # Errors
    ///
    /// [`FuzzyError::UnknownVariable`] / [`FuzzyError::UnknownTerm`] when a
    /// clause references something undefined.
    pub fn add_rule(&mut self, rule: Rule) -> Result<(), FuzzyError> {
        for a in &rule.antecedents {
            let var = self
                .inputs
                .iter()
                .find(|v| v.name() == a.variable)
                .ok_or_else(|| FuzzyError::UnknownVariable(a.variable.clone()))?;
            if var.term(&a.term).is_none() {
                return Err(FuzzyError::UnknownTerm {
                    variable: a.variable.clone(),
                    term: a.term.clone(),
                });
            }
        }
        if self.output.term(&rule.consequent_term).is_none() {
            return Err(FuzzyError::UnknownTerm {
                variable: self.output.name().to_string(),
                term: rule.consequent_term.clone(),
            });
        }
        self.rules.push(rule);
        Ok(())
    }

    /// Runs Mamdani inference on crisp inputs and defuzzifies by centroid.
    ///
    /// # Errors
    ///
    /// [`FuzzyError::NoRules`] when empty, [`FuzzyError::MissingInput`]
    /// when a rule needs a variable the caller did not supply.
    pub fn infer(&self, crisp_inputs: &[(&str, f64)]) -> Result<f64, FuzzyError> {
        let activations = self.rule_activations(crisp_inputs)?;
        // Aggregate: clipped output membership, max across rules; centroid.
        let (lo, hi) = self.output.universe();
        let step = (hi - lo) / (Self::DEFUZZ_SAMPLES - 1) as f64;
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..Self::DEFUZZ_SAMPLES {
            let x = lo + step * i as f64;
            let mut mu: f64 = 0.0;
            for (rule, act) in self.rules.iter().zip(&activations) {
                let term = self
                    .output
                    .term(&rule.consequent_term)
                    .expect("validated at add_rule");
                mu = mu.max(act.min(term.grade(x)));
            }
            num += x * mu;
            den += mu;
        }
        if den == 0.0 {
            // No rule fired: fall back to the universe midpoint.
            return Ok(lo + (hi - lo) / 2.0);
        }
        Ok(num / den)
    }

    /// The activation level (fuzzy AND of clause grades) of each rule.
    ///
    /// # Errors
    ///
    /// Same as [`Self::infer`].
    pub fn rule_activations(&self, crisp_inputs: &[(&str, f64)]) -> Result<Vec<f64>, FuzzyError> {
        if self.rules.is_empty() {
            return Err(FuzzyError::NoRules);
        }
        let values: HashMap<&str, f64> = crisp_inputs.iter().copied().collect();
        self.rules
            .iter()
            .map(|rule| {
                let mut act: f64 = match rule.connective {
                    Connective::And => 1.0,
                    Connective::Or => 0.0,
                };
                for a in &rule.antecedents {
                    let &x = values
                        .get(a.variable.as_str())
                        .ok_or_else(|| FuzzyError::MissingInput(a.variable.clone()))?;
                    let var = self
                        .inputs
                        .iter()
                        .find(|v| v.name() == a.variable)
                        .expect("validated at add_rule");
                    let clamped = x.clamp(var.universe().0, var.universe().1);
                    let grade = var
                        .term(&a.term)
                        .expect("validated at add_rule")
                        .grade(clamped);
                    act = match rule.connective {
                        Connective::And => act.min(grade),
                        Connective::Or => act.max(grade),
                    };
                }
                Ok(act)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::MembershipFunction;

    fn build() -> RuleSet {
        let mut sso = LinguisticVariable::new("sso", 0.0, 1.0);
        sso.add_term("low", MembershipFunction::trapezoidal(0.0, 0.0, 0.3, 0.6));
        sso.add_term("high", MembershipFunction::trapezoidal(0.3, 0.6, 1.0, 1.0));
        let mut res = LinguisticVariable::new("resonance", 0.0, 1.0);
        res.add_term("off", MembershipFunction::trapezoidal(0.0, 0.0, 0.2, 0.5));
        res.add_term("on", MembershipFunction::trapezoidal(0.2, 0.5, 1.0, 1.0));
        let mut risk = LinguisticVariable::new("risk", 0.0, 1.0);
        risk.add_term("safe", MembershipFunction::triangular(0.0, 0.0, 0.5));
        risk.add_term("marginal", MembershipFunction::triangular(0.2, 0.5, 0.8));
        risk.add_term("critical", MembershipFunction::triangular(0.5, 1.0, 1.0));
        let mut rs = RuleSet::new(vec![sso, res], risk);
        // §5's canonical shape: if A and B then close-to-limit.
        rs.add_rule(Rule::new([("sso", "high"), ("resonance", "on")], "critical"))
            .expect("valid");
        rs.add_rule(Rule::new([("sso", "high"), ("resonance", "off")], "marginal"))
            .expect("valid");
        rs.add_rule(Rule::new([("sso", "low")], "safe")).expect("valid");
        rs
    }

    #[test]
    fn conjunction_drives_output_ordering() {
        let rs = build();
        let calm = rs.infer(&[("sso", 0.1), ("resonance", 0.1)]).expect("infers");
        let stressed = rs.infer(&[("sso", 0.9), ("resonance", 0.1)]).expect("infers");
        let critical = rs.infer(&[("sso", 0.9), ("resonance", 0.9)]).expect("infers");
        assert!(calm < stressed, "{calm} < {stressed}");
        assert!(stressed < critical, "{stressed} < {critical}");
        assert!(critical > 0.7);
        assert!(calm < 0.3);
    }

    #[test]
    fn or_rules_fire_on_any_clause() {
        let mut sso = LinguisticVariable::new("sso", 0.0, 1.0);
        sso.add_term("high", MembershipFunction::trapezoidal(0.3, 0.6, 1.0, 1.0));
        let mut res = LinguisticVariable::new("res", 0.0, 1.0);
        res.add_term("high", MembershipFunction::trapezoidal(0.3, 0.6, 1.0, 1.0));
        let mut risk = LinguisticVariable::new("risk", 0.0, 1.0);
        risk.add_term("hot", MembershipFunction::triangular(0.5, 1.0, 1.0));
        let mut rs = RuleSet::new(vec![sso, res], risk);
        rs.add_rule(Rule::any([("sso", "high"), ("res", "high")], "hot"))
            .expect("valid");
        // Only one clause is satisfied — an AND rule would stay silent.
        let acts = rs
            .rule_activations(&[("sso", 0.9), ("res", 0.0)])
            .expect("valid");
        assert_eq!(acts[0], 1.0);
        // Neither clause satisfied: the OR rule is quiet too.
        let acts = rs
            .rule_activations(&[("sso", 0.1), ("res", 0.0)])
            .expect("valid");
        assert_eq!(acts[0], 0.0);
    }

    #[test]
    fn connective_constructors_differ_only_in_connective() {
        let and_rule = Rule::new([("a", "x")], "y");
        let or_rule = Rule::any([("a", "x")], "y");
        assert_eq!(and_rule.connective, Connective::And);
        assert_eq!(or_rule.connective, Connective::Or);
        assert_eq!(and_rule.antecedents, or_rule.antecedents);
    }

    #[test]
    fn activations_use_min() {
        let rs = build();
        let acts = rs
            .rule_activations(&[("sso", 0.9), ("resonance", 0.35)])
            .expect("valid");
        // Rule 0 needs resonance=on (grade 0.5 at 0.35); sso=high is 1.0.
        assert!((acts[0] - 0.5).abs() < 1e-12, "{acts:?}");
    }

    #[test]
    fn unknown_references_are_rejected() {
        let mut rs = build();
        assert!(matches!(
            rs.add_rule(Rule::new([("nope", "high")], "safe")),
            Err(FuzzyError::UnknownVariable(_))
        ));
        assert!(matches!(
            rs.add_rule(Rule::new([("sso", "nope")], "safe")),
            Err(FuzzyError::UnknownTerm { .. })
        ));
        assert!(matches!(
            rs.add_rule(Rule::new([("sso", "low")], "nope")),
            Err(FuzzyError::UnknownTerm { .. })
        ));
    }

    #[test]
    fn missing_input_is_reported() {
        let rs = build();
        assert!(matches!(
            rs.infer(&[("sso", 0.9)]),
            Err(FuzzyError::MissingInput(_))
        ));
    }

    #[test]
    fn empty_rule_set_errors() {
        let out = LinguisticVariable::new("y", 0.0, 1.0);
        let rs = RuleSet::new(vec![], out);
        assert_eq!(rs.infer(&[]), Err(FuzzyError::NoRules));
    }

    #[test]
    fn no_firing_rule_returns_midpoint() {
        let mut x = LinguisticVariable::new("x", 0.0, 1.0);
        x.add_term("narrow", MembershipFunction::triangular(0.4, 0.5, 0.6));
        let mut y = LinguisticVariable::new("y", 0.0, 2.0);
        y.add_term("t", MembershipFunction::triangular(0.0, 1.0, 2.0));
        let mut rs = RuleSet::new(vec![x], y);
        rs.add_rule(Rule::new([("x", "narrow")], "t")).expect("valid");
        let out = rs.infer(&[("x", 0.0)]).expect("infers");
        assert_eq!(out, 1.0, "universe midpoint");
    }

    #[test]
    fn out_of_universe_inputs_clamp() {
        let rs = build();
        let a = rs.infer(&[("sso", 5.0), ("resonance", 5.0)]).expect("infers");
        let b = rs.infer(&[("sso", 1.0), ("resonance", 1.0)]).expect("infers");
        assert_eq!(a, b);
    }

    #[test]
    fn error_display_is_informative() {
        let e = FuzzyError::UnknownTerm {
            variable: "wcr".into(),
            term: "meh".into(),
        };
        assert!(e.to_string().contains("wcr") && e.to_string().contains("meh"));
    }
}
