//! Fuzzy set theory for trip-point coding.
//!
//! §5 of the paper: "we propose to use fuzzy set theory to encode the
//! characterization trip point information … we strongly recommend to use
//! fuzzy variables to encode measurement values as fuzzy logic can describe
//! more than one analysis parameter; such as *if A and B and C, then D is
//! quite close to the limit of the target device-spec*" (the paper cites
//! Bezdek \[8\] for the foundations).
//!
//! The crate provides the classic Mamdani stack —
//! [`MembershipFunction`]s, [`LinguisticVariable`]s, a [`RuleSet`] with
//! min/max inference and centroid defuzzification — plus [`coding`], the
//! paper-specific part: the worst-case-ratio bands of fig. 6 as a fuzzy
//! variable, and the trip-point coder used as the neural network's
//! fuzzy output encoding.
//!
//! # Examples
//!
//! ```
//! use cichar_fuzzy::coding::wcr_variable;
//!
//! let wcr = wcr_variable();
//! // WCR = 0.904 (the paper's NN+GA result) is solidly "weakness".
//! let (term, grade) = wcr.best_term(0.904);
//! assert_eq!(term, "weakness");
//! assert!(grade > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coding;
mod inference;
mod membership;
mod variable;

pub use inference::{Antecedent, Connective, FuzzyError, Rule, RuleSet};
pub use membership::MembershipFunction;
pub use variable::LinguisticVariable;
