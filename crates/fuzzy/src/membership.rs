//! Membership functions.

use serde::{Deserialize, Serialize};

/// A fuzzy membership function mapping a crisp value to a grade in
/// `[0, 1]`.
///
/// # Examples
///
/// ```
/// use cichar_fuzzy::MembershipFunction;
///
/// let near_limit = MembershipFunction::triangular(0.7, 0.9, 1.1);
/// assert_eq!(near_limit.grade(0.9), 1.0);
/// assert_eq!(near_limit.grade(0.5), 0.0);
/// assert!((near_limit.grade(0.8) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MembershipFunction {
    /// Triangle rising from `a` to a peak at `b`, falling to `c`.
    Triangular {
        /// Left foot.
        a: f64,
        /// Peak.
        b: f64,
        /// Right foot.
        c: f64,
    },
    /// Trapezoid: rises `a→b`, flat `b→c`, falls `c→d`. Degenerate edges
    /// (`a == b` or `c == d`) give crisp shoulders.
    Trapezoidal {
        /// Left foot.
        a: f64,
        /// Left shoulder.
        b: f64,
        /// Right shoulder.
        c: f64,
        /// Right foot.
        d: f64,
    },
    /// Gaussian bell centred on `mean`.
    Gaussian {
        /// Centre of the bell.
        mean: f64,
        /// Width (standard deviation); must be positive.
        sigma: f64,
    },
}

impl MembershipFunction {
    /// Triangle constructor with ordering validation.
    ///
    /// # Panics
    ///
    /// Panics unless `a <= b <= c` and `a < c`.
    pub fn triangular(a: f64, b: f64, c: f64) -> Self {
        assert!(a <= b && b <= c && a < c, "triangle needs a<=b<=c, a<c");
        Self::Triangular { a, b, c }
    }

    /// Trapezoid constructor with ordering validation.
    ///
    /// # Panics
    ///
    /// Panics unless `a <= b <= c <= d` and `a < d`.
    pub fn trapezoidal(a: f64, b: f64, c: f64, d: f64) -> Self {
        assert!(
            a <= b && b <= c && c <= d && a < d,
            "trapezoid needs a<=b<=c<=d, a<d"
        );
        Self::Trapezoidal { a, b, c, d }
    }

    /// Gaussian constructor.
    ///
    /// # Panics
    ///
    /// Panics unless `sigma > 0`.
    pub fn gaussian(mean: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "gaussian needs positive sigma");
        Self::Gaussian { mean, sigma }
    }

    /// Membership grade of a crisp value.
    pub fn grade(&self, x: f64) -> f64 {
        match *self {
            MembershipFunction::Triangular { a, b, c } => {
                if x <= a || x >= c {
                    // Closed peak: a degenerate shoulder still grades 1.
                    if (x == a && a == b) || (x == c && c == b) {
                        1.0
                    } else {
                        0.0
                    }
                } else if x < b {
                    (x - a) / (b - a)
                } else if x > b {
                    (c - x) / (c - b)
                } else {
                    1.0
                }
            }
            MembershipFunction::Trapezoidal { a, b, c, d } => {
                if (b..=c).contains(&x) {
                    1.0
                } else if x <= a || x >= d {
                    0.0
                } else if x < b {
                    (x - a) / (b - a)
                } else {
                    (d - x) / (d - c)
                }
            }
            MembershipFunction::Gaussian { mean, sigma } => {
                (-((x - mean).powi(2)) / (2.0 * sigma * sigma)).exp()
            }
        }
    }

    /// The crisp interval outside which the grade is (essentially) zero.
    pub fn support(&self) -> (f64, f64) {
        match *self {
            MembershipFunction::Triangular { a, c, .. } => (a, c),
            MembershipFunction::Trapezoidal { a, d, .. } => (a, d),
            MembershipFunction::Gaussian { mean, sigma } => (mean - 4.0 * sigma, mean + 4.0 * sigma),
        }
    }

    /// The value (or centre of the plateau) where the grade peaks.
    pub fn peak(&self) -> f64 {
        match *self {
            MembershipFunction::Triangular { b, .. } => b,
            MembershipFunction::Trapezoidal { b, c, .. } => b + (c - b) / 2.0,
            MembershipFunction::Gaussian { mean, .. } => mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn triangle_grades() {
        let t = MembershipFunction::triangular(0.0, 1.0, 2.0);
        assert_eq!(t.grade(-1.0), 0.0);
        assert_eq!(t.grade(0.5), 0.5);
        assert_eq!(t.grade(1.0), 1.0);
        assert_eq!(t.grade(1.5), 0.5);
        assert_eq!(t.grade(3.0), 0.0);
    }

    #[test]
    fn trapezoid_plateau_and_shoulders() {
        let t = MembershipFunction::trapezoidal(0.0, 1.0, 2.0, 4.0);
        assert_eq!(t.grade(1.5), 1.0);
        assert_eq!(t.grade(0.5), 0.5);
        assert_eq!(t.grade(3.0), 0.5);
        assert_eq!(t.grade(5.0), 0.0);
    }

    #[test]
    fn crisp_shoulder_trapezoid() {
        // a == b: a hard left edge, as used for the "pass" band's start.
        let t = MembershipFunction::trapezoidal(0.0, 0.0, 0.7, 0.85);
        assert_eq!(t.grade(0.0), 1.0);
        assert_eq!(t.grade(0.5), 1.0);
        assert!(t.grade(0.8) < 1.0);
    }

    #[test]
    fn gaussian_is_symmetric_and_peaked() {
        let g = MembershipFunction::gaussian(1.0, 0.2);
        assert_eq!(g.grade(1.0), 1.0);
        assert!((g.grade(0.8) - g.grade(1.2)).abs() < 1e-12);
        assert!(g.grade(2.0) < 0.001);
    }

    #[test]
    fn peaks_and_supports() {
        assert_eq!(MembershipFunction::triangular(0.0, 1.0, 2.0).peak(), 1.0);
        assert_eq!(
            MembershipFunction::trapezoidal(0.0, 1.0, 3.0, 4.0).peak(),
            2.0
        );
        let (lo, hi) = MembershipFunction::gaussian(0.0, 1.0).support();
        assert_eq!((lo, hi), (-4.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "triangle needs")]
    fn triangle_rejects_disorder() {
        let _ = MembershipFunction::triangular(2.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive sigma")]
    fn gaussian_rejects_zero_sigma() {
        let _ = MembershipFunction::gaussian(0.0, 0.0);
    }

    proptest! {
        #[test]
        fn grades_always_in_unit_interval(x in -10.0f64..10.0) {
            let fns = [
                MembershipFunction::triangular(-1.0, 0.0, 2.0),
                MembershipFunction::trapezoidal(-2.0, -1.0, 1.0, 3.0),
                MembershipFunction::gaussian(0.5, 0.7),
            ];
            for f in fns {
                let g = f.grade(x);
                prop_assert!((0.0..=1.0).contains(&g), "{f:?}({x}) = {g}");
            }
        }

        #[test]
        fn grade_peaks_at_peak(offset in 0.01f64..5.0) {
            let fns = [
                MembershipFunction::triangular(-1.0, 0.0, 2.0),
                MembershipFunction::gaussian(0.5, 0.7),
            ];
            for f in fns {
                let p = f.peak();
                prop_assert!(f.grade(p) >= f.grade(p + offset));
                prop_assert!(f.grade(p) >= f.grade(p - offset));
            }
        }
    }
}
