//! CLI tests for the repro binaries: every bad flag value or unwritable
//! observability destination must exit with status 2 and a clear
//! diagnostic *before* any measurement work starts, and `--timings`
//! must land a timing sidecar in the saved manifest.

use std::path::PathBuf;
use std::process::{Command, Output};

/// Runs the built `repro_fig2` binary with `args` and returns its output.
/// Fig. 2 is the cheapest repro, and all binaries share the same CLI
/// layer, so one binary exercises the whole flag surface.
fn run_fig2(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro_fig2"))
        .args(args)
        .env("CICHAR_SCALE", "quick")
        .output()
        .expect("repro_fig2 spawns")
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn bad_trace_path_exits_2_before_measuring() {
    let output = run_fig2(&["--trace", "/nonexistent_cichar_dir/out.jsonl"]);
    assert_eq!(output.status.code(), Some(2), "{}", stderr_of(&output));
    let stderr = stderr_of(&output);
    assert!(stderr.contains("--trace"), "{stderr}");
    assert!(
        output.stdout.is_empty(),
        "must fail eagerly, before any campaign output"
    );
}

#[test]
fn manifest_to_read_only_dir_exits_2() {
    // A directory with the write bit cleared: `ensure_writable` must
    // reject it up front. Skip (vacuously pass) when running as root,
    // where permission bits don't bind.
    let dir = std::env::temp_dir().join("cichar_cli_readonly");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let mut perms = std::fs::metadata(&dir).expect("metadata").permissions();
    perms.set_readonly(true);
    std::fs::set_permissions(&dir, perms.clone()).expect("chmod");
    let probe = dir.join("probe");
    let readonly_binds = std::fs::write(&probe, b"").is_err();
    let _ = std::fs::remove_file(&probe);
    if !readonly_binds {
        perms.set_readonly(false);
        let _ = std::fs::set_permissions(&dir, perms);
        eprintln!("skipping: read-only directories do not bind for this user");
        return;
    }

    let target: PathBuf = dir.join("manifest.json");
    let output = run_fig2(&["--manifest", target.to_str().expect("utf-8 path")]);

    perms.set_readonly(false);
    let _ = std::fs::set_permissions(&dir, perms);

    assert_eq!(output.status.code(), Some(2), "{}", stderr_of(&output));
    let stderr = stderr_of(&output);
    assert!(stderr.contains("--manifest"), "{stderr}");
}

#[test]
fn out_of_range_fault_rate_exits_2() {
    for rate in ["1.5", "-0.1", "nope"] {
        let output = run_fig2(&["--fault-rate", rate]);
        assert_eq!(output.status.code(), Some(2), "rate {rate}");
        let stderr = stderr_of(&output);
        assert!(stderr.contains("--fault-rate"), "{stderr}");
        assert!(stderr.contains("[0, 1)"), "{stderr}");
    }
}

#[test]
fn timings_flag_lands_the_sidecar_in_the_manifest() {
    let dir = std::env::temp_dir().join("cichar_cli_timings");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let timed_path = dir.join("timed.json");
    let plain_path = dir.join("plain.json");

    let timed = run_fig2(&["--manifest", timed_path.to_str().unwrap(), "--timings"]);
    assert_eq!(timed.status.code(), Some(0), "{}", stderr_of(&timed));
    let stdout = String::from_utf8_lossy(&timed.stdout).into_owned();
    assert!(stdout.contains("span timings"), "{stdout}");

    let plain = run_fig2(&["--manifest", plain_path.to_str().unwrap()]);
    assert_eq!(plain.status.code(), Some(0), "{}", stderr_of(&plain));

    let load = |path: &std::path::Path| -> cichar_trace::RunManifest {
        let text = std::fs::read_to_string(path).expect("manifest saved");
        serde_json::from_str(&text).expect("manifest parses")
    };
    let timed_manifest = load(&timed_path);
    let plain_manifest = load(&plain_path);
    let timings = timed_manifest.timings.as_ref().expect("sidecar captured");
    assert!(timings.spans() > 0);
    assert_eq!(plain_manifest.timings, None, "no sidecar without --timings");
    // Both manifests record the trip-point extrema the diff gate compares.
    for key in ["trip_min", "trip_max"] {
        for manifest in [&timed_manifest, &plain_manifest] {
            assert!(
                manifest.config.iter().any(|(k, _)| k == key),
                "{key} missing from {}", manifest.campaign
            );
        }
    }
}

/// Runs the built `repro_wafer` binary — the only repro that carries the
/// durability flag family (`--journal`, `--resume`, timeouts, breaker).
fn run_wafer(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro_wafer"))
        .args(args)
        .env("CICHAR_SCALE", "quick")
        .output()
        .expect("repro_wafer spawns")
}

#[test]
fn bad_durability_flags_exit_2_before_measuring() {
    for (args, needle) in [
        (&["--journal", ""][..], "--journal"),
        (&["--journal"][..], "--journal"),
        (&["--chunk-timeout-ms", "0"][..], "--chunk-timeout-ms"),
        (&["--chunk-timeout-ms", "-5"][..], "--chunk-timeout-ms"),
        (&["--chunk-timeout-ms=junk"][..], "--chunk-timeout-ms"),
        (&["--site-fault-threshold", "1.5"][..], "(0, 1]"),
        (&["--site-fault-threshold", "0"][..], "(0, 1]"),
        (&["--site-fault-threshold=nan"][..], "(0, 1]"),
        (&["--site-fault-threshold"][..], "--site-fault-threshold"),
    ] {
        let output = run_wafer(args);
        assert_eq!(output.status.code(), Some(2), "{args:?}: {}", stderr_of(&output));
        let stderr = stderr_of(&output);
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
        assert!(
            output.stdout.is_empty(),
            "{args:?}: must fail eagerly, before any campaign output"
        );
    }
}

#[test]
fn resume_without_a_journal_exits_2() {
    let output = run_wafer(&["--resume"]);
    assert_eq!(output.status.code(), Some(2), "{}", stderr_of(&output));
    let stderr = stderr_of(&output);
    assert!(stderr.contains("--resume requires --journal"), "{stderr}");
}

#[test]
fn resume_against_a_missing_journal_exits_1() {
    let dir = std::env::temp_dir().join("cichar_cli_missing_journal");
    let _ = std::fs::remove_dir_all(&dir);
    let output = run_wafer(&["--journal", dir.to_str().unwrap(), "--resume", "--dies", "8"]);
    assert_eq!(output.status.code(), Some(1), "{}", stderr_of(&output));
    let stderr = stderr_of(&output);
    assert!(stderr.contains("resume failed"), "{stderr}");
}

#[test]
fn bad_device_specs_exit_2_and_print_the_registry() {
    for (args, needle) in [
        // Unknown backend name.
        (&["--device", "vaporware"][..], "unknown device backend"),
        // Malformed key=val payloads.
        (&["--device", "netlist:levels"][..], "key=val"),
        (&["--device", "netlist:=4"][..], "empty key"),
        (&["--device", "netlist:levels=fast"][..], "levels"),
        (&["--device", "netlist:"][..], "--device"),
        (&["--device", ""][..], "--device"),
        (&["--device"][..], "--device"),
        // Valid syntax, rejected by the schema.
        (&["--device", "netlist:levels=9999"][..], "levels"),
        (&["--device", "netlist:warp=9"][..], "warp"),
        (&["--device=logic:depth=0"][..], "depth"),
    ] {
        // A bare `--device` (missing operand) also exits 2, but fails in
        // the flag layer before the registry is consulted.
        if args == ["--device"] {
            let output = run_fig2(args);
            assert_eq!(output.status.code(), Some(2));
            assert!(stderr_of(&output).contains("--device requires a value"));
            continue;
        }
        let output = run_fig2(args);
        assert_eq!(output.status.code(), Some(2), "{args:?}: {}", stderr_of(&output));
        let stderr = stderr_of(&output);
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
        // Every rejection teaches: the registry listing follows the error.
        assert!(
            stderr.contains("registered device backends"),
            "{args:?}: listing missing from {stderr}"
        );
        assert!(
            output.stdout.is_empty(),
            "{args:?}: must fail eagerly, before any campaign output"
        );
    }
}

#[test]
fn non_default_device_runs_and_stamps_the_manifest() {
    let dir = std::env::temp_dir().join("cichar_cli_device");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("netlist.json");
    let output = run_fig2(&[
        "--device",
        "netlist:levels=10",
        "--manifest",
        path.to_str().unwrap(),
    ]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr_of(&output));
    let text = std::fs::read_to_string(&path).expect("manifest saved");
    let manifest: cichar_trace::RunManifest = serde_json::from_str(&text).expect("parses");
    // The stamped descriptor is canonical: backend name plus the *full*
    // effective parameter vector (the override folded in).
    let device = manifest
        .config
        .iter()
        .find(|(k, _)| k == "device")
        .map(|(_, v)| v.as_str())
        .expect("manifest records the device selection");
    assert!(device.starts_with("netlist:"), "{device}");
    assert!(device.contains("levels=10"), "override folded in: {device}");
}

#[test]
fn missing_operands_exit_2() {
    for args in [
        &["--trace"][..],
        &["--manifest"][..],
        &["--threads"][..],
        &["--trace="][..],
    ] {
        let output = run_fig2(args);
        assert_eq!(output.status.code(), Some(2), "{args:?}");
        assert!(!stderr_of(&output).is_empty(), "{args:?}");
    }
}
