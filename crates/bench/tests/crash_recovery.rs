//! Crash-fault injection harness for the durable wafer campaign: spawn
//! `repro_wafer --journal`, SIGKILL it at seeded-random points mid-run
//! (plus a deliberate torn-write on the newest chunk file), then
//! `--resume` and demand a `wafer_summary.json` byte-identical to an
//! uninterrupted reference run — at one thread and at eight.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::time::Duration;

const DIES: &str = "768";
const SITES: &str = "2";

fn wafer_cmd(journal: &Path, extra: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro_wafer"));
    cmd.args(["--journal", journal.to_str().unwrap(), "--dies", DIES, "--sites", SITES])
        .args(extra)
        .env("CICHAR_SCALE", "quick");
    cmd
}

fn run_to_completion(journal: &Path, extra: &[&str]) -> Output {
    let output = wafer_cmd(journal, extra).output().expect("repro_wafer spawns");
    assert_eq!(
        output.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cichar_crash_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn summary_bytes(journal: &Path) -> Vec<u8> {
    std::fs::read(journal.join("wafer_summary.json")).expect("summary artifact exists")
}

/// Kills a journaled campaign partway through, up to `attempts` times.
/// Returns how many kills landed before the process finished on its own
/// (a kill that races completion leaves a complete journal, which
/// resume must also handle — so no retry is wasted either way).
fn crash_campaign(journal: &Path, rng: &mut StdRng, attempts: usize) -> usize {
    let mut kills = 0;
    for _ in 0..attempts {
        let mut child = wafer_cmd(journal, &["--threads", "2"])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("repro_wafer spawns");
        std::thread::sleep(Duration::from_millis(rng.gen_range(20..300)));
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "uninterrupted child must succeed");
                return kills;
            }
            None => {
                child.kill().expect("SIGKILL delivered");
                child.wait().expect("reaped");
                kills += 1;
            }
        }
    }
    kills
}

/// Truncates trailing bytes off the newest journal chunk file,
/// simulating a torn write the crash left behind. The salvage path must
/// demote that chunk to uncommitted and re-measure it.
fn tear_newest_chunk(journal: &Path) {
    let mut chunks: Vec<PathBuf> = std::fs::read_dir(journal)
        .expect("journal dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("journal_chunk_"))
        })
        .collect();
    chunks.sort();
    let Some(newest) = chunks.last() else { return };
    let len = std::fs::metadata(newest).expect("chunk metadata").len();
    if len > 16 {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(newest)
            .expect("chunk opens for truncation");
        file.set_len(len - 11).expect("torn write simulated");
    }
}

#[test]
fn sigkilled_campaign_resumes_bit_identical() {
    let reference = fresh_dir("reference");
    run_to_completion(&reference, &["--threads", "2"]);
    let expected = summary_bytes(&reference);

    let mut rng = StdRng::seed_from_u64(0xC1C4A2);
    for (name, resume_threads) in [("resume_t1", "1"), ("resume_t8", "8")] {
        let journal = fresh_dir(name);
        let kills = crash_campaign(&journal, &mut rng, 4);
        eprintln!("{name}: {kills} SIGKILLs landed mid-campaign");
        tear_newest_chunk(&journal);
        run_to_completion(&journal, &["--resume", "--threads", resume_threads]);
        assert_eq!(
            summary_bytes(&journal),
            expected,
            "{name}: resumed summary must be byte-identical to the uninterrupted run"
        );
    }
}

#[test]
fn resumed_manifest_carries_the_recovery_section() {
    let journal = fresh_dir("manifest");
    let mut rng = StdRng::seed_from_u64(0xD1E5);
    crash_campaign(&journal, &mut rng, 3);
    let manifest_path = journal.join("manifest.json");
    run_to_completion(
        &journal,
        &["--resume", "--threads", "2", "--manifest", manifest_path.to_str().unwrap()],
    );

    let text = std::fs::read_to_string(&manifest_path).expect("manifest saved");
    let manifest: cichar_trace::RunManifest = serde_json::from_str(&text).expect("parses");
    let recovery = manifest.recovery.as_ref().expect("journaled run records recovery");
    assert!(recovery.resumed);
    assert!(recovery.chunks_total > 0);
    assert!(recovery.chunks_replayed <= recovery.chunks_total);
    assert_eq!(recovery.watchdog_timeouts, 0, "no watchdog armed");
    assert!(recovery.quarantined_sites.is_empty(), "no breaker armed");
}

#[test]
fn a_completed_journal_resumes_as_a_pure_replay() {
    // Resume over a journal with every chunk committed re-measures
    // nothing and still reproduces the summary byte-for-byte.
    let journal = fresh_dir("pure_replay");
    run_to_completion(&journal, &["--threads", "2"]);
    let expected = summary_bytes(&journal);
    let stdout = run_to_completion(&journal, &["--resume", "--threads", "2"]).stdout;
    let stdout = String::from_utf8_lossy(&stdout).into_owned();
    assert!(stdout.contains("resumed:"), "{stdout}");
    assert_eq!(summary_bytes(&journal), expected);
}
