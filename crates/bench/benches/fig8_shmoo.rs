//! Criterion bench for fig. 8 (exp. id F8): shmoo capture and overlay
//! accumulation.

use cichar_ate::{Ate, OverlayShmoo, ShmooPlot};
use cichar_dut::MemoryDevice;
use cichar_patterns::{march, Test};
use cichar_search::RegionOrder;
use cichar_units::{Axis, ParamKind};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn axes() -> (Axis, Axis) {
    (
        Axis::new(ParamKind::StrobeDelay, 16.0, 36.0, 41).expect("static axis"),
        Axis::new(ParamKind::SupplyVoltage, 1.5, 2.1, 13).expect("static axis"),
    )
}

fn bench_shmoo(c: &mut Criterion) {
    let test = Test::deterministic("march_c-", march::march_c_minus(64));

    c.bench_function("fig8_shmoo/capture_41x13", |b| {
        b.iter(|| {
            let mut ate = Ate::noiseless(MemoryDevice::nominal());
            let (x, y) = axes();
            black_box(ShmooPlot::capture(&mut ate, black_box(&test), x, y))
        });
    });

    c.bench_function("fig8_shmoo/overlay_add", |b| {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let (x, y) = axes();
        let plot = ShmooPlot::capture(&mut ate, &test, x, y);
        b.iter(|| {
            let (x, y) = axes();
            let mut overlay = OverlayShmoo::new(x, y, RegionOrder::PassBelowFail);
            overlay.add(black_box(&plot));
            black_box(overlay.worst_spread())
        });
    });

    c.bench_function("fig8_shmoo/render_ascii", |b| {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let (x, y) = axes();
        let plot = ShmooPlot::capture(&mut ate, &test, x, y);
        b.iter(|| black_box(black_box(&plot).render_ascii()));
    });
}

criterion_group!(benches, bench_shmoo);
criterion_main!(benches);
