//! Criterion bench for fig. 3 (exp. id F3): full-range search vs
//! search-until-trip-point on the same test population — the measurement
//! saving is printed by `repro_fig3`; this bench times the two code paths.

use cichar_ate::{Ate, MeasuredParam};
use cichar_core::dsv::{MultiTripRunner, SearchStrategy};
use cichar_dut::MemoryDevice;
use cichar_patterns::{random, Test, TestConditions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let tests: Vec<Test> = (0..30)
        .map(|_| random::random_test_at(&mut rng, TestConditions::nominal()))
        .collect();
    let runner = MultiTripRunner::new(MeasuredParam::DataValidTime);

    let mut group = c.benchmark_group("fig3_stp");
    for (name, strategy) in [
        ("full_range", SearchStrategy::FullRange),
        ("search_until_trip", SearchStrategy::SearchUntilTrip),
    ] {
        group.bench_with_input(
            BenchmarkId::new("strategy", name),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let mut ate = Ate::noiseless(MemoryDevice::nominal());
                    let report = runner.run(&mut ate, black_box(&tests), strategy);
                    black_box(report.total_measurements)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
