//! Criterion bench `probe_economy`: what a trip point costs in probes.
//!
//! ```text
//! cargo bench -p cichar-bench --bench probe_economy            # full run
//! cargo bench -p cichar-bench --bench probe_economy -- --test  # CI smoke
//! ```
//!
//! Compares four ways of finding the same trip points on the
//! `repro_table1`-style random-test workload (nominal conditions,
//! noiseless tester):
//!
//! - `full_range_scalar`   — full-range successive approximation, one
//!   probe at a time (the §1 state of the art, fig. 3's cost baseline);
//! - `full_range_batched`  — the same bisection with speculative batch
//!   probing: both children of the next level are pre-issued through
//!   `BatchOracle`, the unused half is ledgered as speculative;
//! - `stp_rtp_seeded`      — eq. 2 once, then eqs. 3–4 around the
//!   reference trip point (the paper's method);
//! - `warm_started_stp`    — STP seeded per test from the trained
//!   committee's predicted trip point (`LearnedModel::predict_trip`),
//!   with the RTP fallback ladder for distrusted votes.
//!
//! The probe accounting is asserted before anything is timed: every
//! variant must land on the full-range trip points (bit-equal for the
//! batched path, within search resolution for the seeded walks), the
//! warm-started walk must spend >= 30% fewer non-speculative probes per
//! trip point than the full-range baseline, and the warm and batched
//! paths must be bit-identical at 1 vs 8 worker threads. `--test` runs
//! exactly those assertions and skips the timing (and the JSON write).

use cichar_ate::{Ate, AteConfig, DriftModel, MeasuredParam, MeasurementLedger, NoiseModel, ParallelAte};
use cichar_core::dsv::{DsvReport, MultiTripRunner, SearchStrategy};
use cichar_core::learning::{LearningConfig, LearningScheme};
use cichar_dut::MemoryDevice;
use cichar_exec::ExecPolicy;
use cichar_neural::TrainConfig;
use cichar_patterns::{random, Test, TestConditions};
use cichar_search::{TripPrediction, WarmStartPlanner};
use criterion::{black_box, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

const TESTS: usize = 120;
/// Largest committee-vote spread (ns) the planner still trusts.
const SPREAD_BAND: f64 = 2.0;

#[derive(Serialize)]
struct BenchRecord {
    id: String,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
}

/// One variant's probe bill, straight off the measurement ledger.
#[derive(Serialize, Clone, Copy)]
struct Economy {
    /// Probes the tester resolved, speculative included.
    probes: u64,
    /// Pre-issued bisection children that went unused.
    speculative: u64,
    /// The honest bill: probes the search actually needed.
    non_speculative: u64,
    /// Searches that converged on a trip point.
    trips: usize,
    /// `non_speculative / trips` — the headline economy number.
    non_speculative_probes_per_trip: f64,
}

#[derive(Serialize)]
struct ProbeEconomyReport {
    bench: &'static str,
    tests: usize,
    committee_accepted: bool,
    /// Predictions the planner trusted (spread within the band); the
    /// rest fell back to the reference trip point.
    trusted_predictions: usize,
    full_range_scalar: Economy,
    full_range_batched: Economy,
    stp_rtp_seeded: Economy,
    warm_started_stp: Economy,
    /// Non-speculative probes/trip saved by warm-started STP relative to
    /// full-range successive approximation. The acceptance floor is 30%.
    warm_saving_vs_full_range_pct: f64,
    batched_saving_vs_full_range_pct: f64,
    trip_points_match_full_range: bool,
    bit_identical_across_thread_counts: bool,
    results: Vec<BenchRecord>,
    note: String,
}

fn economy(report: &DsvReport, ledger: &MeasurementLedger) -> Economy {
    let trips = report
        .entries
        .iter()
        .filter(|e| e.trip_point.is_some())
        .count();
    let non_speculative = ledger.non_speculative_measurements();
    Economy {
        probes: ledger.measurements(),
        speculative: ledger.speculative_probes(),
        non_speculative,
        trips,
        non_speculative_probes_per_trip: non_speculative as f64 / trips.max(1) as f64,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let param = MeasuredParam::DataValidTime;
    let config = AteConfig {
        noise: NoiseModel::noiseless(),
        drift: DriftModel::none(),
        seed: 0xECD0_0001,
        ..AteConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(0xECD0_0002);
    let tests: Vec<Test> = (0..TESTS)
        .map(|_| random::random_test_at(&mut rng, TestConditions::nominal()))
        .collect();
    let blueprint = ParallelAte::new(MemoryDevice::nominal(), config.clone());

    // Fig. 4 learning pass: train the committee whose trip predictions
    // seed the warm-started walks. Laptop-sized budget — same code path
    // as repro_table1's learning phase, scaled down.
    let model = {
        let mut ate = Ate::with_config(MemoryDevice::nominal(), config);
        let mut learn_rng = StdRng::seed_from_u64(0xECD0_0003);
        LearningScheme::new(LearningConfig {
            tests_per_round: 60,
            max_rounds: 2,
            committee_size: 3,
            hidden: vec![12],
            train: TrainConfig {
                epochs: 150,
                ..TrainConfig::default()
            },
            ..LearningConfig::default()
        })
        .run(&mut ate, &mut learn_rng)
    };
    let predictions: Vec<Option<TripPrediction>> =
        tests.iter().map(|t| model.predict_trip(t)).collect();
    let planner = WarmStartPlanner::new(param.generous_range(), SPREAD_BAND);

    let scalar_runner = MultiTripRunner::new(param);
    let batched_runner = MultiTripRunner::new(param).with_speculation();

    // ---- probe accounting (untimed), then the correctness gates ----
    let (full_report, full_ledger) = scalar_runner.run_parallel(
        &blueprint,
        &tests,
        SearchStrategy::FullRange,
        ExecPolicy::serial(),
    );
    let (spec_report, spec_ledger) = batched_runner.run_parallel(
        &blueprint,
        &tests,
        SearchStrategy::FullRange,
        ExecPolicy::serial(),
    );
    let (stp_report, stp_ledger) = scalar_runner.run_parallel(
        &blueprint,
        &tests,
        SearchStrategy::SearchUntilTrip,
        ExecPolicy::serial(),
    );
    let (warm_report, warm_ledger) = scalar_runner.run_parallel_warm(
        &blueprint,
        &tests,
        &predictions,
        &planner,
        ExecPolicy::serial(),
    );

    // Speculation may only change the probe accounting (each entry's
    // `measurements` count includes its pre-issued children), never the
    // answer: trip points must stay bit-equal.
    for (a, b) in full_report.entries.iter().zip(&spec_report.entries) {
        assert_eq!(
            a.trip_point, b.trip_point,
            "{}: speculative bisection must land on the scalar trip point",
            a.test_name
        );
    }
    // Seeded walks converge to the same physics within search resolution.
    let mut trips_match = true;
    for (reference, candidate) in [(&full_report, &stp_report), (&full_report, &warm_report)] {
        for (a, b) in reference.entries.iter().zip(&candidate.entries) {
            let (ta, tb) = (
                a.trip_point.expect("full-range converges"),
                b.trip_point.expect("seeded walk converges"),
            );
            assert!(
                (ta - tb).abs() <= 2.0 * param.resolution(),
                "{}: full-range {ta} vs seeded {tb}",
                a.test_name
            );
            trips_match &= (ta - tb).abs() <= 2.0 * param.resolution();
        }
    }

    // Thread-count invariance: the batched and warm-started paths must
    // not trade determinism for probe savings.
    let eight = ExecPolicy::with_threads(8);
    let spec_eight = batched_runner.run_parallel(&blueprint, &tests, SearchStrategy::FullRange, eight);
    assert_eq!(
        (&spec_report, &spec_ledger),
        (&spec_eight.0, &spec_eight.1),
        "batched full-range must be bit-identical at 8 threads"
    );
    let warm_eight =
        scalar_runner.run_parallel_warm(&blueprint, &tests, &predictions, &planner, eight);
    assert_eq!(
        (&warm_report, &warm_ledger),
        (&warm_eight.0, &warm_eight.1),
        "warm-started STP must be bit-identical at 8 threads"
    );

    let full = economy(&full_report, &full_ledger);
    let spec = economy(&spec_report, &spec_ledger);
    let stp = economy(&stp_report, &stp_ledger);
    let warm = economy(&warm_report, &warm_ledger);
    let saving = |e: &Economy| {
        100.0 * (1.0 - e.non_speculative_probes_per_trip / full.non_speculative_probes_per_trip)
    };
    let warm_saving = saving(&warm);
    let batched_saving = saving(&spec);
    let trusted = predictions
        .iter()
        .enumerate()
        .filter(|(i, p)| {
            planner
                .plan(p.as_ref(), full_report.entries[*i].trip_point.unwrap_or(0.0))
                .is_predicted()
        })
        .count();
    assert!(
        warm_saving >= 30.0,
        "warm-started STP must spend >= 30% fewer non-speculative probes \
         per trip than full-range successive approximation, measured {warm_saving:.1}% \
         ({:.2} vs {:.2} probes/trip)",
        warm.non_speculative_probes_per_trip,
        full.non_speculative_probes_per_trip
    );
    println!(
        "probe economy (non-speculative probes/trip): full-range {:.2}, \
         batched {:.2}, stp {:.2}, warm {:.2} ({warm_saving:.1}% saving, \
         {trusted}/{TESTS} predictions trusted)",
        full.non_speculative_probes_per_trip,
        spec.non_speculative_probes_per_trip,
        stp.non_speculative_probes_per_trip,
        warm.non_speculative_probes_per_trip,
    );
    if smoke {
        println!("probe_economy smoke: accounting and determinism gates passed");
        return;
    }

    // ---- wall-clock timing ----
    let mut criterion = Criterion::default();
    {
        let mut group = criterion.benchmark_group("probe_economy");
        group.sample_size(10);
        group.bench_function("full_range_scalar", |b| {
            b.iter(|| {
                black_box(scalar_runner.run_parallel(
                    &blueprint,
                    black_box(&tests),
                    SearchStrategy::FullRange,
                    ExecPolicy::serial(),
                ))
            });
        });
        group.bench_function("full_range_batched", |b| {
            b.iter(|| {
                black_box(batched_runner.run_parallel(
                    &blueprint,
                    black_box(&tests),
                    SearchStrategy::FullRange,
                    ExecPolicy::serial(),
                ))
            });
        });
        group.bench_function("stp_rtp_seeded", |b| {
            b.iter(|| {
                black_box(scalar_runner.run_parallel(
                    &blueprint,
                    black_box(&tests),
                    SearchStrategy::SearchUntilTrip,
                    ExecPolicy::serial(),
                ))
            });
        });
        group.bench_function("warm_started_stp", |b| {
            b.iter(|| {
                black_box(scalar_runner.run_parallel_warm(
                    &blueprint,
                    black_box(&tests),
                    black_box(&predictions),
                    &planner,
                    ExecPolicy::serial(),
                ))
            });
        });
        group.finish();
    }
    criterion.final_summary();

    let results: Vec<BenchRecord> = criterion
        .results()
        .iter()
        .map(|r| BenchRecord {
            id: r.id.clone(),
            mean_ns: r.mean_ns,
            min_ns: r.min_ns,
            max_ns: r.max_ns,
            samples: r.samples,
        })
        .collect();
    let report = ProbeEconomyReport {
        bench: "probe_economy",
        tests: TESTS,
        committee_accepted: model.accepted,
        trusted_predictions: trusted,
        full_range_scalar: full,
        full_range_batched: spec,
        stp_rtp_seeded: stp,
        warm_started_stp: warm,
        warm_saving_vs_full_range_pct: warm_saving,
        batched_saving_vs_full_range_pct: batched_saving,
        trip_points_match_full_range: trips_match,
        bit_identical_across_thread_counts: true,
        results,
        note: format!(
            "{TESTS} random tests at nominal conditions on a noiseless \
             tester (the repro_table1 workload shape). probes/trip counts \
             only non-speculative probes: pre-issued bisection children \
             that go unused are ledgered as speculative and excluded, so \
             the batched saving is honest eq. 1 accounting, not \
             double-counting. Warm starts seed STP from a committee of \
             {} nets; distrusted votes (spread > {SPREAD_BAND} ns) fall \
             back to the reference trip point.",
            3
        ),
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_probe_economy.json");
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_probe_economy.json");
    println!("wrote {path}");
}
