//! Criterion bench `par_dsv`: sequential vs parallel multiple-trip-point
//! DSV throughput on a 1000-test population, emitting
//! `BENCH_par_dsv.json` with the measured speedup.
//!
//! ```text
//! cargo bench -p cichar-bench --bench par_dsv
//! ```
//!
//! The parallel path is bit-identical to `threads = 1` at every thread
//! count (asserted here before timing), so the speedup is pure
//! scheduling: it scales with physical cores and is ≈1× on a single-core
//! machine — the JSON records `hardware_threads` so the number can be
//! read honestly.

use cichar_ate::{AteConfig, MeasuredParam, ParallelAte};
use cichar_core::dsv::{MultiTripRunner, SearchStrategy};
use cichar_dut::MemoryDevice;
use cichar_exec::ExecPolicy;
use cichar_patterns::{random, Test, TestConditions};
use cichar_trace::{NullSink, Tracer};
use criterion::{black_box, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::Arc;

const TESTS: usize = 1000;

#[derive(Serialize)]
struct BenchRecord {
    id: String,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
}

#[derive(Serialize)]
struct ParDsvReport {
    bench: &'static str,
    tests: usize,
    hardware_threads: usize,
    /// mean(sequential) / mean(threads = 4).
    speedup_4_threads: f64,
    /// mean(sequential) / mean(threads = hardware parallelism), when that
    /// configuration was measured separately from 4 threads.
    speedup_hw_threads: Option<f64>,
    /// Wall-clock cost of running with a live `NullSink` tracer instead
    /// of a disabled one, as a percentage of the untraced 4-thread mean.
    /// The observability layer's budget is < 2%. Reported as 0.0 when the
    /// raw delta is within run-to-run variance — indistinguishable from
    /// zero at this machine's noise floor (see `overhead_noise_note` and
    /// `null_tracer_overhead_raw_pct` for the unfloored value).
    null_tracer_overhead_pct: f64,
    /// The raw measured delta, which can be negative on a noisy machine
    /// (the traced run happened to land on faster scheduling).
    null_tracer_overhead_raw_pct: f64,
    /// Run-to-run variance of the overhead comparison: the larger
    /// relative sample spread ((max − min) / mean) of the two overhead
    /// benches, in percent. A raw delta smaller than this is noise.
    overhead_run_variance_pct: f64,
    /// Present when the raw delta was within run-to-run variance and the
    /// reported overhead was floored.
    overhead_noise_note: Option<String>,
    bit_identical_across_thread_counts: bool,
    results: Vec<BenchRecord>,
    note: String,
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0xDA7E_2005);
    let tests: Vec<Test> = (0..TESTS)
        .map(|_| random::random_test_at(&mut rng, TestConditions::nominal()))
        .collect();
    let runner = MultiTripRunner::new(MeasuredParam::DataValidTime);
    let blueprint = ParallelAte::new(MemoryDevice::nominal(), AteConfig::default());
    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Determinism gate before timing: the configurations being compared
    // must produce the same report, or the comparison is meaningless.
    let (serial_report, _) = runner.run_parallel(
        &blueprint,
        &tests,
        SearchStrategy::SearchUntilTrip,
        ExecPolicy::serial(),
    );
    let (four_report, _) = runner.run_parallel(
        &blueprint,
        &tests,
        SearchStrategy::SearchUntilTrip,
        ExecPolicy::with_threads(4),
    );
    assert_eq!(serial_report, four_report, "parallel DSV must be bit-identical");

    let mut criterion = Criterion::default();
    {
        let mut group = criterion.benchmark_group("par_dsv");
        group.sample_size(5);
        let mut bench_policy = |id: &str, policy: ExecPolicy| {
            group.bench_function(id, |b| {
                b.iter(|| {
                    let (report, ledger) = runner.run_parallel(
                        &blueprint,
                        black_box(&tests),
                        SearchStrategy::SearchUntilTrip,
                        policy,
                    );
                    black_box((report.total_measurements, ledger.measurements()))
                });
            });
        };
        bench_policy("sequential_1_thread", ExecPolicy::serial());
        bench_policy("parallel_4_threads", ExecPolicy::with_threads(4));
        if hardware_threads > 4 {
            bench_policy(
                "parallel_hw_threads",
                ExecPolicy::with_threads(hardware_threads),
            );
        }
        group.finish();
    }
    {
        // The tracer-overhead comparison gets its own group at a higher
        // sample count: the delta being resolved (< 2%) is far below the
        // run-to-run spread a 5-sample mean can see, so the headline
        // number out of the speedup group was noise-dominated (a previous
        // run reported −4.9%).
        let mut group = criterion.benchmark_group("par_dsv_overhead");
        group.sample_size(15);
        group.bench_function("untraced_4_threads", |b| {
            b.iter(|| {
                let (report, ledger) = runner.run_parallel(
                    &blueprint,
                    black_box(&tests),
                    SearchStrategy::SearchUntilTrip,
                    ExecPolicy::with_threads(4),
                );
                black_box((report.total_measurements, ledger.measurements()))
            });
        });
        // Same 4-thread run, but through a live tracer with a NullSink:
        // every span is created, every event dispatched and counted, the
        // bytes go nowhere. The delta against untraced_4_threads is the
        // observability layer's enabled-but-discarding overhead.
        let null_tracer = Tracer::new(Arc::new(NullSink));
        group.bench_function("null_tracer_4_threads", |b| {
            b.iter(|| {
                let (report, ledger) = runner.run_parallel_traced(
                    &blueprint,
                    black_box(&tests),
                    SearchStrategy::SearchUntilTrip,
                    ExecPolicy::with_threads(4),
                    &null_tracer,
                );
                black_box((report.total_measurements, ledger.measurements()))
            });
        });
        group.finish();
    }
    criterion.final_summary();

    let results: Vec<BenchRecord> = criterion
        .results()
        .iter()
        .map(|r| BenchRecord {
            id: r.id.clone(),
            mean_ns: r.mean_ns,
            min_ns: r.min_ns,
            max_ns: r.max_ns,
            samples: r.samples,
        })
        .collect();
    let mean_of = |suffix: &str| {
        results
            .iter()
            .find(|r| r.id.ends_with(suffix))
            .map(|r| r.mean_ns)
    };
    let sequential = mean_of("sequential_1_thread").expect("measured");
    let four = mean_of("parallel_4_threads").expect("measured");
    let speedup_4_threads = sequential / four;
    let speedup_hw_threads = mean_of("parallel_hw_threads").map(|hw| sequential / hw);

    let spread_pct = |suffix: &str| {
        let r = results
            .iter()
            .find(|r| r.id.ends_with(suffix))
            .expect("measured");
        100.0 * (r.max_ns - r.min_ns) / r.mean_ns
    };
    let untraced = mean_of("untraced_4_threads").expect("measured");
    let null_traced = mean_of("null_tracer_4_threads").expect("measured");
    let null_tracer_overhead_raw_pct = 100.0 * (null_traced / untraced - 1.0);
    let overhead_run_variance_pct =
        spread_pct("untraced_4_threads").max(spread_pct("null_tracer_4_threads"));
    let within_noise = null_tracer_overhead_raw_pct.abs() <= overhead_run_variance_pct;
    let null_tracer_overhead_pct = if within_noise {
        0.0
    } else {
        null_tracer_overhead_raw_pct
    };
    let overhead_noise_note = within_noise.then(|| {
        format!(
            "raw delta {null_tracer_overhead_raw_pct:+.2}% is within the \
             {overhead_run_variance_pct:.2}% run-to-run variance of the two \
             overhead benches; reported overhead is floored at 0.0"
        )
    });

    let report = ParDsvReport {
        bench: "par_dsv",
        tests: TESTS,
        hardware_threads,
        speedup_4_threads,
        speedup_hw_threads,
        null_tracer_overhead_pct,
        null_tracer_overhead_raw_pct,
        overhead_run_variance_pct,
        overhead_noise_note,
        bit_identical_across_thread_counts: true,
        results,
        note: format!(
            "1000-test multiple-trip-point DSV (search-until-trip-point), \
             sequential vs parallel. Speedup is wall-clock mean(sequential) / \
             mean(parallel); with {hardware_threads} hardware thread(s) \
             available, 4 worker threads can exploit at most \
             {hardware_threads}-way parallelism, so the target 2x at 4 \
             threads requires >= 4 physical cores."
        ),
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_par_dsv.json");
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_par_dsv.json");
    println!("speedup at 4 threads: {speedup_4_threads:.2}x (hardware threads: {hardware_threads})");
    println!(
        "null-tracer overhead at 4 threads: {null_tracer_overhead_pct:.2}% \
         (raw {null_tracer_overhead_raw_pct:+.2}%, run variance \
         {overhead_run_variance_pct:.2}%, budget < 2%)"
    );
    println!("wrote {path}");
}
