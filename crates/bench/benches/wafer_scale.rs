//! Criterion bench `wafer_scale`: wafer-lot DSV throughput and memory
//! economy, emitting `BENCH_wafer_scale.json`.
//!
//! ```text
//! cargo bench -p cichar-bench --bench wafer_scale            # full run
//! cargo bench -p cichar-bench --bench wafer_scale -- --test  # CI smoke
//! ```
//!
//! Measures the streaming wafer engine on a 10^5-search lot:
//!
//! - trips/sec and trips/sec-per-core at 1, 4 and 8 worker threads;
//! - allocations per trip of the streaming pipeline vs a materializing
//!   baseline (one `DsvReport` per die, all held until the end);
//! - peak *allocated* bytes (a counting global allocator's high-water
//!   mark, resettable per phase — unlike the process RSS, which only
//!   grows) at N and 2N dies, proving the streaming peak is sub-linear
//!   in die count;
//! - the process-level `VmHWM` for the record.
//!
//! Correctness gates run before anything is timed (and are all `--test`
//! runs): the streamed aggregate is bit-identical across thread counts
//! and site groupings, and matches the materializing baseline exactly.

use cichar_ate::{Ate, AteConfig, MeasuredParam};
use cichar_core::dsv::{MultiTripRunner, SearchStrategy};
use cichar_core::stream::TripAggregate;
use cichar_core::wafer::{WaferConfig, WaferReport, WaferRunner};
use cichar_dut::{Die, Lot, MemoryDevice};
use cichar_exec::ExecPolicy;
use cichar_patterns::{random, Test, TestConditions};
use criterion::{black_box, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Global allocator wrapper counting allocation calls and tracking the
/// live-bytes high-water mark. The bench crate's benches are separate
/// crate roots, so the library's `forbid(unsafe_code)` does not apply
/// here; the unsafety is confined to delegating to `System`.
struct CountingAllocator;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            let live = LIVE_BYTES.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
            let live = LIVE_BYTES.fetch_add(new_size, Ordering::Relaxed) + new_size;
            PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        }
        new_ptr
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Resets the call counter and rebases the high-water mark onto the
/// current live size; returns the rebased baseline.
fn reset_alloc_tracking() -> usize {
    ALLOC_CALLS.store(0, Ordering::Relaxed);
    let live = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(live, Ordering::Relaxed);
    live
}

/// `(allocation calls, peak bytes above `baseline`)` since the last reset.
fn alloc_tracking_since(baseline: usize) -> (u64, usize) {
    let calls = ALLOC_CALLS.load(Ordering::Relaxed);
    let peak = PEAK_BYTES.load(Ordering::Relaxed).saturating_sub(baseline);
    (calls, peak)
}

const SITES: usize = 8;
const TESTS_PER_DIE: usize = 4;

#[derive(Serialize)]
struct BenchRecord {
    id: String,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
}

#[derive(Serialize)]
struct Throughput {
    threads: usize,
    trips_per_sec: f64,
    trips_per_sec_per_core: f64,
}

#[derive(Serialize)]
struct WaferScaleReport {
    bench: &'static str,
    dies: usize,
    tests_per_die: usize,
    searches: usize,
    sites: usize,
    hardware_threads: usize,
    throughput: Vec<Throughput>,
    allocations_per_trip_streaming: f64,
    allocations_per_trip_materializing: f64,
    alloc_saving_pct: f64,
    peak_alloc_bytes_streaming: usize,
    peak_alloc_bytes_streaming_2x_dies: usize,
    peak_alloc_bytes_materializing: usize,
    /// Peak allocated bytes at 2N dies over peak at N dies; the streaming
    /// acceptance bar is sub-linear (ratio well under 2.0).
    peak_growth_ratio_2x_dies: f64,
    peak_rss_bytes: Option<u64>,
    bit_identical_across_thread_counts: bool,
    invariant_under_site_grouping: bool,
    matches_materializing_baseline: bool,
    results: Vec<BenchRecord>,
    note: String,
}

fn workload(dies: usize) -> (Vec<Die>, Vec<Test>) {
    let mut rng = StdRng::seed_from_u64(0x57AF_0001);
    let dies = Lot::default().sample_dies(&mut rng, dies);
    let tests = (0..TESTS_PER_DIE)
        .map(|_| random::random_test_at(&mut rng, TestConditions::nominal()))
        .collect();
    (dies, tests)
}

fn runner(sites: usize, contact_check: bool) -> WaferRunner {
    WaferRunner::new(MeasuredParam::DataValidTime).with_config(WaferConfig {
        sites,
        contact_check,
        ..WaferConfig::default()
    })
}

fn stream(r: &WaferRunner, dies: &[Die], tests: &[Test], policy: ExecPolicy) -> WaferReport {
    r.run(
        &AteConfig::default(),
        dies,
        tests,
        SearchStrategy::SearchUntilTrip,
        policy,
    )
    .expect("no spill configured, no I/O to fail")
    .0
}

/// The pre-wafer baseline: one independent session per die, every
/// per-die `DsvReport` (entry vectors, per-entry test-name strings)
/// held until the whole lot is done, then folded.
fn materialize(dies: &[Die], tests: &[Test]) -> TripAggregate {
    let runner = MultiTripRunner::new(MeasuredParam::DataValidTime);
    let config = AteConfig::default();
    let reports: Vec<_> = dies
        .iter()
        .enumerate()
        .map(|(i, die)| {
            let mut ate = Ate::with_config(
                MemoryDevice::new(*die),
                AteConfig {
                    seed: cichar_exec::derive_seed(config.seed, i as u64),
                    ..config.clone()
                },
            );
            runner.run(&mut ate, tests, SearchStrategy::SearchUntilTrip)
        })
        .collect();
    let range = MeasuredParam::DataValidTime.generous_range();
    let mut aggregate = TripAggregate::new(range.start(), range.end(), 256);
    for report in &reports {
        for entry in &report.entries {
            aggregate.observe(entry.trip_point, &entry.status);
        }
    }
    aggregate
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let dies_n = if smoke { 600 } else { 25_000 };
    let (dies, tests) = workload(dies_n * 2);
    let (half, double) = (&dies[..dies_n], &dies[..]);
    let searches = dies_n * TESTS_PER_DIE;
    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    // ---- correctness gates (untimed) ----
    // Thread counts must not change a bit of the report.
    let gated = runner(SITES, true);
    let serial = stream(&gated, half, &tests, ExecPolicy::serial());
    let eight = stream(&gated, half, &tests, ExecPolicy::with_threads(8));
    assert_eq!(serial, eight, "streamed wafer must be bit-identical at 8 threads");
    // Touchdown grouping must not either (contact check off so sites=1
    // and sites=8 issue identical probe streams per die).
    let solo = stream(&runner(1, false), half, &tests, ExecPolicy::serial());
    let wide = stream(&runner(SITES, false), half, &tests, ExecPolicy::with_threads(4));
    assert_eq!(
        solo.aggregate, wide.aggregate,
        "site grouping must not change the aggregate"
    );
    // And the streamed aggregate must equal the materializing fold.
    let materialized = materialize(half, &tests);
    assert_eq!(
        solo.aggregate, materialized,
        "streaming must match the materializing baseline bit-for-bit"
    );

    // ---- allocation economy (untimed, serial for determinism) ----
    let quiet = runner(SITES, false);
    let baseline = reset_alloc_tracking();
    let report_n = stream(&quiet, half, &tests, ExecPolicy::serial());
    let (stream_calls, stream_peak) = alloc_tracking_since(baseline);

    let baseline = reset_alloc_tracking();
    let report_2n = stream(&quiet, double, &tests, ExecPolicy::serial());
    let (_, stream_peak_2n) = alloc_tracking_since(baseline);

    let baseline = reset_alloc_tracking();
    let mat_aggregate = materialize(half, &tests);
    let (mat_calls, mat_peak) = alloc_tracking_since(baseline);
    assert_eq!(report_n.aggregate.entries + report_2n.aggregate.entries, (searches * 3) as u64);
    black_box(&mat_aggregate);

    let allocations_per_trip_streaming = stream_calls as f64 / searches as f64;
    let allocations_per_trip_materializing = mat_calls as f64 / searches as f64;
    let alloc_saving_pct =
        100.0 * (1.0 - allocations_per_trip_streaming / allocations_per_trip_materializing);
    let peak_growth_ratio_2x_dies = stream_peak_2n as f64 / stream_peak.max(1) as f64;
    assert!(
        allocations_per_trip_streaming < allocations_per_trip_materializing,
        "streaming must allocate less per trip: {allocations_per_trip_streaming:.1} vs \
         {allocations_per_trip_materializing:.1}"
    );
    assert!(
        peak_growth_ratio_2x_dies < 1.6,
        "streaming peak memory must be sub-linear in die count: \
         {stream_peak} bytes at {dies_n} dies vs {stream_peak_2n} at {}",
        dies_n * 2
    );
    println!(
        "allocs/trip: streaming {allocations_per_trip_streaming:.1} vs materializing \
         {allocations_per_trip_materializing:.1} ({alloc_saving_pct:.1}% saving); \
         peak alloc {:.2} MiB at {dies_n} dies -> {:.2} MiB at {} dies ({peak_growth_ratio_2x_dies:.2}x)",
        stream_peak as f64 / (1 << 20) as f64,
        stream_peak_2n as f64 / (1 << 20) as f64,
        dies_n * 2
    );
    if smoke {
        println!("wafer_scale smoke: determinism, grouping and memory gates passed");
        return;
    }

    // ---- wall-clock throughput at 1 / 4 / 8 threads ----
    let timed = runner(SITES, true);
    let mut criterion = Criterion::default();
    {
        let mut group = criterion.benchmark_group("wafer_scale");
        group.sample_size(3);
        for threads in [1usize, 4, 8] {
            let policy = if threads == 1 {
                ExecPolicy::serial()
            } else {
                ExecPolicy::with_threads(threads)
            };
            group.bench_function(&format!("stream_{threads}_threads"), |b| {
                b.iter(|| black_box(stream(&timed, black_box(half), &tests, policy)));
            });
        }
        group.bench_function("materialize_1_thread", |b| {
            b.iter(|| black_box(materialize(black_box(half), &tests)));
        });
        group.finish();
    }
    criterion.final_summary();

    let results: Vec<BenchRecord> = criterion
        .results()
        .iter()
        .map(|r| BenchRecord {
            id: r.id.clone(),
            mean_ns: r.mean_ns,
            min_ns: r.min_ns,
            max_ns: r.max_ns,
            samples: r.samples,
        })
        .collect();
    let throughput: Vec<Throughput> = [1usize, 4, 8]
        .iter()
        .map(|&threads| {
            let mean_ns = results
                .iter()
                .find(|r| r.id.ends_with(&format!("stream_{threads}_threads")))
                .expect("measured")
                .mean_ns;
            let trips_per_sec = searches as f64 / (mean_ns * 1e-9);
            Throughput {
                threads,
                trips_per_sec,
                trips_per_sec_per_core: trips_per_sec / threads as f64,
            }
        })
        .collect();

    let report = WaferScaleReport {
        bench: "wafer_scale",
        dies: dies_n,
        tests_per_die: TESTS_PER_DIE,
        searches,
        sites: SITES,
        hardware_threads,
        throughput,
        allocations_per_trip_streaming,
        allocations_per_trip_materializing,
        alloc_saving_pct,
        peak_alloc_bytes_streaming: stream_peak,
        peak_alloc_bytes_streaming_2x_dies: stream_peak_2n,
        peak_alloc_bytes_materializing: mat_peak,
        peak_growth_ratio_2x_dies,
        peak_rss_bytes: cichar_trace::peak_rss_bytes(),
        bit_identical_across_thread_counts: true,
        invariant_under_site_grouping: true,
        matches_materializing_baseline: true,
        results,
        note: format!(
            "{dies_n} dies x {TESTS_PER_DIE} random tests per die \
             (search-until-trip-point, {SITES}-site touchdowns, contact \
             checks on for timing; off for the materializing-equality gate, \
             which has no contact strobes). The materializing baseline holds \
             one DsvReport per die until the lot finishes; the streaming \
             engine folds each chunk into the incremental aggregate and \
             drops it, so its allocation peak stays flat as the lot doubles. \
             trips/sec-per-core divides by worker threads — on a \
             {hardware_threads}-hardware-thread host, widths beyond that \
             measure scheduling overhead, not speedup."
        ),
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wafer_scale.json");
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_wafer_scale.json");
    println!("wrote {path}");
}
