//! Criterion bench for fig. 2 (exp. id F2): the multiple-trip-point DSV
//! run over random tests, including pattern expansion and feature
//! extraction.

use cichar_ate::{Ate, MeasuredParam};
use cichar_core::dsv::{MultiTripRunner, SearchStrategy};
use cichar_dut::MemoryDevice;
use cichar_patterns::{random, PatternFeatures, Test, TestConditions};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_dsv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let tests: Vec<Test> = (0..25)
        .map(|_| random::random_test_at(&mut rng, TestConditions::nominal()))
        .collect();
    let runner = MultiTripRunner::new(MeasuredParam::DataValidTime);

    c.bench_function("fig2_multi_trip/dsv_25_random_tests", |b| {
        b.iter(|| {
            let mut ate = Ate::noiseless(MemoryDevice::nominal());
            let report = runner.run(&mut ate, black_box(&tests), SearchStrategy::SearchUntilTrip);
            black_box(report.spread())
        });
    });

    c.bench_function("fig2_multi_trip/feature_extraction", |b| {
        let pattern = tests[0].pattern();
        b.iter(|| black_box(PatternFeatures::extract(black_box(&pattern))));
    });

    c.bench_function("fig2_multi_trip/program_expansion", |b| {
        let cichar_patterns::Stimulus::Program(program) = tests[0].stimulus().clone() else {
            panic!("random tests are programs");
        };
        b.iter(|| black_box(black_box(&program).expand()));
    });
}

criterion_group!(benches, bench_dsv);
criterion_main!(benches);
