//! Criterion bench for the Table 1 pipeline (exp. id T1 in DESIGN.md):
//! each technique's cost to find its worst case on a fresh tester.

use cichar_ate::{Ate, MeasuredParam};
use cichar_core::compare::{quick_config, Comparison};
use cichar_core::dsv::{MultiTripRunner, SearchStrategy};
use cichar_dut::MemoryDevice;
use cichar_patterns::{march, random, Test, TestConditions};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_march_row(c: &mut Criterion) {
    c.bench_function("table1/march_row", |b| {
        let test = Test::deterministic("March Test", march::march_c_minus(64));
        let runner = MultiTripRunner::new(MeasuredParam::DataValidTime);
        b.iter(|| {
            let mut ate = Ate::noiseless(MemoryDevice::nominal());
            let report = runner.run(
                &mut ate,
                std::slice::from_ref(black_box(&test)),
                SearchStrategy::FullRange,
            );
            black_box(report.min())
        });
    });
}

fn bench_random_row(c: &mut Criterion) {
    c.bench_function("table1/random_row_40_tests", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let tests: Vec<Test> = (0..40)
            .map(|_| random::random_test_at(&mut rng, TestConditions::nominal()))
            .collect();
        let runner = MultiTripRunner::new(MeasuredParam::DataValidTime);
        b.iter(|| {
            let mut ate = Ate::noiseless(MemoryDevice::nominal());
            let report = runner.run(&mut ate, black_box(&tests), SearchStrategy::SearchUntilTrip);
            black_box(report.min())
        });
    });
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("nnga_pipeline_quick", |b| {
        b.iter(|| {
            let mut ate = Ate::noiseless(MemoryDevice::nominal());
            let mut rng = StdRng::seed_from_u64(7);
            let cmp = Comparison::run(&mut ate, &quick_config(), &mut rng);
            black_box(cmp.winner().wcr)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_march_row, bench_random_row, bench_full_pipeline);
criterion_main!(benches);
