//! Criterion bench for fig. 1 (exp. id F1): single-trip-point searches —
//! linear vs binary vs successive approximation on the same device.

use cichar_ate::{Ate, MeasuredParam};
use cichar_dut::MemoryDevice;
use cichar_patterns::{march, Test};
use cichar_search::{BinarySearch, LinearSearch, SuccessiveApproximation};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_searches(c: &mut Criterion) {
    let test = Test::deterministic("march_c-", march::march_c_minus(64));
    let param = MeasuredParam::DataValidTime;
    let mut group = c.benchmark_group("fig1_single_trip");

    group.bench_function("binary", |b| {
        let search = BinarySearch::new(param.generous_range(), param.resolution());
        b.iter(|| {
            let mut ate = Ate::noiseless(MemoryDevice::nominal());
            let outcome = search.run(param.region_order(), ate.trip_oracle(black_box(&test), param));
            black_box(outcome.trip_point)
        });
    });

    group.bench_function("successive_approximation", |b| {
        let search = SuccessiveApproximation::new(param.generous_range(), param.resolution());
        b.iter(|| {
            let mut ate = Ate::noiseless(MemoryDevice::nominal());
            let outcome = search.run(param.region_order(), ate.trip_oracle(black_box(&test), param));
            black_box(outcome.trip_point)
        });
    });

    group.bench_function("linear", |b| {
        // Coarser step, or the §1 "time consuming" warning dominates the
        // whole bench run.
        let search = LinearSearch::new(param.generous_range(), 0.5);
        b.iter(|| {
            let mut ate = Ate::noiseless(MemoryDevice::nominal());
            let outcome = search.run(param.region_order(), ate.trip_oracle(black_box(&test), param));
            black_box(outcome.trip_point)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_searches);
criterion_main!(benches);
