//! Criterion bench for the ablation axis (exp. id A1): cost of the §5
//! design choices — coding scheme, committee size, GA seeding.

use cichar_ate::Ate;
use cichar_core::generator::NeuralTestGenerator;
use cichar_core::learning::{LearningConfig, LearningScheme};
use cichar_dut::MemoryDevice;
use cichar_fuzzy::coding::CodingScheme;
use cichar_neural::TrainConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn small_learning(coding: CodingScheme, committee: usize) -> LearningConfig {
    LearningConfig {
        tests_per_round: 60,
        max_rounds: 1,
        committee_size: committee,
        hidden: vec![12],
        coding,
        train: TrainConfig {
            epochs: 120,
            ..TrainConfig::default()
        },
        ..LearningConfig::default()
    }
}

fn bench_coding_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/coding");
    group.sample_size(10);
    for (name, coding) in [
        ("numeric", CodingScheme::Numeric),
        ("fuzzy", CodingScheme::Fuzzy),
    ] {
        group.bench_with_input(BenchmarkId::new("learning", name), &coding, |b, &coding| {
            b.iter(|| {
                let mut ate = Ate::noiseless(MemoryDevice::nominal());
                let mut rng = StdRng::seed_from_u64(5);
                let model =
                    LearningScheme::new(small_learning(coding, 3)).run(&mut ate, &mut rng);
                black_box(model.dataset_size)
            });
        });
    }
    group.finish();
}

fn bench_committee_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/committee");
    group.sample_size(10);
    for size in [1usize, 3, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                let mut ate = Ate::noiseless(MemoryDevice::nominal());
                let mut rng = StdRng::seed_from_u64(6);
                let model = LearningScheme::new(small_learning(CodingScheme::Numeric, size))
                    .run(&mut ate, &mut rng);
                black_box(model.accepted)
            });
        });
    }
    group.finish();
}

fn bench_screening(c: &mut Criterion) {
    let mut ate = Ate::noiseless(MemoryDevice::nominal());
    let mut rng = StdRng::seed_from_u64(7);
    let model =
        LearningScheme::new(small_learning(CodingScheme::Numeric, 3)).run(&mut ate, &mut rng);
    c.bench_function("ablation/screen_500_candidates", |b| {
        b.iter(|| {
            let generator = NeuralTestGenerator::new(&model);
            let mut rng = StdRng::seed_from_u64(8);
            black_box(generator.propose(500, 10, None, &mut rng))
        });
    });
}

criterion_group!(
    benches,
    bench_coding_schemes,
    bench_committee_sizes,
    bench_screening
);
criterion_main!(benches);
