//! Regenerates **Fig. 7**: the timing diagram for the data-output valid
//! time, for a benign and for a worst-case test.
//!
//! ```text
//! cargo run --release -p cichar-bench --bin repro_fig7
//! cargo run --release -p cichar-bench --bin repro_fig7 -- --device netlist
//! ```

use cichar_ate::{Ate, MeasuredParam};
use cichar_bench::{device_selection, thread_policy};
use cichar_core::report::render_timing_diagram;
use cichar_dut::T_DQ_SPEC;
use cichar_patterns::{march, Test};
use cichar_search::BinarySearch;

fn main() {
    // `--threads` is accepted for symmetry with the other repro binaries;
    // two dependent binary searches leave nothing worth fanning out.
    let _ = thread_policy();
    let device = device_selection();
    let mut ate = Ate::new(device.device.clone());
    let param = MeasuredParam::DataValidTime;
    let cycle_ns = 60.0;

    println!("== Fig. 7 reproduction: T_DQ timing diagram ==\n");
    for (label, pattern) in [
        ("March C- (benign production test)", march::march_c_minus(64)),
        ("checkerboard (coupling stress)", march::checkerboard(128)),
    ] {
        let test = Test::deterministic(label, pattern);
        let outcome = BinarySearch::new(param.generous_range(), param.resolution())
            .run(param.region_order(), ate.trip_oracle(&test, param));
        let t_dq = outcome.trip_point.expect("trip in range");
        println!("--- {label}: measured T_DQ = {t_dq:.1} ns ---");
        print!(
            "{}",
            render_timing_diagram(t_dq, T_DQ_SPEC.value(), cycle_ns)
        );
        println!();
    }
    println!(
        "the arrow direction of the paper's fig. 7: smaller T_DQ = less of the cycle\n\
         carries valid data = the processor waits longer = worse."
    );
}
