//! Regenerates **Fig. 8**: the worst-case device-parameter-variation
//! shmoo — Vdd on Y, `T_DQ` strobe on X, many tests overlaid, the
//! parameter-variation band marked.
//!
//! ```text
//! cargo run --release -p cichar-bench --bin repro_fig8
//! CICHAR_SCALE=full cargo run --release -p cichar-bench --bin repro_fig8   # 1000 tests
//! cargo run --release -p cichar-bench --bin repro_fig8 -- --threads 4
//! cargo run --release -p cichar-bench --bin repro_fig8 -- --device logic
//! ```

use cichar_ate::{Ate, OverlayShmoo, ParallelAte};
use cichar_bench::{device_selection, thread_policy, Scale};
use cichar_core::compare::Comparison;
use cichar_patterns::{random, Test, TestConditions};
use cichar_search::RegionOrder;
use cichar_units::{Axis, ParamKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let policy = thread_policy();
    let total = scale.random_tests();
    let mut rng = StdRng::seed_from_u64(scale.seed());

    // The overlaid population: the paper's 1000 tests are random tests
    // plus the GA-found worst cases, all at Vdd forced along the Y axis.
    let mut tests: Vec<Test> = (0..total)
        .map(|_| random::random_test_at(&mut rng, TestConditions::nominal()))
        .collect();

    // Add the three Table 1 tests so the plot shows the crossover story.
    let device = device_selection();
    let mut ate = Ate::new(device.device.clone());
    let comparison = Comparison::run(&mut ate, &scale.compare_config(), &mut rng);
    tests.push(Test::deterministic(
        "March Test",
        cichar_patterns::march::march_c_minus(64),
    ));
    if let Some(worst) = comparison.optimization.database.worst() {
        tests.push(worst.test.clone());
    }

    let x = Axis::new(ParamKind::StrobeDelay, 16.0, 36.0, 41).expect("static axis");
    let y = Axis::new(ParamKind::SupplyVoltage, 1.5, 2.1, 13).expect("static axis");
    // Fan the per-test captures out across the thread policy: each test
    // gets its own derived-seed session, so the overlay is bit-identical
    // at any thread count.
    let blueprint = ParallelAte::from_ate(&ate);
    let (overlay, shmoo_ledger) = OverlayShmoo::capture_overlay(
        &blueprint,
        &tests,
        x.clone(),
        y.clone(),
        RegionOrder::PassBelowFail,
        policy,
    );

    println!(
        "== Fig. 8 reproduction: shmoo, {} tests overlapping ({} threads) ==",
        overlay.tests(),
        policy.threads()
    );
    println!("Y: Vdd (V) | X: T_DQ strobe (ns) | '*' all pass, '.' none, digits = decile\n");
    print!("{}", overlay.render_ascii());
    println!("\nper-row worst-case parameter variation (min/max trip point across tests):");
    for yi in (0..y.len()).step_by(2) {
        if let Some((lo, hi)) = overlay.row_spread(yi) {
            println!(
                "  Vdd {:.2} V: [{lo:.2}, {hi:.2}] ns (band {:.2} ns)",
                y.at(yi),
                hi - lo
            );
        }
    }
    if let Some((vdd, lo, hi)) = overlay.worst_spread() {
        println!(
            "\nwidest variation at Vdd {vdd:.2} V: {:.2} ns — the fig. 8 arrow",
            hi - lo
        );
    }
    let mut total_ledger = *ate.ledger();
    total_ledger.merge(&shmoo_ledger);
    println!("\n{total_ledger}");
}
