//! Regenerates **Fig. 3**: the search-until-trip-point economics — the
//! same multiple-trip-point run measured with full-range searches and with
//! STP, with per-test and total measurement counts.
//!
//! ```text
//! cargo run --release -p cichar-bench --bin repro_fig3
//! cargo run --release -p cichar-bench --bin repro_fig3 -- --threads 4
//! cargo run --release -p cichar-bench --bin repro_fig3 -- --fault-rate 0.02
//! cargo run --release -p cichar-bench --bin repro_fig3 -- --trace out.jsonl --manifest out.json
//! cargo run --release -p cichar-bench --bin repro_fig3 -- --manifest out.json --timings
//! cargo run --release -p cichar-bench --bin repro_fig3 -- --device netlist
//! ```

use cichar_ate::{AteConfig, MeasuredParam, ParallelAte};
use cichar_bench::{device_selection, robustness, thread_policy, trace_outputs, Scale};
use cichar_trace::RunManifest;
use cichar_core::dsv::{MultiTripRunner, SearchStrategy};
use cichar_core::report::render_stp_saving;
use cichar_patterns::{random, Test, TestConditions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let policy = thread_policy();
    let robustness = robustness();
    let outputs = trace_outputs();
    let device = device_selection();
    let tracer = outputs.tracer();
    let total = scale.random_tests();
    let mut rng = StdRng::seed_from_u64(scale.seed());
    let tests: Vec<Test> = (0..total)
        .map(|_| random::random_test_at(&mut rng, TestConditions::nominal()))
        .collect();

    let param = MeasuredParam::DataValidTime;
    let mut runner = MultiTripRunner::new(param);
    if let Some(policy) = robustness.recovery {
        runner = runner.with_recovery(policy);
    }
    let config = AteConfig {
        faults: robustness.faults,
        ..AteConfig::default()
    };
    let blueprint = ParallelAte::new(device.device.clone(), config);
    tracer.phase("full_range");
    let (full, ledger_full) =
        runner.run_parallel_traced(&blueprint, &tests, SearchStrategy::FullRange, policy, &tracer);
    tracer.phase("stp");
    let (stp, ledger_stp) = runner.run_parallel_traced(
        &blueprint,
        &tests,
        SearchStrategy::SearchUntilTrip,
        policy,
        &tracer,
    );

    println!(
        "== Fig. 3 reproduction: search-until-trip-point saving ({total} tests, {} threads) ==\n",
        policy.threads()
    );
    // Per-test table for a readable subset, then totals for the whole run.
    let mut full_subset = full.clone();
    let mut stp_subset = stp.clone();
    full_subset.entries.truncate(16);
    stp_subset.entries.truncate(16);
    print!("{}", render_stp_saving(&full_subset, &stp_subset));
    println!("\nwhole population:");
    println!(
        "  full-range:        {} measurements ({:.1}/test), {:.1} ms tester time",
        full.total_measurements,
        full.mean_measurements_per_test(),
        ledger_full.test_time_ms()
    );
    println!(
        "  search-until-trip: {} measurements ({:.1}/test), {:.1} ms tester time",
        stp.total_measurements,
        stp.mean_measurements_per_test(),
        ledger_stp.test_time_ms()
    );
    let saving = 100.0 * (1.0 - stp.total_measurements as f64 / full.total_measurements as f64);
    println!("  saving:            {saving:.1}% of measurements");
    let max_delta = full
        .entries
        .iter()
        .zip(&stp.entries)
        .filter_map(|(a, b)| Some((a.trip_point? - b.trip_point?).abs()))
        .fold(0.0, f64::max);
    println!("  trip-point agreement: max |delta| = {max_delta:.4} ns");

    if outputs.enabled() {
        let mut manifest = RunManifest::new("fig3", scale.seed(), policy.threads())
            .with_config("scale", format!("{scale:?}"))
            .with_config("tests", total)
            .with_config("fault_rate", robustness.faults.flip_rate())
            .with_config("trip_min", stp.min().expect("converged"))
            .with_config("trip_max", stp.max().expect("converged"));
        if !device.is_default() {
            manifest = manifest.with_config("device", device.descriptor());
        }
        let manifest = manifest
            .capture(&tracer)
            .with_host();
        println!("\n{}", manifest.render());
        if let Err(err) = outputs.commit(&tracer, &manifest) {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
