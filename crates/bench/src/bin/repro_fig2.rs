//! Regenerates **Fig. 2**: the multiple-trip-point concept — trip points
//! of many non-deterministic random tests over one parameter axis, with
//! the worst-case trip-point variation band.
//!
//! ```text
//! cargo run --release -p cichar-bench --bin repro_fig2
//! cargo run --release -p cichar-bench --bin repro_fig2 -- --threads 4
//! cargo run --release -p cichar-bench --bin repro_fig2 -- --fault-rate 0.02 --retries 4
//! cargo run --release -p cichar-bench --bin repro_fig2 -- --trace out.jsonl --manifest out.json
//! cargo run --release -p cichar-bench --bin repro_fig2 -- --manifest out.json --timings
//! cargo run --release -p cichar-bench --bin repro_fig2 -- --sites 4
//! cargo run --release -p cichar-bench --bin repro_fig2 -- --telemetry tele --heartbeat-every 10
//! cargo run --release -p cichar-bench --bin repro_fig2 -- --device netlist:levels=16
//! ```
//!
//! With `--sites N` (N > 1) the same program runs on `N` lot-sampled dies
//! per touchdown through the wafer engine; the default of 1 preserves the
//! historical single-device campaign bit-for-bit.

use cichar_ate::{AteConfig, MeasuredParam, ParallelAte};
use cichar_bench::{
    device_selection, robustness, site_count, telemetry_setup, thread_policy, trace_outputs, Scale,
};
use cichar_core::dsv::{MultiTripRunner, SearchStrategy};
use cichar_core::report::render_multi_trip;
use cichar_core::wafer::{WaferConfig, WaferRunner};
use cichar_dut::Lot;
use cichar_patterns::{random, Test, TestConditions};
use cichar_trace::RunManifest;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let policy = thread_policy();
    let robustness = robustness();
    let outputs = trace_outputs();
    let sites = site_count();
    let device = device_selection();
    let telemetry_cfg = telemetry_setup();
    let usage = |err: String| -> ! {
        eprintln!("error: {err}");
        std::process::exit(2);
    };
    let tracer = telemetry_cfg
        .tracer_for(&outputs)
        .unwrap_or_else(|err| usage(err));
    let telemetry = telemetry_cfg
        .build("fig2", &tracer)
        .unwrap_or_else(|err| usage(err));
    let shown = 24usize;
    let total = scale.random_tests().max(shown);
    let mut rng = StdRng::seed_from_u64(scale.seed());
    let tests: Vec<Test> = (0..total)
        .map(|_| random::random_test_at(&mut rng, TestConditions::nominal()))
        .collect();

    let config = AteConfig {
        faults: robustness.faults,
        ..AteConfig::default()
    };
    let param = MeasuredParam::DataValidTime;
    let mut runner = MultiTripRunner::new(param);
    if let Some(policy) = robustness.recovery {
        runner = runner.with_recovery(policy);
    }

    if sites > 1 {
        // Multi-site mode: one touchdown of `sites` lot-sampled dies, the
        // full fig. 2 population on each, streamed through the wafer
        // engine.
        // The default memory path keeps the historical sequential-RNG die
        // sampling bit-for-bit; other backends sample through their own
        // process model.
        let dies = if device.is_default() {
            let mut die_rng = StdRng::seed_from_u64(scale.seed() ^ 0xD1E5);
            Lot::default().sample_dies(&mut die_rng, sites)
        } else {
            device.sample_dies(scale.seed() ^ 0xD1E5, sites)
        };
        let wafer = WaferRunner::from_runner(runner)
            .with_device(device.device.clone())
            .with_config(WaferConfig {
                sites,
                ..WaferConfig::default()
            })
            .with_telemetry(telemetry.clone());
        tracer.phase("dsv");
        let (report, ledger) = wafer
            .run_traced(
                &config,
                &dies,
                &tests,
                SearchStrategy::SearchUntilTrip,
                policy,
                &tracer,
            )
            .expect("no spill directory configured, no I/O to fail");
        let health = telemetry.finish().unwrap_or_else(|err| {
            eprintln!("error: telemetry sidecar failed: {err}");
            std::process::exit(1);
        });

        println!(
            "== Fig. 2 reproduction: multiple trip points ({total} random tests, {sites} sites, {} threads) ==\n",
            policy.threads()
        );
        let agg = &report.aggregate;
        println!("  entries measured:  {} ({} converged)", agg.entries, agg.converged);
        println!(
            "  trip point range:  [{:.3}, {:.3}] ns",
            agg.min.expect("converged"),
            agg.max.expect("converged")
        );
        println!(
            "  worst-case band:   {:.3} ns (mean {:.3})",
            agg.spread().expect("converged"),
            agg.mean().expect("converged")
        );
        println!(
            "  contact faults:    {} across {} touchdowns",
            report.contact_faults, report.touchdowns
        );
        println!("\n{ledger}");

        if outputs.enabled() {
            let mut manifest = RunManifest::new("fig2", scale.seed(), policy.threads())
                .with_config("scale", format!("{scale:?}"))
                .with_config("tests", total)
                .with_config("sites", sites)
                .with_config("strategy", "search_until_trip")
                .with_config("fault_rate", robustness.faults.flip_rate())
                .with_config("trip_min", agg.min.expect("converged"))
                .with_config("trip_max", agg.max.expect("converged"));
            if !device.is_default() {
                manifest = manifest.with_config("device", device.descriptor());
            }
            let mut manifest = manifest.capture(&tracer).with_host();
            manifest.health = health;
            println!("\n{}", manifest.render());
            if let Err(err) = outputs.commit(&tracer, &manifest) {
                eprintln!("error: {err}");
                std::process::exit(1);
            }
        }
        return;
    }

    let blueprint = ParallelAte::new(device.device.clone(), config);
    tracer.phase("dsv");
    let (report, ledger) = runner.run_parallel_observed(
        &blueprint,
        &tests,
        SearchStrategy::SearchUntilTrip,
        policy,
        &tracer,
        &telemetry,
    );
    let health = telemetry.finish().unwrap_or_else(|err| {
        eprintln!("error: telemetry sidecar failed: {err}");
        std::process::exit(1);
    });

    println!(
        "== Fig. 2 reproduction: multiple trip points ({total} random tests, {} threads) ==\n",
        policy.threads()
    );
    // Show a readable subset of bars, then the full-population statistics.
    let mut subset = report.clone();
    subset.entries.truncate(shown);
    print!("{}", render_multi_trip(&subset, param.kind().unit_symbol()));
    println!("\nfull population statistics:");
    println!("  tests measured:    {}", report.entries.len());
    println!(
        "  trip point range:  [{:.3}, {:.3}] ns",
        report.min().expect("converged"),
        report.max().expect("converged")
    );
    println!(
        "  worst-case band:   {:.3} ns (mean {:.3}, std {:.3})",
        report.spread().expect("converged"),
        report.mean().expect("converged"),
        report.std_dev().expect("converged")
    );
    println!(
        "  worst-case test:   {}",
        report.worst_entry().expect("converged").test_name
    );
    println!("  reference (eq. 2): {:.3} ns", report.reference_trip_point.expect("converged"));
    println!("\n{ledger}");

    if outputs.enabled() {
        let mut manifest = RunManifest::new("fig2", scale.seed(), policy.threads())
            .with_config("scale", format!("{scale:?}"))
            .with_config("tests", total)
            .with_config("strategy", "search_until_trip")
            .with_config("fault_rate", robustness.faults.flip_rate())
            .with_config("trip_min", report.min().expect("converged"))
            .with_config("trip_max", report.max().expect("converged"));
        if !device.is_default() {
            manifest = manifest.with_config("device", device.descriptor());
        }
        let mut manifest = manifest.capture(&tracer).with_host();
        manifest.health = health;
        println!("\n{}", manifest.render());
        if let Err(err) = outputs.commit(&tracer, &manifest) {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
