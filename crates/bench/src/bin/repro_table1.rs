//! Regenerates **Table 1**: comparison of `T_DQ` with different
//! approaches at Vdd = 1.8 V (deterministic March vs random vs NN+GA).
//!
//! ```text
//! cargo run --release -p cichar-bench --bin repro_table1
//! CICHAR_SCALE=full cargo run --release -p cichar-bench --bin repro_table1
//! cargo run --release -p cichar-bench --bin repro_table1 -- --threads 4
//! cargo run --release -p cichar-bench --bin repro_table1 -- --fault-rate 0.02 --retries 4
//! cargo run --release -p cichar-bench --bin repro_table1 -- --trace out.jsonl --manifest out.json
//! cargo run --release -p cichar-bench --bin repro_table1 -- --manifest out.json --timings
//! cargo run --release -p cichar-bench --bin repro_table1 -- --device netlist:levels=16
//! cargo run --release -p cichar-bench --bin repro_table1 -- --telemetry tele
//! ```

use cichar_ate::{Ate, AteConfig};
use cichar_bench::{
    device_selection, robustness, telemetry_setup, thread_policy, trace_outputs, Scale,
};
use cichar_trace::RunManifest;
use cichar_core::compare::Comparison;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let policy = thread_policy();
    let robustness = robustness();
    let outputs = trace_outputs();
    let device = device_selection();
    let telemetry_cfg = telemetry_setup();
    let usage = |err: String| -> ! {
        eprintln!("error: {err}");
        std::process::exit(2);
    };
    let tracer = telemetry_cfg
        .tracer_for(&outputs)
        .unwrap_or_else(|err| usage(err));
    let telemetry = telemetry_cfg
        .build("table1", &tracer)
        .unwrap_or_else(|err| usage(err));
    let mut config = scale.compare_config();
    config.optimization.recovery = robustness.recovery;
    let mut ate = Ate::with_config(
        device.device.clone(),
        AteConfig {
            faults: robustness.faults,
            ..AteConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(scale.seed());

    println!(
        "== Table 1 reproduction ({scale:?} scale, {} threads) ==\n",
        policy.threads()
    );
    let comparison =
        Comparison::run_parallel_observed(&mut ate, &config, policy, &mut rng, &tracer, &telemetry);
    let health = telemetry.finish().unwrap_or_else(|err| {
        eprintln!("error: telemetry sidecar failed: {err}");
        std::process::exit(1);
    });
    println!("{}", comparison.render());
    println!(
        "paper reference:   March 0.619 / 32.3 ns | Random 0.701 / 28.5 ns | NNGA 0.904 / 22.1 ns"
    );
    println!(
        "\nwinner: {} ({}), class {}",
        comparison.winner().test_name,
        comparison.winner().technique,
        comparison.winner().class
    );
    println!("\nworst-case database after optimization:");
    print!("{}", comparison.optimization.database);
    let total: u64 = comparison.rows.iter().map(|r| r.measurements).sum();
    println!("\ntotal measurements across the three techniques: {total}");

    if outputs.enabled() {
        let trips: Vec<f64> = comparison.rows.iter().map(|r| r.t_dq).collect();
        let mut manifest = RunManifest::new("table1", scale.seed(), policy.threads())
            .with_config("scale", format!("{scale:?}"))
            .with_config("random_tests", config.random_tests)
            .with_config("fault_rate", robustness.faults.flip_rate());
        if !device.is_default() {
            manifest = manifest.with_config("device", device.descriptor());
        }
        if let Some(min) = trips.iter().copied().reduce(f64::min) {
            manifest = manifest
                .with_config("trip_min", min)
                .with_config("trip_max", trips.iter().copied().fold(min, f64::max));
        }
        let mut manifest = manifest.capture(&tracer).with_host();
        manifest.health = health;
        println!("\n{}", manifest.render());
        if let Err(err) = outputs.commit(&tracer, &manifest) {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
