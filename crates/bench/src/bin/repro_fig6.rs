//! Regenerates **Fig. 6**: the worst-case-ratio classification bands
//! (pass / weakness / fail), crisp and fuzzy.
//!
//! ```text
//! cargo run --release -p cichar-bench --bin repro_fig6
//! ```

use cichar_bench::thread_policy;
use cichar_core::report::render_wcr_bands;
use cichar_core::wcr::WcrClass;
use cichar_fuzzy::coding::wcr_variable;

fn main() {
    // `--threads` and `--device` are accepted (and validated) for
    // symmetry with the other repro binaries; this figure is a pure
    // rendering with no measurements to fan out and no device to load.
    let _ = thread_policy();
    let _ = cichar_bench::device_selection();
    println!("== Fig. 6 reproduction: WCR classification ==\n");
    print!("{}", render_wcr_bands());

    println!("\ncrisp classification sweep:");
    for i in 0..=12 {
        let wcr = i as f64 * 0.1;
        println!("  WCR {wcr:.1} -> {}", WcrClass::from_wcr(wcr));
    }

    println!("\nfuzzy coding (§5) of the same axis:");
    let variable = wcr_variable();
    println!("  WCR  | pass  | weakness | fail");
    for i in 0..=12 {
        let wcr = i as f64 * 0.1;
        let g = variable.grades(wcr);
        println!("  {wcr:.1}  | {:.2}  | {:.2}     | {:.2}", g[0], g[1], g[2]);
    }
}
