//! Regenerates **Fig. 1**: the single-trip-point concept — a binary
//! search over the generous range, plotted as search steps with pass/fail
//! verdicts.
//!
//! ```text
//! cargo run --release -p cichar-bench --bin repro_fig1
//! cargo run --release -p cichar-bench --bin repro_fig1 -- --device logic
//! ```

use cichar_ate::{Ate, MeasuredParam};
use cichar_bench::{device_selection, thread_policy};
use cichar_core::report::render_search_trace;
use cichar_patterns::{march, Test};
use cichar_search::{BinarySearch, LinearSearch};

fn main() {
    // `--threads` is accepted for symmetry with the other repro binaries,
    // but a single binary search is data-dependent: each probe chooses the
    // next, so there is nothing to fan out.
    let policy = thread_policy();
    if !policy.is_serial() {
        println!("(note: one binary search has no parallel axis; running serially)\n");
    }
    let device = device_selection();
    let mut ate = Ate::new(device.device.clone());
    let test = Test::deterministic("march_c-", march::march_c_minus(64));
    let param = MeasuredParam::DataValidTime;

    println!("== Fig. 1 reproduction: single trip point via binary search ==");
    println!(
        "parameter: {param}, generous range {} {}\n",
        param.generous_range(),
        param.kind().unit_symbol()
    );
    let outcome = BinarySearch::new(param.generous_range(), param.resolution())
        .run(param.region_order(), ate.trip_oracle(&test, param));
    print!("{}", render_search_trace(&outcome, param.kind().unit_symbol()));

    // The §1 comparison point: the same trip point by linear search.
    let linear = LinearSearch::new(param.generous_range(), param.resolution())
        .run(param.region_order(), ate.trip_oracle(&test, param));
    println!(
        "\nfor contrast, a linear search at the same resolution needs {} measurements",
        linear.measurements()
    );
}
