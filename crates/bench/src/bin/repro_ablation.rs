//! Ablation study over the paper's §5 design choices:
//!
//! * trip-point coding — fuzzy set data vs simple numerical coding;
//! * committee size — voting machine vs a single network;
//! * GA seeding — fuzzy-neural sub-optimal seeds vs random initialization;
//! * search strategy inside the measurement loop — STP vs full range.
//!
//! ```text
//! cargo run --release -p cichar-bench --bin repro_ablation
//! cargo run --release -p cichar-bench --bin repro_ablation -- --threads 4
//! cargo run --release -p cichar-bench --bin repro_ablation -- --device logic
//! ```

use cichar_ate::Ate;
use cichar_bench::{thread_policy, Scale};
use cichar_core::compare::{Comparison, CompareConfig};
use cichar_exec::ExecPolicy;
use cichar_fuzzy::coding::CodingScheme;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_variant(name: &str, config: &CompareConfig, seed: u64, policy: ExecPolicy) {
    let device = cichar_bench::device_selection();
    let mut ate = Ate::new(device.device.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let cmp = Comparison::run_parallel(&mut ate, config, policy, &mut rng);
    let nnga = &cmp.rows[2];
    println!(
        "{name:<34} | t_dq {:>6.2} ns | WCR {:.3} | {:>8} measurements | committee accepted: {}",
        nnga.t_dq, nnga.wcr, nnga.measurements, cmp.model.accepted
    );
}

fn main() {
    let scale = Scale::from_env();
    let policy = thread_policy();
    let seed = scale.seed();
    let base = scale.compare_config();

    println!(
        "== Ablation: §5 design choices (NNGA row of Table 1 under each variant, {} threads) ==\n",
        policy.threads()
    );

    run_variant("baseline (numeric, committee, seeds)", &base, seed, policy);

    let mut fuzzy = base.clone();
    fuzzy.learning.coding = CodingScheme::Fuzzy;
    run_variant("fuzzy trip-point coding", &fuzzy, seed, policy);

    let mut single = base.clone();
    single.learning.committee_size = 1;
    run_variant("single network (no voting machine)", &single, seed, policy);

    let mut unseeded = base.clone();
    unseeded.nn_seeds = 1; // effectively no NN seeding
    unseeded.nn_candidates = 1;
    run_variant("GA without fuzzy-neural seeding", &unseeded, seed, policy);

    println!(
        "\n(all variants share the same random row and March row; only the NN+GA\n\
         pipeline changes. STP-vs-full-range economics are quantified by repro_fig3.)"
    );
}
