//! Wafer-scale throughput campaign: streams a full lot of dies through
//! the multi-site DSV engine and reports trips/sec, per-core throughput
//! and the memory high-water mark — the numbers `cichar-report diff
//! --gate` ratchets in CI.
//!
//! ```text
//! cargo run --release -p cichar-bench --bin repro_wafer
//! cargo run --release -p cichar-bench --bin repro_wafer -- --sites 8 --threads 4
//! cargo run --release -p cichar-bench --bin repro_wafer -- --dies 640 --manifest out.json
//! cargo run --release -p cichar-bench --bin repro_wafer -- --fault-rate 0.02 --retries 4
//! cargo run --release -p cichar-bench --bin repro_wafer -- --journal /tmp/j --chunk-timeout-ms 250
//! cargo run --release -p cichar-bench --bin repro_wafer -- --journal /tmp/j --resume
//! cargo run --release -p cichar-bench --bin repro_wafer -- --device logic
//! cargo run --release -p cichar-bench --bin repro_wafer -- --telemetry tele --heartbeat-every 10
//! CICHAR_SCALE=full cargo run --release -p cichar-bench --bin repro_wafer
//! ```
//!
//! The campaign shape comes from `CICHAR_SCALE` (`quick`: 96 dies × 4
//! tests; `full`: 2000 × 50 — the ROADMAP's 10^5 searches); `--dies N`
//! overrides the die count.

use cichar_ate::{AteConfig, MeasuredParam};
use cichar_bench::{
    device_selection, positive_count_from, robustness, site_count, telemetry_setup, thread_policy,
    trace_outputs, wafer_durability, Scale,
};
use cichar_core::dsv::SearchStrategy;
use cichar_core::journal::ResumeStats;
use cichar_core::wafer::{WaferConfig, WaferRunner};
use cichar_dut::Lot;
use cichar_patterns::{random, Test, TestConditions};
use cichar_trace::{RecoverySection, RunManifest};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let policy = thread_policy();
    let robustness = robustness();
    let outputs = trace_outputs();
    let sites = site_count();
    let durability = wafer_durability();
    let device = device_selection();
    let telemetry_cfg = telemetry_setup();
    let usage = |err: String| -> ! {
        eprintln!("error: {err}");
        std::process::exit(2);
    };
    let tracer = telemetry_cfg
        .tracer_for(&outputs)
        .unwrap_or_else(|err| usage(err));
    let telemetry = telemetry_cfg
        .build("wafer", &tracer)
        .unwrap_or_else(|err| usage(err));

    let (default_dies, tests_per_die) = scale.wafer_shape();
    let die_count = positive_count_from(std::env::args().skip(1), "--dies")
        .unwrap_or_else(|err| {
            eprintln!("error: {err}");
            std::process::exit(2);
        })
        .unwrap_or(default_dies);

    // The default memory path samples dies and tests from one sequential
    // RNG stream — the historical, baseline-gated order. Other backends
    // sample dies through their own process model (index-seeded, so the
    // test stream below is unaffected).
    let mut rng = StdRng::seed_from_u64(scale.seed());
    let dies = if device.is_default() {
        Lot::default().sample_dies(&mut rng, die_count)
    } else {
        device.sample_dies(scale.seed(), die_count)
    };
    let tests: Vec<Test> = (0..tests_per_die)
        .map(|_| random::random_test_at(&mut rng, TestConditions::nominal()))
        .collect();

    let config = AteConfig {
        faults: robustness.faults,
        ..AteConfig::default()
    };
    let mut wafer = WaferRunner::new(MeasuredParam::DataValidTime)
        .with_device(device.device.clone())
        .with_config(WaferConfig {
        sites,
        journal_dir: durability.journal.clone(),
        chunk_timeout_ms: durability.chunk_timeout_ms,
        site_fault_threshold: durability.site_fault_threshold,
        ..WaferConfig::default()
    });
    if let Some(policy) = robustness.recovery {
        wafer = wafer.with_recovery(policy);
    }
    wafer = wafer.with_telemetry(telemetry.clone());

    tracer.phase("wafer");
    let started = std::time::Instant::now();
    let strategy = SearchStrategy::SearchUntilTrip;
    let (report, ledger, resume_stats) = if durability.resume {
        match wafer.resume_traced(&config, &dies, &tests, strategy, policy, &tracer) {
            Ok((report, ledger, stats)) => (report, ledger, Some(stats)),
            Err(err) => {
                eprintln!("error: resume failed: {err}");
                std::process::exit(1);
            }
        }
    } else {
        match wafer.run_traced(&config, &dies, &tests, strategy, policy, &tracer) {
            Ok((report, ledger)) => (report, ledger, None),
            Err(err) => {
                eprintln!("error: campaign failed: {err}");
                std::process::exit(1);
            }
        }
    };
    let elapsed = started.elapsed();
    let health = match telemetry.finish() {
        Ok(health) => health,
        Err(err) => {
            eprintln!("error: telemetry sidecar failed: {err}");
            std::process::exit(1);
        }
    };

    let searches = report.dies * report.tests;
    let trips_per_sec = searches as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "== Wafer-scale throughput: {} dies x {} tests ({} sites, {} threads) ==\n",
        report.dies,
        report.tests,
        report.sites,
        policy.threads()
    );
    let agg = &report.aggregate;
    println!("  searches:          {searches} ({} converged, {} quarantined, {} recovered)",
        agg.converged, agg.quarantined, agg.recovered);
    if let (Some(min), Some(max)) = (agg.min, agg.max) {
        println!("  trip point range:  [{min:.3}, {max:.3}] ns");
        println!(
            "  percentiles:       p50 {:.2}  p90 {:.2}  p99 {:.2} (±{:.2} ns sketch)",
            agg.quantile(0.50).unwrap_or(f64::NAN),
            agg.quantile(0.90).unwrap_or(f64::NAN),
            agg.quantile(0.99).unwrap_or(f64::NAN),
            agg.sketch.resolution()
        );
    }
    println!(
        "  touchdowns:        {} ({} contact faults)",
        report.touchdowns, report.contact_faults
    );
    if let Some(stats) = &resume_stats {
        println!(
            "  resumed:           {}/{} chunks replayed ({} touchdowns, {} entries)",
            stats.chunks_replayed,
            stats.chunks_total,
            stats.touchdowns_replayed,
            stats.entries_replayed
        );
    }
    if report.timeouts > 0 || !report.quarantined_sites.is_empty() {
        println!(
            "  self-healing:      {} watchdog timeouts, sites quarantined: {:?}",
            report.timeouts, report.quarantined_sites
        );
    }
    println!(
        "  throughput:        {trips_per_sec:.1} trips/s ({:.1} trips/s per core)",
        trips_per_sec / policy.threads() as f64
    );
    if let (Some(dir), Some(health)) = (telemetry.dir(), &health) {
        println!(
            "  telemetry:         {} heartbeats, {} alarms raised -> {}",
            health.heartbeats,
            health.alarms_raised,
            dir.display()
        );
    }
    println!("\n{ledger}");

    if outputs.enabled() {
        let mut manifest = RunManifest::new("wafer", scale.seed(), policy.threads())
            .with_config("scale", format!("{scale:?}"))
            .with_config("dies", report.dies)
            .with_config("tests", report.tests)
            .with_config("sites", report.sites)
            .with_config("strategy", "search_until_trip")
            .with_config("fault_rate", robustness.faults.flip_rate());
        if !device.is_default() {
            manifest = manifest.with_config("device", device.descriptor());
        }
        if let (Some(min), Some(max)) = (agg.min, agg.max) {
            manifest = manifest.with_config("trip_min", min).with_config("trip_max", max);
        }
        let mut manifest = manifest.capture(&tracer).with_host();
        manifest.health = health;
        if durability.journal.is_some() {
            let stats = resume_stats.unwrap_or_else(|| ResumeStats {
                chunks_total: report
                    .touchdowns
                    .div_ceil(wafer.config().chunk_touchdowns.max(1) as u64),
                ..ResumeStats::default()
            });
            manifest.recovery = Some(RecoverySection {
                resumed: durability.resume,
                chunks_replayed: stats.chunks_replayed,
                chunks_total: stats.chunks_total,
                touchdowns_replayed: stats.touchdowns_replayed,
                entries_replayed: stats.entries_replayed,
                watchdog_timeouts: report.timeouts,
                breaker_trips: report.quarantined_sites.len() as u64,
                quarantined_sites: report.quarantined_sites.clone(),
            });
        }
        println!("\n{}", manifest.render());
        if let Err(err) = outputs.commit(&tracer, &manifest) {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
