//! Shared scaffolding for the reproduction binaries and benches.
//!
//! Every `repro_*` binary regenerates one table or figure of the paper
//! (see `DESIGN.md` §5 and `EXPERIMENTS.md`). Budgets follow the
//! `CICHAR_SCALE` environment variable: `quick` (default — seconds) or
//! `full` (minutes, closer to the paper's measurement counts).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cichar_ate::TesterFaultModel;
use cichar_core::compare::{quick_config, CompareConfig};
use cichar_core::learning::LearningConfig;
use cichar_core::optimization::OptimizationConfig;
use cichar_dut::{Device, DeviceSpec, Registry};
use cichar_exec::ExecPolicy;
use cichar_genetic::GaConfig;
use cichar_neural::TrainConfig;
use cichar_search::RetryPolicy;
use cichar_trace::{
    ensure_writable, AlarmRule, JsonlSink, NullSink, RunManifest, Telemetry, TimedTracer, Tracer,
    DEFAULT_HEARTBEAT_EVERY_MS,
};
use std::path::PathBuf;
use std::sync::Arc;

/// Shared strict parser for positive-integer operands. Every count-style
/// flag (`--threads`, `--sites`, `--dies`, `--chunk-timeout-ms`,
/// `--heartbeat-every`) routes through this one implementation, so they
/// all reject `0`, negatives, and junk with the same diagnostic shape.
pub fn parse_count(flag: &str, raw: &str) -> Result<u64, String> {
    match raw.trim().parse::<u64>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!(
            "invalid {flag} value {raw:?}: expected a positive integer"
        )),
    }
}

/// Shared strict parser for rate-style operands on the unit interval.
/// The two booleans select which endpoint is admitted, so
/// `--fault-rate` (`[0, 1)`) and `--site-fault-threshold` (`(0, 1]`)
/// share one implementation; the diagnostic renders the exact interval.
pub fn parse_rate(flag: &str, raw: &str, include_zero: bool, include_one: bool) -> Result<f64, String> {
    let ok = |r: f64| {
        r.is_finite()
            && (r > 0.0 || (include_zero && r == 0.0))
            && (r < 1.0 || (include_one && r == 1.0))
    };
    match raw.trim().parse::<f64>() {
        Ok(r) if ok(r) => Ok(r),
        _ => Err(format!(
            "invalid {flag} value {raw:?}: expected a rate in {}0, 1{}",
            if include_zero { '[' } else { '(' },
            if include_one { ']' } else { ')' },
        )),
    }
}

/// Execution policy for a repro binary: `--threads N` from the command
/// line when given, otherwise `CICHAR_THREADS`, otherwise the machine's
/// available parallelism.
///
/// A present-but-invalid `--threads` value (zero, negative, or
/// non-numeric) is a usage error: the binary prints a diagnostic to
/// stderr and exits with status 2 rather than silently running at an
/// unrequested width.
pub fn thread_policy() -> ExecPolicy {
    thread_policy_from(std::env::args().skip(1)).unwrap_or_else(|err| usage_error(&err))
}

/// [`thread_policy`] over an explicit argument list (testable).
///
/// Accepts `--threads N` and `--threads=N`. An absent flag defers to
/// [`ExecPolicy::from_env`]; `0`, a non-numeric value, or a missing
/// operand is rejected with a descriptive error.
pub fn thread_policy_from<I>(args: I) -> Result<ExecPolicy, String>
where
    I: IntoIterator<Item = String>,
{
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if let Some(raw) = flag_value("--threads", &arg, &mut args)? {
            return parse_count("--threads", &raw).map(|n| ExecPolicy::with_threads(n as usize));
        }
    }
    Ok(ExecPolicy::from_env())
}

/// Fault-injection and recovery settings for a repro binary, from
/// `--fault-rate R` and `--retries N`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Robustness {
    /// The tester fault model: transient flips at the requested rate and
    /// dropouts at half of it ([`TesterFaultModel::none`] at rate 0).
    pub faults: TesterFaultModel,
    /// The recovery policy, `None` when no faults are injected and no
    /// retry budget was requested.
    pub recovery: Option<RetryPolicy>,
}

impl Robustness {
    /// No injected faults, no recovery — the historical behaviour of
    /// every repro binary.
    pub fn off() -> Self {
        Robustness {
            faults: TesterFaultModel::none(),
            recovery: None,
        }
    }
}

/// Robustness settings for a repro binary: `--fault-rate R` injects
/// transient verdict flips at rate `R` and probe-contact dropouts at
/// `R/2`; `--retries N` bounds the recovery ladder (default 4 when
/// faults are on). Any nonzero fault rate also enables 2-of-3
/// majority-vote strobes. Exits with status 2 on an invalid value.
pub fn robustness() -> Robustness {
    robustness_from(std::env::args().skip(1)).unwrap_or_else(|err| usage_error(&err))
}

/// [`robustness`] over an explicit argument list (testable).
pub fn robustness_from<I>(args: I) -> Result<Robustness, String>
where
    I: IntoIterator<Item = String>,
{
    let mut fault_rate = 0.0f64;
    let mut retries: Option<usize> = None;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if let Some(raw) = flag_value("--fault-rate", &arg, &mut args)? {
            fault_rate = parse_rate("--fault-rate", &raw, true, false)?;
        } else if let Some(raw) = flag_value("--retries", &arg, &mut args)? {
            retries = match raw.trim().parse::<usize>() {
                Ok(n) => Some(n),
                Err(_) => {
                    return Err(format!(
                        "invalid --retries value {raw:?}: expected a non-negative integer"
                    ))
                }
            };
        }
    }
    let faults = if fault_rate > 0.0 {
        TesterFaultModel::transient(fault_rate, fault_rate / 2.0)
    } else {
        TesterFaultModel::none()
    };
    let recovery = match (fault_rate > 0.0, retries) {
        (false, None) => None,
        (injecting, budget) => {
            let policy = RetryPolicy::new(budget.unwrap_or(4), 50.0);
            Some(if injecting { policy.with_vote(2, 3) } else { policy })
        }
    };
    Ok(Robustness { faults, recovery })
}

/// Touchdown width for a repro binary: `--sites N`, defaulting to 1 —
/// the historical single-site behaviour. Exits with status 2 on an
/// invalid value.
pub fn site_count() -> usize {
    site_count_from(std::env::args().skip(1)).unwrap_or_else(|err| usage_error(&err))
}

/// [`site_count`] over an explicit argument list (testable).
pub fn site_count_from<I>(args: I) -> Result<usize, String>
where
    I: IntoIterator<Item = String>,
{
    Ok(positive_count_from(args, "--sites")?.unwrap_or(1))
}

/// Shared strict parser for `FLAG N` positive-integer operands — one
/// implementation behind `--sites` (and any future count-style flag), so
/// every binary rejects `0`, junk, and missing operands with the same
/// diagnostic instead of growing its own copy of the loop.
pub fn positive_count_from<I>(args: I, flag: &str) -> Result<Option<usize>, String>
where
    I: IntoIterator<Item = String>,
{
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if let Some(raw) = flag_value(flag, &arg, &mut args)? {
            return parse_count(flag, &raw).map(|n| Some(n as usize));
        }
    }
    Ok(None)
}

/// Extracts the operand of `flag` from `arg` (either `flag=value` or
/// `flag` followed by the next argument). `Ok(None)` when `arg` is not
/// this flag; an error when the operand is missing.
fn flag_value<I>(flag: &str, arg: &str, rest: &mut I) -> Result<Option<String>, String>
where
    I: Iterator<Item = String>,
{
    if let Some(v) = arg.strip_prefix(flag) {
        if let Some(v) = v.strip_prefix('=') {
            return Ok(Some(v.to_string()));
        }
        if v.is_empty() {
            return match rest.next() {
                Some(v) => Ok(Some(v)),
                None => Err(format!("{flag} requires a value")),
            };
        }
    }
    Ok(None)
}

fn usage_error(err: &str) -> ! {
    eprintln!("error: {err}");
    std::process::exit(2);
}

/// The device backend a repro binary characterizes: the parsed spec plus
/// the constructed prototype device.
#[derive(Debug, Clone)]
pub struct DeviceSelection {
    /// The parsed `--device` spec (default: `memory`, no overrides).
    pub spec: DeviceSpec,
    /// The prototype device built from the spec on the nominal die.
    pub device: Device,
}

impl DeviceSelection {
    /// Whether this is the default selection. Repro binaries omit device
    /// metadata from manifests on the default path, keeping default
    /// artifacts byte-identical to the pre-registry engine.
    pub fn is_default(&self) -> bool {
        self.spec.is_default()
    }

    /// Canonical `name[:key=val,...]` of the effective device.
    pub fn descriptor(&self) -> String {
        self.device.descriptor()
    }

    /// Samples `count` dies through the selected backend's process model
    /// (per-die seeds derive from `lot_seed` and the die index).
    pub fn sample_dies(&self, lot_seed: u64, count: usize) -> Vec<cichar_dut::Die> {
        self.device.sample_dies(lot_seed, count)
    }
}

/// Device backend for a repro binary: strict `--device NAME[:key=val,...]`,
/// defaulting to the calibrated `memory` backend. An unknown backend,
/// unknown parameter, out-of-range value or malformed `key=val` exits
/// with status 2 and prints the full registry listing.
pub fn device_selection() -> DeviceSelection {
    device_selection_from(std::env::args().skip(1)).unwrap_or_else(|err| usage_error(&err))
}

/// [`device_selection`] over an explicit argument list (testable).
pub fn device_selection_from<I>(args: I) -> Result<DeviceSelection, String>
where
    I: IntoIterator<Item = String>,
{
    let mut args = args.into_iter();
    let mut spec = DeviceSpec::default_backend();
    while let Some(arg) = args.next() {
        if let Some(raw) = flag_value("--device", &arg, &mut args)? {
            spec = raw
                .trim()
                .parse()
                .map_err(|err| format!("invalid --device value {raw:?}: {err}\n{}", Registry::builtin().listing()))?;
        }
    }
    let device = Registry::builtin()
        .create_from_spec(&spec)
        .map_err(|err| format!("invalid --device value: {err}\n{}", Registry::builtin().listing()))?;
    Ok(DeviceSelection { spec, device })
}

/// Durability knobs of a wafer campaign, parsed from the CLI:
/// `--journal DIR` arms chunk-granular crash checkpoints, `--resume`
/// replays an interrupted journal instead of starting over,
/// `--chunk-timeout-ms N` arms the stall watchdog (simulated
/// milliseconds per site-touchdown), and `--site-fault-threshold X`
/// arms the site health circuit breaker.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WaferDurability {
    /// Journal directory (`--journal DIR`); `None` runs unjournaled.
    pub journal: Option<PathBuf>,
    /// Whether to resume the journal rather than start fresh (`--resume`).
    pub resume: bool,
    /// Stall-watchdog budget (`--chunk-timeout-ms N`).
    pub chunk_timeout_ms: Option<u64>,
    /// Breaker threshold in `(0, 1]` (`--site-fault-threshold X`).
    pub site_fault_threshold: Option<f64>,
}

/// [`wafer_durability_from`] over the process arguments, exiting with
/// status 2 on an invalid flag (matching every other strict repro flag).
pub fn wafer_durability() -> WaferDurability {
    wafer_durability_from(std::env::args().skip(1)).unwrap_or_else(|err| usage_error(&err))
}

/// Strict parser for the wafer durability flags (testable). Rejects
/// empty journal paths, non-positive timeouts, thresholds outside
/// `(0, 1]`, and `--resume` without `--journal`.
pub fn wafer_durability_from<I>(args: I) -> Result<WaferDurability, String>
where
    I: IntoIterator<Item = String>,
{
    let mut durability = WaferDurability::default();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if let Some(dir) = flag_value("--journal", &arg, &mut args)? {
            if dir.trim().is_empty() {
                return Err(format!(
                    "invalid --journal value {dir:?}: expected a directory path"
                ));
            }
            durability.journal = Some(PathBuf::from(dir));
        } else if arg == "--resume" {
            durability.resume = true;
        } else if let Some(raw) = flag_value("--chunk-timeout-ms", &arg, &mut args)? {
            durability.chunk_timeout_ms = Some(parse_count("--chunk-timeout-ms", &raw)?);
        } else if let Some(raw) = flag_value("--site-fault-threshold", &arg, &mut args)? {
            durability.site_fault_threshold =
                Some(parse_rate("--site-fault-threshold", &raw, false, true)?);
        }
    }
    if durability.resume && durability.journal.is_none() {
        return Err(String::from(
            "--resume requires --journal DIR (there is no journal to resume without one)",
        ));
    }
    Ok(durability)
}

/// Observability destinations for a repro binary: `--trace out.jsonl`
/// streams the structured event log, `--manifest out.json` saves the
/// [`RunManifest`] artifact, and `--timings` arms the wall-clock span
/// timing sidecar (reported in the manifest's `timings` section).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceOutputs {
    /// JSONL event-stream destination, when `--trace PATH` was given.
    pub trace: Option<PathBuf>,
    /// Run-manifest destination, when `--manifest PATH` was given.
    pub manifest: Option<PathBuf>,
    /// Whether `--timings` armed the wall-clock timing sidecar.
    pub timings: bool,
}

impl TraceOutputs {
    /// Whether any observability output was requested.
    pub fn enabled(&self) -> bool {
        self.trace.is_some() || self.manifest.is_some() || self.timings
    }

    /// Builds the tracer for this run, validating every destination
    /// eagerly: an unwritable `--trace` or `--manifest` path is a usage
    /// error (status 2) *before* any measurement happens, not after.
    pub fn tracer(&self) -> Tracer {
        self.build_tracer().unwrap_or_else(|err| usage_error(&err))
    }

    /// [`TraceOutputs::tracer`] with errors returned (testable).
    ///
    /// The tracer is backed by a [`JsonlSink`] when `--trace` was given,
    /// a [`NullSink`] when only `--manifest` / `--timings` were (metrics
    /// and phases are still accumulated), and is disabled entirely
    /// otherwise. With `--timings`, the returned tracer carries the
    /// wall-clock timing sidecar — the event stream itself is unaffected.
    pub fn build_tracer(&self) -> Result<Tracer, String> {
        if let Some(path) = &self.manifest {
            ensure_writable(path).map_err(|e| {
                format!("cannot write --manifest destination {}: {e}", path.display())
            })?;
        }
        let sink: Arc<dyn cichar_trace::TraceSink> = match &self.trace {
            Some(path) => Arc::new(JsonlSink::create(path).map_err(|e| {
                format!("cannot write --trace destination {}: {e}", path.display())
            })?),
            None if self.manifest.is_some() || self.timings => Arc::new(NullSink),
            None => return Ok(Tracer::disabled()),
        };
        if self.timings {
            Ok(TimedTracer::new(sink).tracer().clone())
        } else {
            Ok(Tracer::new(sink))
        }
    }

    /// Commits the run's artifacts: closes the trace stream (the JSONL
    /// file appears atomically) and saves the manifest through
    /// `cichar_core::db::save_artifact` (also atomic). Called once, after
    /// the campaign finished.
    pub fn commit(&self, tracer: &Tracer, manifest: &RunManifest) -> Result<(), String> {
        tracer
            .finish()
            .map_err(|e| format!("failed to commit trace stream: {e}"))?;
        if let Some(path) = &self.manifest {
            cichar_core::db::save_artifact(manifest, path)
                .map_err(|e| format!("failed to save manifest {}: {e}", path.display()))?;
        }
        Ok(())
    }
}

/// Observability destinations from the command line (`--trace PATH`,
/// `--manifest PATH`, `--timings`). Exits with status 2 on a missing
/// operand.
pub fn trace_outputs() -> TraceOutputs {
    trace_outputs_from(std::env::args().skip(1)).unwrap_or_else(|err| usage_error(&err))
}

/// [`trace_outputs`] over an explicit argument list (testable).
pub fn trace_outputs_from<I>(args: I) -> Result<TraceOutputs, String>
where
    I: IntoIterator<Item = String>,
{
    let mut outputs = TraceOutputs::default();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if let Some(raw) = flag_value("--trace", &arg, &mut args)? {
            if raw.trim().is_empty() {
                return Err(String::from("--trace requires a non-empty path"));
            }
            outputs.trace = Some(PathBuf::from(raw));
        } else if let Some(raw) = flag_value("--manifest", &arg, &mut args)? {
            if raw.trim().is_empty() {
                return Err(String::from("--manifest requires a non-empty path"));
            }
            outputs.manifest = Some(PathBuf::from(raw));
        } else if arg == "--timings" {
            outputs.timings = true;
        }
    }
    Ok(outputs)
}

/// Live-telemetry destination for a repro binary: `--telemetry DIR`
/// arms the deterministic heartbeat stream (`heartbeat.jsonl`) and
/// OpenMetrics textfile (`metrics.prom`) inside `DIR`;
/// `--heartbeat-every N` tunes the cadence in **simulated**
/// milliseconds (default [`DEFAULT_HEARTBEAT_EVERY_MS`]). Everything
/// telemetry writes stays outside the golden normalized event stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetrySetup {
    /// Telemetry directory (`--telemetry DIR`); `None` disables.
    pub dir: Option<PathBuf>,
    /// Heartbeat cadence override in simulated ms (`--heartbeat-every N`).
    pub heartbeat_every_ms: Option<u64>,
}

impl TelemetrySetup {
    /// Whether `--telemetry` armed the sidecars.
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// The tracer a telemetry-armed run should observe. Heartbeats read
    /// the tracer's metrics registry, and a disabled tracer has none —
    /// so when telemetry is on but no `--trace`/`--manifest`/`--timings`
    /// output was requested, this substitutes a [`NullSink`]-backed
    /// enabled tracer (metrics accumulate, no event stream is written).
    pub fn tracer_for(&self, outputs: &TraceOutputs) -> Result<Tracer, String> {
        let tracer = outputs.build_tracer()?;
        if self.enabled() && !tracer.is_enabled() {
            return Ok(Tracer::new(Arc::new(NullSink)));
        }
        Ok(tracer)
    }

    /// Builds the live [`Telemetry`] handle for `campaign`, observing
    /// `tracer` (use [`TelemetrySetup::tracer_for`] to obtain one that
    /// is guaranteed enabled). Disabled setups cost nothing.
    pub fn build(&self, campaign: &str, tracer: &Tracer) -> Result<Telemetry, String> {
        match &self.dir {
            None => Ok(Telemetry::disabled()),
            Some(dir) => Telemetry::create_with(
                dir,
                campaign,
                tracer.clone(),
                self.heartbeat_every_ms.unwrap_or(DEFAULT_HEARTBEAT_EVERY_MS),
                AlarmRule::default_set(),
            )
            .map_err(|e| format!("cannot write --telemetry directory {}: {e}", dir.display())),
        }
    }
}

/// Telemetry destination from the command line (`--telemetry DIR`,
/// `--heartbeat-every N`). Exits with status 2 on an invalid value.
pub fn telemetry_setup() -> TelemetrySetup {
    telemetry_setup_from(std::env::args().skip(1)).unwrap_or_else(|err| usage_error(&err))
}

/// [`telemetry_setup`] over an explicit argument list (testable).
/// Rejects empty directories, non-positive cadences, and
/// `--heartbeat-every` without `--telemetry` (there would be nothing to
/// beat into).
pub fn telemetry_setup_from<I>(args: I) -> Result<TelemetrySetup, String>
where
    I: IntoIterator<Item = String>,
{
    let mut setup = TelemetrySetup::default();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if let Some(dir) = flag_value("--telemetry", &arg, &mut args)? {
            if dir.trim().is_empty() {
                return Err(format!(
                    "invalid --telemetry value {dir:?}: expected a directory path"
                ));
            }
            setup.dir = Some(PathBuf::from(dir));
        } else if let Some(raw) = flag_value("--heartbeat-every", &arg, &mut args)? {
            setup.heartbeat_every_ms = Some(parse_count("--heartbeat-every", &raw)?);
        }
    }
    if setup.heartbeat_every_ms.is_some() && setup.dir.is_none() {
        return Err(String::from(
            "--heartbeat-every requires --telemetry DIR (there is no heartbeat stream without one)",
        ));
    }
    Ok(setup)
}

/// The run scale selected through `CICHAR_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long budgets for CI and smoke runs.
    Quick,
    /// The budget used for `EXPERIMENTS.md` numbers.
    Full,
}

impl Scale {
    /// Reads `CICHAR_SCALE` (`quick` unless set to `full`).
    pub fn from_env() -> Self {
        match std::env::var("CICHAR_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Number of random tests for the fig. 2 / fig. 8 style sweeps
    /// (the paper overlays 1000).
    pub fn random_tests(self) -> usize {
        match self {
            Scale::Quick => 120,
            Scale::Full => 1000,
        }
    }

    /// The Table 1 comparison configuration at this scale.
    pub fn compare_config(self) -> CompareConfig {
        match self {
            Scale::Quick => quick_config(),
            Scale::Full => CompareConfig {
                random_tests: 1000,
                learning: LearningConfig {
                    tests_per_round: 300,
                    max_rounds: 3,
                    committee_size: 5,
                    hidden: vec![16, 8],
                    train: TrainConfig {
                        epochs: 300,
                        ..TrainConfig::default()
                    },
                    ..LearningConfig::default()
                },
                nn_candidates: 5000,
                nn_seeds: 40,
                optimization: OptimizationConfig {
                    ga: GaConfig {
                        population_size: 40,
                        islands: 3,
                        generations: 80,
                        stagnation_restart: 12,
                        target_fitness: Some(1.0),
                        ..GaConfig::default()
                    },
                    ..OptimizationConfig::default()
                },
                ..CompareConfig::default()
            },
        }
    }

    /// Wafer-campaign shape at this scale: `(dies, tests per die)`. The
    /// full shape lands at the ROADMAP's 10^5 (test, die) searches.
    pub fn wafer_shape(self) -> (usize, usize) {
        match self {
            Scale::Quick => (96, 4),
            Scale::Full => (2000, 50),
        }
    }

    /// Deterministic RNG seed shared by all repro binaries.
    pub fn seed(self) -> u64 {
        0xDA7E_2005
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_quick() {
        // The test environment does not set CICHAR_SCALE=full.
        if std::env::var("CICHAR_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Quick);
        }
    }

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn threads_flag_is_parsed_in_both_spellings() {
        let a = thread_policy_from(strings(&["--threads", "4"])).unwrap();
        assert_eq!(a.threads(), 4);
        let b = thread_policy_from(strings(&["--scale", "full", "--threads=7"])).unwrap();
        assert_eq!(b.threads(), 7);
    }

    #[test]
    fn bad_or_zero_thread_values_are_rejected_with_a_clear_error() {
        for args in [
            &["--threads", "0"][..],
            &["--threads=junk"][..],
            &["--threads", "-3"][..],
            &["--threads"][..],
        ] {
            let err = thread_policy_from(strings(args)).unwrap_err();
            assert!(err.contains("--threads"), "{err}");
        }
        let err = thread_policy_from(strings(&["--threads=0"])).unwrap_err();
        assert!(err.contains("positive integer"), "{err}");
    }

    #[test]
    fn absent_flag_defers_to_the_environment() {
        // The test environment does not set CICHAR_THREADS.
        if std::env::var("CICHAR_THREADS").is_err() {
            assert_eq!(
                thread_policy_from(strings(&[])).unwrap(),
                ExecPolicy::from_env()
            );
        }
    }

    #[test]
    fn sites_flag_is_strict_in_both_spellings_and_defaults_to_one() {
        assert_eq!(site_count_from(strings(&[])).unwrap(), 1);
        assert_eq!(site_count_from(strings(&["--sites", "4"])).unwrap(), 4);
        assert_eq!(site_count_from(strings(&["--threads=2", "--sites=8"])).unwrap(), 8);
        for args in [
            &["--sites", "0"][..],
            &["--sites=junk"][..],
            &["--sites", "-2"][..],
            &["--sites"][..],
        ] {
            let err = site_count_from(strings(args)).unwrap_err();
            assert!(err.contains("--sites"), "{err}");
        }
    }

    #[test]
    fn positive_count_parser_is_reusable_for_other_flags() {
        let dies = positive_count_from(strings(&["--dies", "640"]), "--dies").unwrap();
        assert_eq!(dies, Some(640));
        assert_eq!(positive_count_from(strings(&[]), "--dies").unwrap(), None);
        assert!(positive_count_from(strings(&["--dies=0"]), "--dies").is_err());
    }

    #[test]
    fn robustness_defaults_to_off() {
        let r = robustness_from(strings(&[])).unwrap();
        assert_eq!(r, Robustness::off());
        assert!(r.faults.is_none());
        assert!(r.recovery.is_none());
    }

    #[test]
    fn fault_rate_enables_injection_and_voting_recovery() {
        let r = robustness_from(strings(&["--fault-rate", "0.02"])).unwrap();
        assert!((r.faults.flip_rate() - 0.02).abs() < 1e-12);
        assert!((r.faults.dropout_rate() - 0.01).abs() < 1e-12);
        let policy = r.recovery.expect("faults imply recovery");
        assert_eq!(policy.max_retries(), 4);
        assert_eq!(policy.vote(), Some((2, 3)));
    }

    #[test]
    fn retries_flag_overrides_the_ladder_depth() {
        let r = robustness_from(strings(&["--fault-rate=0.1", "--retries", "9"])).unwrap();
        assert_eq!(r.recovery.expect("recovery on").max_retries(), 9);
        // A retry budget without faults still arms recovery (real testers
        // fault on their own), but without the voting overhead.
        let bare = robustness_from(strings(&["--retries=2"])).unwrap();
        let policy = bare.recovery.expect("recovery armed");
        assert_eq!(policy.max_retries(), 2);
        assert_eq!(policy.vote(), None);
        assert!(bare.faults.is_none());
    }

    #[test]
    fn bad_robustness_values_are_rejected() {
        for args in [
            &["--fault-rate", "1.5"][..],
            &["--fault-rate=nope"][..],
            &["--fault-rate", "-0.1"][..],
            &["--retries", "many"][..],
            &["--retries"][..],
        ] {
            assert!(robustness_from(strings(args)).is_err(), "{args:?}");
        }
    }

    #[test]
    fn trace_outputs_parse_both_flags_in_both_spellings() {
        let o = trace_outputs_from(strings(&["--trace", "a.jsonl", "--manifest=b.json"])).unwrap();
        assert_eq!(o.trace.as_deref(), Some(std::path::Path::new("a.jsonl")));
        assert_eq!(o.manifest.as_deref(), Some(std::path::Path::new("b.json")));
        assert!(o.enabled());
        let absent = trace_outputs_from(strings(&["--threads", "4"])).unwrap();
        assert_eq!(absent, TraceOutputs::default());
        assert!(!absent.enabled());
        assert!(!absent.build_tracer().unwrap().is_enabled());
    }

    #[test]
    fn missing_or_empty_trace_operands_are_rejected() {
        for args in [
            &["--trace"][..],
            &["--manifest"][..],
            &["--trace="][..],
            &["--manifest="][..],
        ] {
            assert!(trace_outputs_from(strings(args)).is_err(), "{args:?}");
        }
    }

    #[test]
    fn timings_flag_arms_the_wall_clock_sidecar() {
        use cichar_trace::TraceEvent;
        let o = trace_outputs_from(strings(&["--timings"])).unwrap();
        assert!(o.timings);
        assert!(o.enabled(), "--timings alone still prints a manifest");
        let tracer = o.build_tracer().expect("NullSink needs no path");
        assert!(tracer.is_enabled());
        tracer.phase("dsv");
        let span = tracer.span(0);
        span.emit(TraceEvent::ProbeIssued { value: 1.0, speculative: false });
        span.mark_done();
        tracer.absorb(span);
        let timings = tracer.timings().expect("sidecar armed");
        assert_eq!(timings.phases[0].phase, "dsv");
        assert_eq!(timings.phases[0].spans, 1);
        // Without the flag there is no sidecar to pay for.
        let plain = trace_outputs_from(strings(&[])).unwrap();
        assert!(!plain.timings);
        assert_eq!(plain.build_tracer().unwrap().timings(), None);
    }

    #[test]
    fn unwritable_destinations_fail_eagerly() {
        let missing = std::env::temp_dir().join("cichar_no_such_dir");
        let o = TraceOutputs {
            trace: Some(missing.join("t.jsonl")),
            ..TraceOutputs::default()
        };
        let err = o.build_tracer().unwrap_err();
        assert!(err.contains("--trace"), "{err}");
        let o = TraceOutputs {
            manifest: Some(missing.join("m.json")),
            ..TraceOutputs::default()
        };
        let err = o.build_tracer().unwrap_err();
        assert!(err.contains("--manifest"), "{err}");
    }

    #[test]
    fn manifest_only_runs_accumulate_metrics_and_commit() {
        use cichar_trace::TraceEvent;
        let dir = std::env::temp_dir().join("cichar_bench_trace_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let o = TraceOutputs {
            manifest: Some(dir.join("m.json")),
            ..TraceOutputs::default()
        };
        let tracer = o.build_tracer().expect("tmp is writable");
        assert!(tracer.is_enabled());
        let span = tracer.span(0);
        span.emit(TraceEvent::ProbeIssued { value: 1.0, speculative: false });
        tracer.absorb(span);
        let manifest = RunManifest::new("selftest", 1, 1).capture(&tracer);
        assert_eq!(manifest.metrics.probes_issued, 1);
        o.commit(&tracer, &manifest).expect("commit succeeds");
        assert!(dir.join("m.json").exists());
    }

    #[test]
    fn wafer_durability_parses_all_flags_in_both_spellings() {
        let d = wafer_durability_from(strings(&[
            "--journal",
            "/tmp/j",
            "--resume",
            "--chunk-timeout-ms=250",
            "--site-fault-threshold",
            "0.25",
        ]))
        .unwrap();
        assert_eq!(d.journal.as_deref(), Some(std::path::Path::new("/tmp/j")));
        assert!(d.resume);
        assert_eq!(d.chunk_timeout_ms, Some(250));
        assert_eq!(d.site_fault_threshold, Some(0.25));
        assert_eq!(wafer_durability_from(strings(&[])).unwrap(), WaferDurability::default());
    }

    #[test]
    fn wafer_durability_rejects_invalid_values_with_the_flag_name() {
        for (args, needle) in [
            (&["--journal", ""][..], "--journal"),
            (&["--journal"][..], "--journal"),
            (&["--chunk-timeout-ms", "0"][..], "--chunk-timeout-ms"),
            (&["--chunk-timeout-ms=junk"][..], "--chunk-timeout-ms"),
            (&["--site-fault-threshold", "1.5"][..], "(0, 1]"),
            (&["--site-fault-threshold", "0"][..], "(0, 1]"),
            (&["--site-fault-threshold=nan"][..], "(0, 1]"),
            (&["--resume"][..], "--resume requires --journal"),
        ] {
            let err = wafer_durability_from(strings(args)).unwrap_err();
            assert!(err.contains(needle), "{args:?} -> {err}");
        }
    }

    #[test]
    fn count_flags_share_one_negative_path() {
        // Every count-style flag is backed by parse_count, so the same
        // bad operands are rejected with the same diagnostic everywhere.
        for raw in ["0", "-3", "junk", "1.5", ""] {
            for flag in ["--threads", "--sites", "--dies", "--chunk-timeout-ms", "--heartbeat-every"] {
                let err = parse_count(flag, raw).unwrap_err();
                assert!(err.contains(flag), "{flag} {raw:?} -> {err}");
                assert!(err.contains("positive integer"), "{flag} {raw:?} -> {err}");
            }
        }
        assert_eq!(parse_count("--dies", " 640 ").unwrap(), 640);
    }

    #[test]
    fn rate_flags_share_one_negative_path_with_exact_intervals() {
        for raw in ["1.5", "-0.1", "nan", "inf", "nope", ""] {
            let err = parse_rate("--fault-rate", raw, true, false).unwrap_err();
            assert!(err.contains("[0, 1)"), "{raw:?} -> {err}");
            let err = parse_rate("--site-fault-threshold", raw, false, true).unwrap_err();
            assert!(err.contains("(0, 1]"), "{raw:?} -> {err}");
        }
        // Endpoint admission differs per interval and only per interval.
        assert_eq!(parse_rate("--fault-rate", "0", true, false).unwrap(), 0.0);
        assert!(parse_rate("--fault-rate", "1", true, false).is_err());
        assert!(parse_rate("--site-fault-threshold", "0", false, true).is_err());
        assert_eq!(parse_rate("--site-fault-threshold", "1", false, true).unwrap(), 1.0);
    }

    #[test]
    fn telemetry_setup_parses_both_flags_in_both_spellings() {
        let t = telemetry_setup_from(strings(&["--telemetry", "tele", "--heartbeat-every=10"]))
            .unwrap();
        assert_eq!(t.dir.as_deref(), Some(std::path::Path::new("tele")));
        assert_eq!(t.heartbeat_every_ms, Some(10));
        assert!(t.enabled());
        let absent = telemetry_setup_from(strings(&["--threads", "4"])).unwrap();
        assert_eq!(absent, TelemetrySetup::default());
        assert!(!absent.enabled());
        assert!(!absent.build("x", &Tracer::disabled()).unwrap().is_enabled());
    }

    #[test]
    fn telemetry_setup_rejects_invalid_values_with_the_flag_name() {
        for (args, needle) in [
            (&["--telemetry", ""][..], "--telemetry"),
            (&["--telemetry"][..], "--telemetry"),
            (&["--telemetry=d", "--heartbeat-every", "0"][..], "--heartbeat-every"),
            (&["--telemetry=d", "--heartbeat-every=junk"][..], "--heartbeat-every"),
            (&["--heartbeat-every", "5"][..], "requires --telemetry"),
        ] {
            let err = telemetry_setup_from(strings(args)).unwrap_err();
            assert!(err.contains(needle), "{args:?} -> {err}");
        }
    }

    #[test]
    fn telemetry_without_trace_outputs_forces_an_enabled_tracer() {
        let t = telemetry_setup_from(strings(&["--telemetry", "tele"])).unwrap();
        let outputs = TraceOutputs::default();
        // Without telemetry the tracer stays disabled (zero overhead)...
        assert!(!TelemetrySetup::default().tracer_for(&outputs).unwrap().is_enabled());
        // ...but an armed telemetry dir needs a live metrics registry.
        let tracer = t.tracer_for(&outputs).unwrap();
        assert!(tracer.is_enabled());
        // When a trace output exists already, that tracer is reused as-is.
        let o = TraceOutputs { timings: true, ..TraceOutputs::default() };
        assert!(t.tracer_for(&o).unwrap().timings().is_some());
    }

    #[test]
    fn telemetry_build_writes_the_sidecars_into_the_directory() {
        use cichar_trace::{HEARTBEAT_FILE, METRICS_FILE};
        let dir = std::env::temp_dir().join(format!("cichar_bench_tele_{}", std::process::id()));
        let t = TelemetrySetup { dir: Some(dir.clone()), heartbeat_every_ms: Some(5) };
        let tracer = t.tracer_for(&TraceOutputs::default()).unwrap();
        let telemetry = t.build("selftest", &tracer).expect("tmp is writable");
        assert!(telemetry.is_enabled());
        telemetry.tick(|| cichar_trace::Progress::units("selftest", 6_000, 1, 2));
        let health = telemetry.finish().expect("no io error").expect("enabled");
        assert!(health.heartbeats >= 1);
        assert!(dir.join(HEARTBEAT_FILE).exists());
        assert!(dir.join(METRICS_FILE).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_scale_is_larger_everywhere() {
        let q = Scale::Quick.compare_config();
        let f = Scale::Full.compare_config();
        assert!(f.random_tests > q.random_tests);
        assert!(f.learning.tests_per_round > q.learning.tests_per_round);
        assert!(f.optimization.ga.generations > q.optimization.ga.generations);
        assert_eq!(Scale::Full.random_tests(), 1000, "the paper's 1000 tests");
    }
}
