//! Shared scaffolding for the reproduction binaries and benches.
//!
//! Every `repro_*` binary regenerates one table or figure of the paper
//! (see `DESIGN.md` §5 and `EXPERIMENTS.md`). Budgets follow the
//! `CICHAR_SCALE` environment variable: `quick` (default — seconds) or
//! `full` (minutes, closer to the paper's measurement counts).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cichar_core::compare::{quick_config, CompareConfig};
use cichar_core::learning::LearningConfig;
use cichar_core::optimization::OptimizationConfig;
use cichar_genetic::GaConfig;
use cichar_neural::TrainConfig;

/// The run scale selected through `CICHAR_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long budgets for CI and smoke runs.
    Quick,
    /// The budget used for `EXPERIMENTS.md` numbers.
    Full,
}

impl Scale {
    /// Reads `CICHAR_SCALE` (`quick` unless set to `full`).
    pub fn from_env() -> Self {
        match std::env::var("CICHAR_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Number of random tests for the fig. 2 / fig. 8 style sweeps
    /// (the paper overlays 1000).
    pub fn random_tests(self) -> usize {
        match self {
            Scale::Quick => 120,
            Scale::Full => 1000,
        }
    }

    /// The Table 1 comparison configuration at this scale.
    pub fn compare_config(self) -> CompareConfig {
        match self {
            Scale::Quick => quick_config(),
            Scale::Full => CompareConfig {
                random_tests: 1000,
                learning: LearningConfig {
                    tests_per_round: 300,
                    max_rounds: 3,
                    committee_size: 5,
                    hidden: vec![16, 8],
                    train: TrainConfig {
                        epochs: 300,
                        ..TrainConfig::default()
                    },
                    ..LearningConfig::default()
                },
                nn_candidates: 5000,
                nn_seeds: 40,
                optimization: OptimizationConfig {
                    ga: GaConfig {
                        population_size: 40,
                        islands: 3,
                        generations: 80,
                        stagnation_restart: 12,
                        target_fitness: Some(1.0),
                        ..GaConfig::default()
                    },
                    ..OptimizationConfig::default()
                },
                ..CompareConfig::default()
            },
        }
    }

    /// Deterministic RNG seed shared by all repro binaries.
    pub fn seed(self) -> u64 {
        0xDA7E_2005
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_quick() {
        // The test environment does not set CICHAR_SCALE=full.
        if std::env::var("CICHAR_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Quick);
        }
    }

    #[test]
    fn full_scale_is_larger_everywhere() {
        let q = Scale::Quick.compare_config();
        let f = Scale::Full.compare_config();
        assert!(f.random_tests > q.random_tests);
        assert!(f.learning.tests_per_round > q.learning.tests_per_round);
        assert!(f.optimization.ga.generations > q.optimization.ga.generations);
        assert_eq!(Scale::Full.random_tests(), 1000, "the paper's 1000 tests");
    }
}
