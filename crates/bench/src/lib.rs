//! Shared scaffolding for the reproduction binaries and benches.
//!
//! Every `repro_*` binary regenerates one table or figure of the paper
//! (see `DESIGN.md` §5 and `EXPERIMENTS.md`). Budgets follow the
//! `CICHAR_SCALE` environment variable: `quick` (default — seconds) or
//! `full` (minutes, closer to the paper's measurement counts).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cichar_core::compare::{quick_config, CompareConfig};
use cichar_core::learning::LearningConfig;
use cichar_core::optimization::OptimizationConfig;
use cichar_exec::ExecPolicy;
use cichar_genetic::GaConfig;
use cichar_neural::TrainConfig;

/// Execution policy for a repro binary: `--threads N` from the command
/// line when given, otherwise `CICHAR_THREADS`, otherwise the machine's
/// available parallelism.
pub fn thread_policy() -> ExecPolicy {
    thread_policy_from(std::env::args().skip(1))
}

/// [`thread_policy`] over an explicit argument list (testable).
///
/// Accepts `--threads N` and `--threads=N`; `0` or an unparsable value
/// falls back to available parallelism, an absent flag to
/// [`ExecPolicy::from_env`].
pub fn thread_policy_from<I>(args: I) -> ExecPolicy
where
    I: IntoIterator<Item = String>,
{
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let value = if let Some(v) = arg.strip_prefix("--threads=") {
            Some(v.to_string())
        } else if arg == "--threads" {
            args.next()
        } else {
            None
        };
        if let Some(raw) = value {
            return match cichar_exec::parse_thread_count(&raw) {
                Some(n) => ExecPolicy::with_threads(n),
                None => ExecPolicy::default(),
            };
        }
    }
    ExecPolicy::from_env()
}

/// The run scale selected through `CICHAR_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long budgets for CI and smoke runs.
    Quick,
    /// The budget used for `EXPERIMENTS.md` numbers.
    Full,
}

impl Scale {
    /// Reads `CICHAR_SCALE` (`quick` unless set to `full`).
    pub fn from_env() -> Self {
        match std::env::var("CICHAR_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Number of random tests for the fig. 2 / fig. 8 style sweeps
    /// (the paper overlays 1000).
    pub fn random_tests(self) -> usize {
        match self {
            Scale::Quick => 120,
            Scale::Full => 1000,
        }
    }

    /// The Table 1 comparison configuration at this scale.
    pub fn compare_config(self) -> CompareConfig {
        match self {
            Scale::Quick => quick_config(),
            Scale::Full => CompareConfig {
                random_tests: 1000,
                learning: LearningConfig {
                    tests_per_round: 300,
                    max_rounds: 3,
                    committee_size: 5,
                    hidden: vec![16, 8],
                    train: TrainConfig {
                        epochs: 300,
                        ..TrainConfig::default()
                    },
                    ..LearningConfig::default()
                },
                nn_candidates: 5000,
                nn_seeds: 40,
                optimization: OptimizationConfig {
                    ga: GaConfig {
                        population_size: 40,
                        islands: 3,
                        generations: 80,
                        stagnation_restart: 12,
                        target_fitness: Some(1.0),
                        ..GaConfig::default()
                    },
                    ..OptimizationConfig::default()
                },
                ..CompareConfig::default()
            },
        }
    }

    /// Deterministic RNG seed shared by all repro binaries.
    pub fn seed(self) -> u64 {
        0xDA7E_2005
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_quick() {
        // The test environment does not set CICHAR_SCALE=full.
        if std::env::var("CICHAR_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Quick);
        }
    }

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn threads_flag_is_parsed_in_both_spellings() {
        let a = thread_policy_from(strings(&["--threads", "4"]));
        assert_eq!(a.threads(), 4);
        let b = thread_policy_from(strings(&["--scale", "full", "--threads=7"]));
        assert_eq!(b.threads(), 7);
    }

    #[test]
    fn bad_or_zero_thread_values_fall_back_to_the_machine() {
        for args in [&["--threads", "0"][..], &["--threads=junk"][..]] {
            let policy = thread_policy_from(strings(args));
            assert_eq!(policy, ExecPolicy::default());
        }
    }

    #[test]
    fn absent_flag_defers_to_the_environment() {
        // The test environment does not set CICHAR_THREADS.
        if std::env::var("CICHAR_THREADS").is_err() {
            assert_eq!(thread_policy_from(strings(&[])), ExecPolicy::from_env());
        }
    }

    #[test]
    fn full_scale_is_larger_everywhere() {
        let q = Scale::Quick.compare_config();
        let f = Scale::Full.compare_config();
        assert!(f.random_tests > q.random_tests);
        assert!(f.learning.tests_per_round > q.learning.tests_per_round);
        assert!(f.optimization.ga.generations > q.optimization.ga.generations);
        assert_eq!(Scale::Full.random_tests(), 1000, "the paper's 1000 tests");
    }
}
