//! From-scratch neural networks for device characterization.
//!
//! §5 of the paper uses "single/multiple neural networks" under supervised
//! learning — the ATE provides trip-point labels for random tests — with
//! "iterative network learnability and generalization check" and an "NN
//! voting machine algorithm, such that multiple NNs are trained on
//! different subsets of the training input tests, then vote in parallel on
//! unknown input tests" (fig. 4, steps 1 and 4). This crate implements that
//! stack with no external dependencies beyond `rand`:
//!
//! * [`Mlp`] — a multilayer perceptron with backpropagation and momentum
//!   (the classic recipe of the paper's refs \[12\]\[14\]);
//! * [`Trainer`] / [`TrainReport`] — mini-batch training with early
//!   stopping plus the learnability and generalization checks;
//! * [`Committee`] — bagged networks with mean voting and the
//!   "confidence … determined by averaging the mean error for each
//!   network" consistency check;
//! * [`MinMaxScaler`] — feature/target normalization.
//!
//! # Examples
//!
//! Learn XOR — the canonical "is backprop wired correctly" check:
//!
//! ```
//! use cichar_neural::{Dataset, Mlp, TrainConfig, Trainer};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let dataset = Dataset::new(
//!     vec![vec![0., 0.], vec![0., 1.], vec![1., 0.], vec![1., 1.]],
//!     vec![vec![0.], vec![1.], vec![1.], vec![0.]],
//! )?;
//! let mut mlp = Mlp::new(&[2, 8, 1], &mut rng)?;
//! let report = Trainer::new(TrainConfig {
//!     epochs: 4000,
//!     learning_rate: 0.6,
//!     ..TrainConfig::default()
//! })
//! .train(&mut mlp, &dataset, &mut rng);
//! assert!(report.final_train_mse < 0.05, "mse = {}", report.final_train_mse);
//! assert!(mlp.predict(&[1.0, 0.0])[0] > 0.7);
//! # Ok::<(), cichar_neural::NeuralError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod committee;
mod dataset;
mod mlp;
mod scale;
mod train;

pub use activation::Activation;
pub use committee::{Committee, Vote};
pub use dataset::{Dataset, NeuralError};
pub use mlp::Mlp;
pub use scale::MinMaxScaler;
pub use train::{TrainConfig, TrainReport, Trainer};
