//! Neuron activation functions.

use serde::{Deserialize, Serialize};

/// An activation function and its derivative.
///
/// # Examples
///
/// ```
/// use cichar_neural::Activation;
///
/// assert_eq!(Activation::Linear.apply(3.5), 3.5);
/// assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
/// assert!(Activation::Tanh.apply(100.0) <= 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Logistic sigmoid `1 / (1 + e^-x)` — outputs in `(0, 1)`.
    Sigmoid,
    /// Hyperbolic tangent — outputs in `(-1, 1)`.
    Tanh,
    /// Identity — used on regression output layers.
    Linear,
}

impl Activation {
    /// Applies the function.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Linear => x,
        }
    }

    /// Derivative *expressed in terms of the activated output* `y` — the
    /// form backpropagation consumes (`σ' = y(1−y)`, `tanh' = 1−y²`).
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
            Activation::Linear => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sigmoid_saturates() {
        assert!(Activation::Sigmoid.apply(40.0) > 0.999_999);
        assert!(Activation::Sigmoid.apply(-40.0) < 1e-6);
    }

    #[test]
    fn tanh_is_odd() {
        for x in [0.1, 0.7, 2.3] {
            let a = Activation::Tanh.apply(x);
            let b = Activation::Tanh.apply(-x);
            assert!((a + b).abs() < 1e-12);
        }
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-6;
        for act in [Activation::Sigmoid, Activation::Tanh, Activation::Linear] {
            for x in [-2.0, -0.5, 0.0, 0.5, 2.0] {
                let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let analytic = act.derivative_from_output(act.apply(x));
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act:?} at {x}: {numeric} vs {analytic}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn sigmoid_output_in_unit_interval(x in -50.0f64..50.0) {
            let y = Activation::Sigmoid.apply(x);
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn derivative_from_output_nonnegative(x in -50.0f64..50.0) {
            for act in [Activation::Sigmoid, Activation::Tanh, Activation::Linear] {
                let y = act.apply(x);
                prop_assert!(act.derivative_from_output(y) >= 0.0);
            }
        }
    }
}
