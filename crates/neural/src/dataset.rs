//! Training datasets and the crate error type.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error raised by dataset or network construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NeuralError {
    /// Inputs and targets differ in count, or the set is empty.
    ShapeMismatch {
        /// Number of input rows provided.
        inputs: usize,
        /// Number of target rows provided.
        targets: usize,
    },
    /// Rows have inconsistent widths.
    RaggedRows,
    /// A network topology had fewer than two layers or a zero-width layer.
    BadTopology,
    /// Input width at prediction time differs from the trained width.
    InputWidth {
        /// Width the network expects.
        expected: usize,
        /// Width the caller provided.
        got: usize,
    },
}

impl fmt::Display for NeuralError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NeuralError::ShapeMismatch { inputs, targets } => {
                write!(f, "dataset has {inputs} inputs but {targets} targets")
            }
            NeuralError::RaggedRows => f.write_str("dataset rows have inconsistent widths"),
            NeuralError::BadTopology => {
                f.write_str("network topology needs >= 2 layers, all non-empty")
            }
            NeuralError::InputWidth { expected, got } => {
                write!(f, "network expects {expected} inputs, got {got}")
            }
        }
    }
}

impl Error for NeuralError {}

/// A supervised dataset: input rows and aligned target rows.
///
/// # Examples
///
/// ```
/// use cichar_neural::Dataset;
///
/// let d = Dataset::new(
///     vec![vec![0.0, 1.0], vec![1.0, 0.0]],
///     vec![vec![1.0], vec![0.0]],
/// )?;
/// assert_eq!(d.len(), 2);
/// assert_eq!(d.input_width(), 2);
/// assert_eq!(d.target_width(), 1);
/// # Ok::<(), cichar_neural::NeuralError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    inputs: Vec<Vec<f64>>,
    targets: Vec<Vec<f64>>,
}

impl Dataset {
    /// Builds a dataset, validating alignment and rectangularity.
    ///
    /// # Errors
    ///
    /// [`NeuralError::ShapeMismatch`] when counts differ or are zero;
    /// [`NeuralError::RaggedRows`] when any row's width differs.
    pub fn new(inputs: Vec<Vec<f64>>, targets: Vec<Vec<f64>>) -> Result<Self, NeuralError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(NeuralError::ShapeMismatch {
                inputs: inputs.len(),
                targets: targets.len(),
            });
        }
        let iw = inputs[0].len();
        let tw = targets[0].len();
        if iw == 0
            || tw == 0
            || inputs.iter().any(|r| r.len() != iw)
            || targets.iter().any(|r| r.len() != tw)
        {
            return Err(NeuralError::RaggedRows);
        }
        Ok(Self { inputs, targets })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the dataset is empty (construction forbids it, so `false`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Width of every input row.
    pub fn input_width(&self) -> usize {
        self.inputs[0].len()
    }

    /// Width of every target row.
    pub fn target_width(&self) -> usize {
        self.targets[0].len()
    }

    /// The input rows.
    pub fn inputs(&self) -> &[Vec<f64>] {
        &self.inputs
    }

    /// The target rows.
    pub fn targets(&self) -> &[Vec<f64>] {
        &self.targets
    }

    /// Sample `(input, target)` at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sample(&self, i: usize) -> (&[f64], &[f64]) {
        (&self.inputs[i], &self.targets[i])
    }

    /// Splits into `(train, validation)` with `train_fraction` of samples
    /// (shuffled) in the training half. Both halves keep at least one
    /// sample.
    pub fn split<R: Rng + ?Sized>(&self, train_fraction: f64, rng: &mut R) -> (Dataset, Dataset) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        let cut = ((self.len() as f64 * train_fraction).round() as usize)
            .clamp(1, self.len().saturating_sub(1).max(1));
        let take = |ids: &[usize]| Dataset {
            inputs: ids.iter().map(|&i| self.inputs[i].clone()).collect(),
            targets: ids.iter().map(|&i| self.targets[i].clone()).collect(),
        };
        if self.len() == 1 {
            return (self.clone(), self.clone());
        }
        (take(&order[..cut]), take(&order[cut..]))
    }

    /// A bootstrap resample of the same size (sampling with replacement) —
    /// the "different subsets of the training input tests" each committee
    /// member trains on.
    pub fn bootstrap<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        let ids: Vec<usize> = (0..self.len()).map(|_| rng.gen_range(0..self.len())).collect();
        Dataset {
            inputs: ids.iter().map(|&i| self.inputs[i].clone()).collect(),
            targets: ids.iter().map(|&i| self.targets[i].clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn numbered(n: usize) -> Dataset {
        Dataset::new(
            (0..n).map(|i| vec![i as f64]).collect(),
            (0..n).map(|i| vec![i as f64 * 2.0]).collect(),
        )
        .expect("valid")
    }

    #[test]
    fn rejects_mismatched_and_ragged() {
        assert!(matches!(
            Dataset::new(vec![vec![1.0]], vec![]),
            Err(NeuralError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![vec![1.0], vec![1.0]]),
            Err(NeuralError::RaggedRows)
        ));
        assert!(matches!(
            Dataset::new(vec![], vec![]),
            Err(NeuralError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn split_partitions_samples() {
        let d = numbered(10);
        let mut rng = StdRng::seed_from_u64(3);
        let (train, val) = d.split(0.8, &mut rng);
        assert_eq!(train.len(), 8);
        assert_eq!(val.len(), 2);
        let mut all: Vec<f64> = train
            .inputs()
            .iter()
            .chain(val.inputs())
            .map(|r| r[0])
            .collect();
        all.sort_by(f64::total_cmp);
        assert_eq!(all, (0..10).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn split_keeps_both_halves_nonempty() {
        let d = numbered(2);
        let mut rng = StdRng::seed_from_u64(3);
        let (train, val) = d.split(0.99, &mut rng);
        assert_eq!(train.len(), 1);
        assert_eq!(val.len(), 1);
    }

    #[test]
    fn bootstrap_keeps_size_and_pairing() {
        let d = numbered(20);
        let mut rng = StdRng::seed_from_u64(9);
        let b = d.bootstrap(&mut rng);
        assert_eq!(b.len(), 20);
        for i in 0..b.len() {
            let (x, y) = b.sample(i);
            assert_eq!(y[0], x[0] * 2.0, "pairing preserved");
        }
    }

    #[test]
    fn bootstrap_differs_from_original() {
        let d = numbered(50);
        let mut rng = StdRng::seed_from_u64(9);
        let b = d.bootstrap(&mut rng);
        assert_ne!(b.inputs(), d.inputs(), "resample should repeat/omit rows");
    }

    #[test]
    fn error_display_is_specific() {
        let e = NeuralError::InputWidth { expected: 17, got: 3 };
        assert!(e.to_string().contains("17") && e.to_string().contains('3'));
    }
}
