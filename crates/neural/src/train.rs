//! Training loop with the paper's learnability and generalization checks.

use crate::dataset::Dataset;
use crate::mlp::Mlp;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Backpropagation step size.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Fraction of samples in the training split (rest validates).
    pub train_fraction: f64,
    /// Stop early once training MSE falls below this — fig. 4's "until
    /// learning and generalization error is small enough".
    pub target_mse: f64,
    /// Stop when validation MSE has not improved for this many epochs.
    pub patience: usize,
    /// Learnability bound: training MSE above this after the full budget
    /// means the network failed to learn the mapping.
    pub learnability_mse: f64,
    /// Generalization bound: validation MSE may exceed training MSE by at
    /// most this factor (plus an absolute floor) before the run is flagged
    /// as over-fitted.
    pub generalization_ratio: f64,
    /// L2 weight decay applied during backpropagation (0 disables).
    pub weight_decay: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 300,
            learning_rate: 0.2,
            momentum: 0.6,
            train_fraction: 0.8,
            target_mse: 1e-4,
            patience: 50,
            learnability_mse: 0.02,
            generalization_ratio: 4.0,
            weight_decay: 0.0,
        }
    }
}

/// The outcome of one training run.
///
/// Carries the two checks fig. 4's step (4) iterates on: *learnability*
/// (did the network fit the training tests?) and *generalization* (does it
/// transfer to held-out tests?). The learning scheme loops back to gather
/// more ATE data when either fails.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Epochs actually run.
    pub epochs_run: usize,
    /// Final mean squared error on the training split.
    pub final_train_mse: f64,
    /// Final mean squared error on the validation split.
    pub final_val_mse: f64,
    /// Training-MSE history, one entry per epoch.
    pub history: Vec<f64>,
    /// Whether training MSE reached the learnability bound.
    pub learnable: bool,
    /// Whether validation error stayed within the generalization bound.
    pub generalizes: bool,
}

impl TrainReport {
    /// Both checks passed — the weight file is ready for the optimization
    /// phase.
    pub fn accepted(&self) -> bool {
        self.learnable && self.generalizes
    }
}

impl fmt::Display for TrainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} epochs, train mse {:.5}, val mse {:.5}, learnable={}, generalizes={}",
            self.epochs_run, self.final_train_mse, self.final_val_mse, self.learnable, self.generalizes
        )
    }
}

/// Mini-batch trainer with early stopping.
///
/// # Examples
///
/// ```
/// use cichar_neural::{Dataset, Mlp, TrainConfig, Trainer};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// // y = x² on [0, 1].
/// let inputs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 49.0]).collect();
/// let targets: Vec<Vec<f64>> = inputs.iter().map(|x| vec![x[0] * x[0]]).collect();
/// let data = Dataset::new(inputs, targets)?;
/// let mut mlp = Mlp::new(&[1, 10, 1], &mut rng)?;
/// let report = Trainer::new(TrainConfig::default()).train(&mut mlp, &data, &mut rng);
/// assert!(report.accepted(), "{report}");
/// # Ok::<(), cichar_neural::NeuralError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `mlp` on `data`, splitting off a validation set internally.
    pub fn train<R: Rng + ?Sized>(&self, mlp: &mut Mlp, data: &Dataset, rng: &mut R) -> TrainReport {
        let c = &self.config;
        let (train, val) = data.split(c.train_fraction, rng);
        let mut history = Vec::with_capacity(c.epochs);
        let mut best_val = f64::INFINITY;
        let mut stale = 0usize;
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut epochs_run = 0;
        for _ in 0..c.epochs {
            epochs_run += 1;
            order.shuffle(rng);
            let mut epoch_err = 0.0;
            for &i in &order {
                let (x, t) = train.sample(i);
                epoch_err +=
                    mlp.train_sample_decay(x, t, c.learning_rate, c.momentum, c.weight_decay);
            }
            let train_mse = epoch_err / train.len() as f64;
            history.push(train_mse);
            if train_mse < c.target_mse {
                break;
            }
            let val_mse = mlp.mse(val.inputs(), val.targets());
            if val_mse + 1e-12 < best_val {
                best_val = val_mse;
                stale = 0;
            } else {
                stale += 1;
                if stale >= c.patience {
                    break;
                }
            }
        }
        let final_train_mse = mlp.mse(train.inputs(), train.targets());
        let final_val_mse = mlp.mse(val.inputs(), val.targets());
        let learnable = final_train_mse <= c.learnability_mse;
        let generalizes =
            final_val_mse <= c.generalization_ratio * final_train_mse.max(1e-4) + 1e-3;
        TrainReport {
            epochs_run,
            final_train_mse,
            final_val_mse,
            history,
            learnable,
            generalizes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn smooth_dataset(n: usize) -> Dataset {
        let inputs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let x = i as f64 / (n - 1) as f64;
                vec![x, 1.0 - x]
            })
            .collect();
        let targets: Vec<Vec<f64>> = inputs
            .iter()
            .map(|x| vec![0.5 + 0.4 * (std::f64::consts::PI * x[0]).sin() * x[1]])
            .collect();
        Dataset::new(inputs, targets).expect("valid")
    }

    #[test]
    fn learns_a_smooth_function() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = smooth_dataset(80);
        let mut mlp = Mlp::new(&[2, 10, 1], &mut rng).expect("valid");
        let report = Trainer::new(TrainConfig::default()).train(&mut mlp, &data, &mut rng);
        assert!(report.learnable, "{report}");
        assert!(report.generalizes, "{report}");
        assert!(report.accepted());
    }

    #[test]
    fn history_is_mostly_decreasing() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = smooth_dataset(60);
        let mut mlp = Mlp::new(&[2, 8, 1], &mut rng).expect("valid");
        let report = Trainer::new(TrainConfig {
            epochs: 100,
            patience: 100,
            target_mse: 0.0,
            ..TrainConfig::default()
        })
        .train(&mut mlp, &data, &mut rng);
        let first = report.history[..5].iter().sum::<f64>() / 5.0;
        let last = report.history[report.history.len() - 5..].iter().sum::<f64>() / 5.0;
        assert!(last < first, "error should fall: {first} -> {last}");
    }

    #[test]
    fn early_stop_on_target_mse() {
        let mut rng = StdRng::seed_from_u64(4);
        let data = smooth_dataset(60);
        let mut mlp = Mlp::new(&[2, 10, 1], &mut rng).expect("valid");
        let report = Trainer::new(TrainConfig {
            epochs: 100_000,
            target_mse: 0.01,
            patience: 100_000,
            ..TrainConfig::default()
        })
        .train(&mut mlp, &data, &mut rng);
        assert!(report.epochs_run < 100_000, "stopped at {}", report.epochs_run);
    }

    #[test]
    fn unlearnable_noise_fails_learnability_check() {
        // Pure noise with one sample per input point and a tiny epoch
        // budget: training error stays high.
        let mut rng = StdRng::seed_from_u64(5);
        let inputs: Vec<Vec<f64>> = (0..64).map(|_| vec![rng.gen(), rng.gen()]).collect();
        let targets: Vec<Vec<f64>> = (0..64).map(|_| vec![f64::from(rng.gen::<bool>())]).collect();
        let data = Dataset::new(inputs, targets).expect("valid");
        let mut mlp = Mlp::new(&[2, 3, 1], &mut rng).expect("valid");
        let report = Trainer::new(TrainConfig {
            epochs: 30,
            learnability_mse: 0.01,
            patience: 1000,
            ..TrainConfig::default()
        })
        .train(&mut mlp, &data, &mut rng);
        assert!(!report.learnable, "{report}");
        assert!(!report.accepted());
    }

    #[test]
    fn patience_stops_stagnant_training() {
        let mut rng = StdRng::seed_from_u64(6);
        let data = smooth_dataset(40);
        let mut mlp = Mlp::new(&[2, 4, 1], &mut rng).expect("valid");
        let report = Trainer::new(TrainConfig {
            epochs: 100_000,
            learning_rate: 0.0, // cannot improve ⇒ patience must fire
            target_mse: 0.0,
            patience: 10,
            ..TrainConfig::default()
        })
        .train(&mut mlp, &data, &mut rng);
        assert!(report.epochs_run <= 12, "stopped at {}", report.epochs_run);
    }

    #[test]
    fn report_display_mentions_checks() {
        let mut rng = StdRng::seed_from_u64(7);
        let data = smooth_dataset(40);
        let mut mlp = Mlp::new(&[2, 6, 1], &mut rng).expect("valid");
        let report = Trainer::new(TrainConfig::default()).train(&mut mlp, &data, &mut rng);
        let s = report.to_string();
        assert!(s.contains("learnable=") && s.contains("generalizes="), "{s}");
    }
}
