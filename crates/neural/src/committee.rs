//! The NN voting machine: bagged networks voting in parallel.

use crate::dataset::{Dataset, NeuralError};
use crate::mlp::Mlp;
use crate::train::{TrainConfig, TrainReport, Trainer};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One committee prediction: the member votes, their mean and spread.
///
/// Fig. 4's step (1): "to measure how confident the neural net is in its
/// classification, we propose to use the NN voting machine algorithm, such
/// that multiple NNs are trained on different subsets of the training input
/// tests, then vote in parallel on unknown input tests."
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vote {
    /// Mean of the member outputs (element-wise).
    pub mean: Vec<f64>,
    /// Standard deviation of the member outputs (element-wise).
    pub std_dev: Vec<f64>,
    /// Every member's raw output.
    pub members: Vec<Vec<f64>>,
}

impl Vote {
    /// Consistency-check confidence in `[0, 1]`: 1 when all members agree
    /// exactly, falling as the vote spread grows.
    pub fn confidence(&self) -> f64 {
        let spread =
            self.std_dev.iter().sum::<f64>() / self.std_dev.len().max(1) as f64;
        1.0 / (1.0 + 10.0 * spread)
    }
}

impl fmt::Display for Vote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vote mean {:?} (confidence {:.2})",
            self.mean,
            self.confidence()
        )
    }
}

/// A bagged committee of identically-shaped networks.
///
/// Each member trains on an independent bootstrap resample of the training
/// tests; prediction averages the member outputs, and the vote spread is
/// the consistency check of fig. 4's step (4).
///
/// # Examples
///
/// ```
/// use cichar_neural::{Committee, Dataset, TrainConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let inputs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 59.0]).collect();
/// let targets: Vec<Vec<f64>> = inputs.iter().map(|x| vec![1.0 - x[0]]).collect();
/// let data = Dataset::new(inputs, targets)?;
/// let committee = Committee::train(&[1, 8, 1], 5, &TrainConfig::default(), &data, &mut rng)?;
/// let vote = committee.vote(&[0.25]);
/// assert!((vote.mean[0] - 0.75).abs() < 0.1);
/// assert!(vote.confidence() > 0.5);
/// # Ok::<(), cichar_neural::NeuralError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Committee {
    members: Vec<Mlp>,
    reports: Vec<TrainReport>,
}

impl Committee {
    /// Trains `size` members of the given topology on bootstrap resamples.
    ///
    /// # Errors
    ///
    /// Propagates topology errors; `size` of zero is a topology error too.
    pub fn train<R: Rng + ?Sized>(
        topology: &[usize],
        size: usize,
        config: &TrainConfig,
        data: &Dataset,
        rng: &mut R,
    ) -> Result<Self, NeuralError> {
        if size == 0 {
            return Err(NeuralError::BadTopology);
        }
        let trainer = Trainer::new(*config);
        let mut members = Vec::with_capacity(size);
        let mut reports = Vec::with_capacity(size);
        for _ in 0..size {
            let subset = data.bootstrap(rng);
            let mut mlp = Mlp::new(topology, rng)?;
            let report = trainer.train(&mut mlp, &subset, rng);
            members.push(mlp);
            reports.push(report);
        }
        Ok(Self { members, reports })
    }

    /// Trains the committee with members fanned out across worker
    /// threads.
    ///
    /// One campaign seed is drawn from `rng` up front and each member
    /// trains on its own RNG seeded by
    /// [`derive_seed`](cichar_exec::derive_seed)`(campaign, member index)`
    /// — members never share a random stream, so the committee is
    /// bit-identical for every thread count (including
    /// [`ExecPolicy::serial`](cichar_exec::ExecPolicy::serial)). The
    /// member-RNG discipline differs from [`Committee::train`]'s single
    /// interleaved stream, so the two constructors produce *different*
    /// (equally valid) committees from the same `rng` state.
    ///
    /// # Errors
    ///
    /// Propagates topology errors; `size` of zero is a topology error too.
    pub fn train_parallel<R: Rng + ?Sized>(
        topology: &[usize],
        size: usize,
        config: &TrainConfig,
        data: &Dataset,
        policy: cichar_exec::ExecPolicy,
        rng: &mut R,
    ) -> Result<Self, NeuralError> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        if size == 0 {
            return Err(NeuralError::BadTopology);
        }
        let campaign: u64 = rng.gen();
        let trainer = Trainer::new(*config);
        let trained = cichar_exec::par_map(policy, (0..size as u64).collect(), |_, member| {
            let mut member_rng = StdRng::seed_from_u64(cichar_exec::derive_seed(campaign, member));
            let subset = data.bootstrap(&mut member_rng);
            let mut mlp = Mlp::new(topology, &mut member_rng)?;
            let report = trainer.train(&mut mlp, &subset, &mut member_rng);
            Ok::<(Mlp, TrainReport), NeuralError>((mlp, report))
        });
        let mut members = Vec::with_capacity(size);
        let mut reports = Vec::with_capacity(size);
        for result in trained {
            let (mlp, report) = result?;
            members.push(mlp);
            reports.push(report);
        }
        Ok(Self { members, reports })
    }

    /// Builds a committee from pre-trained members (used when re-loading a
    /// persisted weight file).
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::BadTopology`] when empty or heterogeneous.
    pub fn from_members(members: Vec<Mlp>) -> Result<Self, NeuralError> {
        if members.is_empty() {
            return Err(NeuralError::BadTopology);
        }
        let topo = members[0].topology().to_vec();
        if members.iter().any(|m| m.topology() != topo) {
            return Err(NeuralError::BadTopology);
        }
        Ok(Self {
            reports: Vec::new(),
            members,
        })
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The members' training reports (empty for re-loaded committees).
    pub fn reports(&self) -> &[TrainReport] {
        &self.reports
    }

    /// The members themselves.
    pub fn members(&self) -> &[Mlp] {
        &self.members
    }

    /// Average of the members' final validation errors — fig. 4's "the
    /// confidence in the classification is determined by averaging the
    /// mean error for each network".
    pub fn mean_validation_error(&self) -> f64 {
        if self.reports.is_empty() {
            return f64::NAN;
        }
        self.reports.iter().map(|r| r.final_val_mse).sum::<f64>() / self.reports.len() as f64
    }

    /// Whether every member passed both the learnability and the
    /// generalization check.
    pub fn accepted(&self) -> bool {
        !self.reports.is_empty() && self.reports.iter().all(TrainReport::accepted)
    }

    /// All members vote in parallel on an unknown input.
    ///
    /// # Panics
    ///
    /// Panics if `input` has the wrong width.
    pub fn vote(&self, input: &[f64]) -> Vote {
        let members: Vec<Vec<f64>> = self.members.iter().map(|m| m.predict(input)).collect();
        let width = members[0].len();
        let n = members.len() as f64;
        let mean: Vec<f64> = (0..width)
            .map(|i| members.iter().map(|v| v[i]).sum::<f64>() / n)
            .collect();
        let std_dev: Vec<f64> = (0..width)
            .map(|i| {
                let var =
                    members.iter().map(|v| (v[i] - mean[i]).powi(2)).sum::<f64>() / n;
                var.sqrt()
            })
            .collect();
        Vote {
            mean,
            std_dev,
            members,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line_dataset(n: usize) -> Dataset {
        let inputs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let targets: Vec<Vec<f64>> = inputs.iter().map(|x| vec![0.1 + 0.8 * x[0]]).collect();
        Dataset::new(inputs, targets).expect("valid")
    }

    #[test]
    fn committee_trains_and_votes() {
        let mut rng = StdRng::seed_from_u64(8);
        let c = Committee::train(&[1, 8, 1], 5, &TrainConfig::default(), &line_dataset(60), &mut rng)
            .expect("trains");
        assert_eq!(c.size(), 5);
        let v = c.vote(&[0.5]);
        assert!((v.mean[0] - 0.5).abs() < 0.1, "vote {v}");
        assert_eq!(v.members.len(), 5);
    }

    #[test]
    fn confident_on_trained_region() {
        let mut rng = StdRng::seed_from_u64(9);
        let c = Committee::train(&[1, 8, 1], 5, &TrainConfig::default(), &line_dataset(60), &mut rng)
            .expect("trains");
        assert!(c.vote(&[0.4]).confidence() > 0.6);
        assert!(c.accepted(), "all members should pass checks");
        assert!(c.mean_validation_error() < 0.01);
    }

    #[test]
    fn parallel_training_is_thread_count_invariant() {
        use cichar_exec::ExecPolicy;
        let data = line_dataset(60);
        let train = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(15);
            Committee::train_parallel(
                &[1, 8, 1],
                5,
                &TrainConfig::default(),
                &data,
                ExecPolicy::with_threads(threads),
                &mut rng,
            )
            .expect("trains")
        };
        let serial = train(1);
        let wide = train(8);
        assert_eq!(serial, wide);
        // And it learns the line as well as the sequential constructor.
        let v = serial.vote(&[0.5]);
        assert!((v.mean[0] - 0.5).abs() < 0.1, "vote {v}");
        assert!(serial.accepted(), "all members should pass checks");
    }

    #[test]
    fn parallel_training_rejects_zero_size() {
        use cichar_exec::ExecPolicy;
        let mut rng = StdRng::seed_from_u64(16);
        assert!(matches!(
            Committee::train_parallel(
                &[1, 1],
                0,
                &TrainConfig::default(),
                &line_dataset(10),
                ExecPolicy::serial(),
                &mut rng,
            ),
            Err(NeuralError::BadTopology)
        ));
    }

    #[test]
    fn zero_size_is_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            Committee::train(&[1, 1], 0, &TrainConfig::default(), &line_dataset(10), &mut rng),
            Err(NeuralError::BadTopology)
        ));
    }

    #[test]
    fn from_members_validates_homogeneity() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Mlp::new(&[2, 3, 1], &mut rng).expect("valid");
        let b = Mlp::new(&[2, 4, 1], &mut rng).expect("valid");
        assert!(matches!(
            Committee::from_members(vec![a.clone(), b]),
            Err(NeuralError::BadTopology)
        ));
        assert!(Committee::from_members(vec![]).is_err());
        let c = Committee::from_members(vec![a.clone(), a]).expect("homogeneous");
        assert_eq!(c.size(), 2);
        assert!(c.mean_validation_error().is_nan(), "no reports when re-loaded");
    }

    #[test]
    fn identical_members_vote_with_full_confidence() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Mlp::new(&[1, 3, 1], &mut rng).expect("valid");
        let c = Committee::from_members(vec![m.clone(), m.clone(), m]).expect("homogeneous");
        let v = c.vote(&[0.3]);
        assert!(v.std_dev[0] < 1e-15);
        assert!((v.confidence() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vote_display_mentions_confidence() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = Mlp::new(&[1, 2, 1], &mut rng).expect("valid");
        let c = Committee::from_members(vec![m]).expect("single member");
        assert!(c.vote(&[0.5]).to_string().contains("confidence"));
    }
}
