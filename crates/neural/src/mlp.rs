//! The multilayer perceptron.

use crate::activation::Activation;
use crate::dataset::NeuralError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One fully-connected layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Layer {
    /// `weights[j][i]`: weight from input `i` to neuron `j`.
    weights: Vec<Vec<f64>>,
    biases: Vec<f64>,
    activation: Activation,
    /// Momentum buffers, shaped like `weights`/`biases`.
    weight_velocity: Vec<Vec<f64>>,
    bias_velocity: Vec<f64>,
}

impl Layer {
    fn new<R: Rng + ?Sized>(inputs: usize, neurons: usize, activation: Activation, rng: &mut R) -> Self {
        // Xavier/Glorot uniform initialization keeps activations in the
        // responsive region of tanh/sigmoid at the start of training.
        let limit = (6.0 / (inputs + neurons) as f64).sqrt();
        let weights = (0..neurons)
            .map(|_| (0..inputs).map(|_| rng.gen_range(-limit..limit)).collect())
            .collect();
        Self {
            weights,
            biases: vec![0.0; neurons],
            activation,
            weight_velocity: vec![vec![0.0; inputs]; neurons],
            bias_velocity: vec![0.0; neurons],
        }
    }

    fn forward(&self, input: &[f64]) -> Vec<f64> {
        self.weights
            .iter()
            .zip(&self.biases)
            .map(|(row, &b)| {
                let z = row.iter().zip(input).map(|(w, x)| w * x).sum::<f64>() + b;
                self.activation.apply(z)
            })
            .collect()
    }
}

/// A feedforward network trained with backpropagation and momentum.
///
/// Hidden layers use tanh; the output layer is sigmoid, matching the
/// normalized `[0, 1]` targets the characterization stack trains on
/// (trip-point values scaled by [`MinMaxScaler`](crate::MinMaxScaler), or
/// fuzzy membership grades which are `[0, 1]` by construction).
///
/// # Examples
///
/// ```
/// use cichar_neural::Mlp;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mlp = Mlp::new(&[3, 5, 2], &mut rng)?;
/// let out = mlp.predict(&[0.1, 0.5, 0.9]);
/// assert_eq!(out.len(), 2);
/// assert!(out.iter().all(|y| (0.0..=1.0).contains(y)));
/// # Ok::<(), cichar_neural::NeuralError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Layer>,
    topology: Vec<usize>,
}

impl Mlp {
    /// Creates a network with the given layer widths, e.g. `[17, 16, 8, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::BadTopology`] for fewer than two layers or a
    /// zero-width layer.
    pub fn new<R: Rng + ?Sized>(topology: &[usize], rng: &mut R) -> Result<Self, NeuralError> {
        if topology.len() < 2 || topology.contains(&0) {
            return Err(NeuralError::BadTopology);
        }
        let last = topology.len() - 2;
        let layers = topology
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i == last {
                    Activation::Sigmoid
                } else {
                    Activation::Tanh
                };
                Layer::new(w[0], w[1], act, rng)
            })
            .collect();
        Ok(Self {
            layers,
            topology: topology.to_vec(),
        })
    }

    /// The layer widths this network was built with.
    pub fn topology(&self) -> &[usize] {
        &self.topology
    }

    /// Expected input width.
    pub fn input_width(&self) -> usize {
        self.topology[0]
    }

    /// Output width.
    pub fn output_width(&self) -> usize {
        *self.topology.last().expect("topology has >= 2 entries")
    }

    /// Runs the network forward.
    ///
    /// # Panics
    ///
    /// Panics if `input` has the wrong width.
    pub fn predict(&self, input: &[f64]) -> Vec<f64> {
        assert_eq!(
            input.len(),
            self.input_width(),
            "input width {} != network width {}",
            input.len(),
            self.input_width()
        );
        self.layers
            .iter()
            .fold(input.to_vec(), |x, layer| layer.forward(&x))
    }

    /// Mean squared error over a set of `(input, target)` pairs.
    pub fn mse(&self, inputs: &[Vec<f64>], targets: &[Vec<f64>]) -> f64 {
        assert_eq!(inputs.len(), targets.len(), "aligned rows");
        if inputs.is_empty() {
            return 0.0;
        }
        let total: f64 = inputs
            .iter()
            .zip(targets)
            .map(|(x, t)| {
                let y = self.predict(x);
                y.iter().zip(t).map(|(yi, ti)| (yi - ti).powi(2)).sum::<f64>()
                    / y.len() as f64
            })
            .sum();
        total / inputs.len() as f64
    }

    /// One backpropagation step on a single sample with momentum.
    ///
    /// Returns the sample's squared error before the update.
    pub fn train_sample(
        &mut self,
        input: &[f64],
        target: &[f64],
        learning_rate: f64,
        momentum: f64,
    ) -> f64 {
        self.train_sample_decay(input, target, learning_rate, momentum, 0.0)
    }

    /// [`Self::train_sample`] with L2 weight decay: each weight also moves
    /// toward zero by `learning_rate * weight_decay * w`, the classic
    /// regularizer against over-fitting small noisy trip-point datasets.
    ///
    /// Returns the sample's squared error before the update.
    pub fn train_sample_decay(
        &mut self,
        input: &[f64],
        target: &[f64],
        learning_rate: f64,
        momentum: f64,
        weight_decay: f64,
    ) -> f64 {
        // Forward pass, keeping every layer's activated output.
        let mut activations: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len() + 1);
        activations.push(input.to_vec());
        for layer in &self.layers {
            let next = layer.forward(activations.last().expect("seeded with input"));
            activations.push(next);
        }
        let output = activations.last().expect("at least the input");
        let sample_error: f64 = output
            .iter()
            .zip(target)
            .map(|(y, t)| (y - t).powi(2))
            .sum::<f64>()
            / output.len() as f64;

        // Backward pass: delta for the output layer is (y − t)·f'(y).
        let mut delta: Vec<f64> = output
            .iter()
            .zip(target)
            .map(|(&y, &t)| {
                (y - t) * self
                    .layers
                    .last()
                    .expect("non-empty")
                    .activation
                    .derivative_from_output(y)
            })
            .collect();

        for li in (0..self.layers.len()).rev() {
            // Compute the next delta *before* mutating this layer's
            // weights (backprop uses the pre-update values).
            let next_delta: Option<Vec<f64>> = if li > 0 {
                let layer = &self.layers[li];
                let prev_out = &activations[li];
                let prev_act = self.layers[li - 1].activation;
                Some(
                    (0..prev_out.len())
                        .map(|i| {
                            let back: f64 = layer
                                .weights
                                .iter()
                                .zip(&delta)
                                .map(|(row, d)| row[i] * d)
                                .sum();
                            back * prev_act.derivative_from_output(prev_out[i])
                        })
                        .collect(),
                )
            } else {
                None
            };

            let layer = &mut self.layers[li];
            let layer_input = &activations[li];
            for (j, d) in delta.iter().enumerate() {
                for (i, &x) in layer_input.iter().enumerate() {
                    let v = momentum * layer.weight_velocity[j][i]
                        - learning_rate * (d * x + weight_decay * layer.weights[j][i]);
                    layer.weight_velocity[j][i] = v;
                    layer.weights[j][i] += v;
                }
                let v = momentum * layer.bias_velocity[j] - learning_rate * d;
                layer.bias_velocity[j] = v;
                layer.biases[j] += v;
            }

            if let Some(nd) = next_delta {
                delta = nd;
            }
        }
        sample_error
    }

    /// Sum of squared weights across all layers (biases excluded) — the
    /// quantity weight decay shrinks.
    pub fn weight_norm(&self) -> f64 {
        self.layers
            .iter()
            .flat_map(|l| l.weights.iter())
            .flat_map(|row| row.iter())
            .map(|w| w * w)
            .sum()
    }

    /// Checked prediction for callers holding runtime-sized inputs.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InputWidth`] instead of panicking.
    pub fn try_predict(&self, input: &[f64]) -> Result<Vec<f64>, NeuralError> {
        if input.len() != self.input_width() {
            return Err(NeuralError::InputWidth {
                expected: self.input_width(),
                got: input.len(),
            });
        }
        Ok(self.predict(input))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn topology_validation() {
        let mut r = rng();
        assert!(matches!(Mlp::new(&[3], &mut r), Err(NeuralError::BadTopology)));
        assert!(matches!(
            Mlp::new(&[3, 0, 1], &mut r),
            Err(NeuralError::BadTopology)
        ));
        assert!(Mlp::new(&[3, 1], &mut r).is_ok());
    }

    #[test]
    fn output_is_sigmoid_bounded() {
        let mut r = rng();
        let mlp = Mlp::new(&[4, 6, 3], &mut r).expect("valid");
        let y = mlp.predict(&[10.0, -10.0, 3.0, 0.0]);
        assert!(y.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    #[should_panic(expected = "input width")]
    fn predict_panics_on_wrong_width() {
        let mut r = rng();
        let mlp = Mlp::new(&[4, 2], &mut r).expect("valid");
        let _ = mlp.predict(&[1.0]);
    }

    #[test]
    fn try_predict_reports_width_error() {
        let mut r = rng();
        let mlp = Mlp::new(&[4, 2], &mut r).expect("valid");
        assert_eq!(
            mlp.try_predict(&[1.0]),
            Err(NeuralError::InputWidth { expected: 4, got: 1 })
        );
        assert!(mlp.try_predict(&[0.0; 4]).is_ok());
    }

    #[test]
    fn training_reduces_error_on_linear_map() {
        let mut r = rng();
        let mut mlp = Mlp::new(&[1, 6, 1], &mut r).expect("valid");
        let inputs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 20.0]).collect();
        let targets: Vec<Vec<f64>> = inputs.iter().map(|x| vec![0.2 + 0.6 * x[0]]).collect();
        let before = mlp.mse(&inputs, &targets);
        for _ in 0..500 {
            for (x, t) in inputs.iter().zip(&targets) {
                mlp.train_sample(x, t, 0.3, 0.5);
            }
        }
        let after = mlp.mse(&inputs, &targets);
        assert!(after < before / 10.0, "{before} -> {after}");
        assert!(after < 1e-3, "final mse {after}");
    }

    #[test]
    fn learns_xor_with_momentum() {
        let mut r = rng();
        let mut mlp = Mlp::new(&[2, 8, 1], &mut r).expect("valid");
        let data = [
            ([0.0, 0.0], [0.0]),
            ([0.0, 1.0], [1.0]),
            ([1.0, 0.0], [1.0]),
            ([1.0, 1.0], [0.0]),
        ];
        for _ in 0..4000 {
            for (x, t) in &data {
                mlp.train_sample(x, t, 0.6, 0.7);
            }
        }
        for (x, t) in &data {
            let y = mlp.predict(x)[0];
            assert!(
                (y - t[0]).abs() < 0.25,
                "xor({x:?}) = {y}, want {}",
                t[0]
            );
        }
    }

    #[test]
    fn weight_decay_shrinks_the_weight_norm() {
        let make = || Mlp::new(&[2, 12, 1], &mut StdRng::seed_from_u64(21)).expect("valid");
        let data: Vec<([f64; 2], [f64; 1])> = (0..16)
            .map(|i| {
                let x = i as f64 / 15.0;
                ([x, 1.0 - x], [0.3 + 0.4 * x])
            })
            .collect();
        let mut plain = make();
        let mut decayed = make();
        for _ in 0..300 {
            for (x, t) in &data {
                plain.train_sample_decay(x, t, 0.2, 0.5, 0.0);
                decayed.train_sample_decay(x, t, 0.2, 0.5, 1e-3);
            }
        }
        assert!(
            decayed.weight_norm() < plain.weight_norm(),
            "{} vs {}",
            decayed.weight_norm(),
            plain.weight_norm()
        );
        // And it still fits the function.
        let inputs: Vec<Vec<f64>> = data.iter().map(|(x, _)| x.to_vec()).collect();
        let targets: Vec<Vec<f64>> = data.iter().map(|(_, t)| t.to_vec()).collect();
        assert!(decayed.mse(&inputs, &targets) < 5e-3);
    }

    #[test]
    fn zero_decay_matches_plain_training() {
        let make = || Mlp::new(&[2, 6, 1], &mut StdRng::seed_from_u64(22)).expect("valid");
        let mut a = make();
        let mut b = make();
        for i in 0..50 {
            let x = [i as f64 / 50.0, 0.5];
            let t = [0.4];
            a.train_sample(&x, &t, 0.3, 0.6);
            b.train_sample_decay(&x, &t, 0.3, 0.6, 0.0);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn mse_is_zero_for_perfect_prediction() {
        let mut r = rng();
        let mlp = Mlp::new(&[2, 1], &mut r).expect("valid");
        let x = vec![vec![0.3, 0.4]];
        let y = vec![mlp.predict(&x[0])];
        assert!(mlp.mse(&x, &y) < 1e-15);
    }

    #[test]
    fn networks_with_same_seed_are_identical() {
        let a = Mlp::new(&[3, 4, 1], &mut StdRng::seed_from_u64(11)).expect("valid");
        let b = Mlp::new(&[3, 4, 1], &mut StdRng::seed_from_u64(11)).expect("valid");
        assert_eq!(a, b);
        assert_eq!(a.predict(&[0.1, 0.2, 0.3]), b.predict(&[0.1, 0.2, 0.3]));
    }

    #[test]
    fn accessors_report_shape() {
        let mlp = Mlp::new(&[17, 16, 8, 1], &mut rng()).expect("valid");
        assert_eq!(mlp.input_width(), 17);
        assert_eq!(mlp.output_width(), 1);
        assert_eq!(mlp.topology(), &[17, 16, 8, 1]);
    }
}
