//! Min-max normalization for network targets.

use serde::{Deserialize, Serialize};

/// Maps values linearly from an observed `[min, max]` to `[0, 1]` and back.
///
/// Trip-point values live in physical units (e.g. 20–35 ns); the sigmoid
/// output layer wants `[0, 1]`. The scaler is fitted on the training
/// labels and inverted when reading predictions.
///
/// # Examples
///
/// ```
/// use cichar_neural::MinMaxScaler;
///
/// let scaler = MinMaxScaler::fit([28.5, 32.3, 22.1].iter().copied());
/// let z = scaler.transform(27.2);
/// assert!((0.0..=1.0).contains(&z));
/// assert!((scaler.inverse(z) - 27.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    min: f64,
    max: f64,
}

impl MinMaxScaler {
    /// Fits the scaler to observed values.
    ///
    /// Degenerate inputs (empty, or all-equal) yield a unit-width window
    /// centred on the value so `transform` stays finite.
    pub fn fit(values: impl IntoIterator<Item = f64>) -> Self {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in values {
            min = min.min(v);
            max = max.max(v);
        }
        if !min.is_finite() || !max.is_finite() {
            return Self { min: 0.0, max: 1.0 };
        }
        if (max - min).abs() < 1e-12 {
            return Self {
                min: min - 0.5,
                max: max + 0.5,
            };
        }
        Self { min, max }
    }

    /// Creates a scaler with explicit bounds.
    ///
    /// # Panics
    ///
    /// Panics if `min >= max` or either bound is not finite.
    pub fn with_bounds(min: f64, max: f64) -> Self {
        assert!(
            min.is_finite() && max.is_finite() && min < max,
            "invalid scaler bounds [{min}, {max}]"
        );
        Self { min, max }
    }

    /// The fitted minimum.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// The fitted maximum.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Maps `value` into `[0, 1]` (clamped for out-of-window values).
    pub fn transform(&self, value: f64) -> f64 {
        ((value - self.min) / (self.max - self.min)).clamp(0.0, 1.0)
    }

    /// Maps a normalized value back into physical units.
    pub fn inverse(&self, z: f64) -> f64 {
        self.min + z * (self.max - self.min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fit_finds_extremes() {
        let s = MinMaxScaler::fit([3.0, -1.0, 7.0]);
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 7.0);
        assert_eq!(s.transform(-1.0), 0.0);
        assert_eq!(s.transform(7.0), 1.0);
    }

    #[test]
    fn degenerate_fit_stays_finite() {
        let s = MinMaxScaler::fit([5.0, 5.0, 5.0]);
        assert_eq!(s.transform(5.0), 0.5);
        let empty = MinMaxScaler::fit(std::iter::empty());
        assert_eq!(empty.transform(0.5), 0.5);
    }

    #[test]
    fn out_of_window_values_clamp() {
        let s = MinMaxScaler::with_bounds(0.0, 10.0);
        assert_eq!(s.transform(-5.0), 0.0);
        assert_eq!(s.transform(25.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid scaler bounds")]
    fn with_bounds_rejects_inverted() {
        let _ = MinMaxScaler::with_bounds(2.0, 1.0);
    }

    proptest! {
        #[test]
        fn transform_inverse_round_trip(
            min in -1e3f64..0.0, width in 1e-3f64..1e3, t in 0.0f64..=1.0
        ) {
            let s = MinMaxScaler::with_bounds(min, min + width);
            let v = min + t * width;
            prop_assert!((s.inverse(s.transform(v)) - v).abs() < 1e-9 * width.max(1.0));
        }

        #[test]
        fn transform_is_monotone(
            min in -1e3f64..0.0, width in 1e-3f64..1e3, a in 0.0f64..=1.0, b in 0.0f64..=1.0
        ) {
            let s = MinMaxScaler::with_bounds(min, min + width);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(s.transform(min + lo * width) <= s.transform(min + hi * width));
        }
    }
}
