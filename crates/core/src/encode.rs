//! Neural-network input encoding of tests.

use cichar_patterns::{ConditionSpace, PatternFeatures, Test, FEATURE_COUNT};
use serde::{Deserialize, Serialize};

/// Width of the NN input vector: the pattern stress features plus the
/// three normalized condition channels.
pub const INPUT_WIDTH: usize = FEATURE_COUNT + 3;

/// Encodes a [`Test`] into the committee's input vector.
///
/// The encoding concatenates the normalized [`PatternFeatures`] with the
/// test's conditions, each mapped into `[0, 1]` over the
/// [`ConditionSpace`] — the complete "input test" of fig. 4 as the network
/// sees it.
///
/// # Examples
///
/// ```
/// use cichar_core::encode::{TestEncoder, INPUT_WIDTH};
/// use cichar_patterns::{march, ConditionSpace, Test};
///
/// let encoder = TestEncoder::new(ConditionSpace::default());
/// let test = Test::deterministic("march_x", march::march_x(96));
/// let x = encoder.encode(&test);
/// assert_eq!(x.len(), INPUT_WIDTH);
/// assert!(x.iter().all(|v| (0.0..=1.0).contains(v)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestEncoder {
    space: ConditionSpace,
}

impl TestEncoder {
    /// Creates an encoder normalizing conditions over `space`.
    pub fn new(space: ConditionSpace) -> Self {
        Self { space }
    }

    /// The condition space used for normalization.
    pub fn space(&self) -> &ConditionSpace {
        &self.space
    }

    /// Encodes a test (extracting its features).
    pub fn encode(&self, test: &Test) -> Vec<f64> {
        let features = PatternFeatures::extract(&test.pattern());
        self.encode_features(&features, test)
    }

    /// Encodes with pre-extracted features (hot path).
    pub fn encode_features(&self, features: &PatternFeatures, test: &Test) -> Vec<f64> {
        let mut x = features.to_vec();
        let c = test.conditions();
        x.push(self.space.vdd().unlerp(self.space.vdd().clamp(c.vdd.value())));
        x.push(
            self.space
                .temperature()
                .unlerp(self.space.temperature().clamp(c.temperature.value())),
        );
        x.push(
            self.space
                .clock()
                .unlerp(self.space.clock().clamp(c.clock.value())),
        );
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cichar_patterns::{march, TestConditions};
    use cichar_units::Volts;

    #[test]
    fn width_and_bounds() {
        let enc = TestEncoder::new(ConditionSpace::default());
        let t = Test::deterministic("m", march::march_c_minus(64));
        let x = enc.encode(&t);
        assert_eq!(x.len(), INPUT_WIDTH);
        assert!(x.iter().all(|v| (0.0..=1.0).contains(v)), "{x:?}");
    }

    #[test]
    fn condition_channels_track_conditions() {
        let enc = TestEncoder::new(ConditionSpace::default());
        let t = Test::deterministic("m", march::march_c_minus(64));
        let low = t.with_conditions(TestConditions::nominal().with_vdd(Volts::new(1.5)));
        let high = t.with_conditions(TestConditions::nominal().with_vdd(Volts::new(2.1)));
        let xl = enc.encode(&low);
        let xh = enc.encode(&high);
        assert_eq!(xl[FEATURE_COUNT], 0.0, "vdd at space minimum");
        assert_eq!(xh[FEATURE_COUNT], 1.0, "vdd at space maximum");
        // Feature part identical — only the condition channel moved.
        assert_eq!(&xl[..FEATURE_COUNT], &xh[..FEATURE_COUNT]);
    }

    #[test]
    fn out_of_space_conditions_clamp() {
        let enc = TestEncoder::new(ConditionSpace::default());
        let t = Test::deterministic("m", march::march_c_minus(64))
            .with_conditions(TestConditions::nominal().with_vdd(Volts::new(5.0)));
        let x = enc.encode(&t);
        assert_eq!(x[FEATURE_COUNT], 1.0);
    }

    #[test]
    fn encode_features_matches_encode() {
        let enc = TestEncoder::new(ConditionSpace::default());
        let t = Test::deterministic("m", march::march_x(96));
        let f = PatternFeatures::extract(&t.pattern());
        assert_eq!(enc.encode_features(&f, &t), enc.encode(&t));
    }
}
