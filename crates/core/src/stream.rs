//! Streaming DSV aggregation: eq. 1 extrema and percentile sketches in
//! O(1) memory per observed trip point.
//!
//! Wafer-scale campaigns produce 10^5–10^6 (test, die) trip points; the
//! materialize-everything [`DsvReport`](crate::dsv::DsvReport) cannot hold
//! them. This module provides the incremental replacement the
//! [`wafer`](crate::wafer) pipeline folds entries into and then drops
//! them:
//!
//! * **extrema** (eq. 1's worst case) accumulate bit-exactly — the same
//!   `f64::total_cmp` ordering over non-quarantined trip points the
//!   materialized report uses;
//! * **percentiles** come from a fixed-bucket [`QuantileSketch`] over the
//!   parameter's search range, with error bounded by one bucket width;
//! * quarantined entries carry no trip point and are excluded from both,
//!   exactly as `DsvReport` excludes them.

use crate::dsv::{DsvEntry, TripStatus};
use serde::{Deserialize, Serialize};

/// A fixed-bucket quantile sketch over a known value range.
///
/// Simpler than P² and exactly bounded: every observation lands in one of
/// `buckets` equal-width bins spanning `[lo, hi]` (values outside clamp to
/// the edge bins), and any quantile query returns the midpoint of the bin
/// holding the requested rank — so the error against the exact sample
/// quantile is at most one bucket width ([`Self::resolution`]) for
/// in-range data. Trip points are always in range here: searches clamp to
/// the parameter's generous range by construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileSketch {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl QuantileSketch {
    /// Builds a sketch of `buckets` equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty/non-finite or `buckets` is zero.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && hi > lo, "non-empty finite range");
        assert!(buckets > 0, "at least one bucket");
        Self {
            lo,
            hi,
            counts: vec![0; buckets],
            total: 0,
        }
    }

    /// The bucket width — the worst-case quantile error for in-range data.
    pub fn resolution(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Observations absorbed so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Absorbs one observation (NaN is ignored; out-of-range values clamp
    /// to the edge bins).
    pub fn observe(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        let width = self.resolution();
        let raw = ((value - self.lo) / width).floor();
        let index = (raw.max(0.0) as usize).min(self.counts.len() - 1);
        self.counts[index] += 1;
        self.total += 1;
    }

    /// The approximate `q`-quantile (q in `[0, 1]`): the midpoint of the
    /// bucket holding the sample of rank `ceil(q·n)`. `None` before any
    /// observation.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                let width = self.resolution();
                return Some(self.lo + (index as f64 + 0.5) * width);
            }
        }
        // Unreachable: cumulative reaches `total >= rank` on the last bin.
        None
    }

    /// Merges another sketch of identical geometry (chunked wafer workers
    /// fold their shard sketches in index order).
    ///
    /// # Panics
    ///
    /// Panics when the geometries differ.
    pub fn merge(&mut self, other: &Self) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "sketch geometries must match"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
    }
}

/// Incremental eq. 1 aggregate over a stream of trip-point entries.
///
/// Replaces the materialized `Vec<DsvEntry>` for wafer-scale runs:
/// extrema and counters are exact (and bit-identical to the materialized
/// [`DsvReport`](crate::dsv::DsvReport) statistics), percentiles are
/// sketch-approximate within [`QuantileSketch::resolution`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TripAggregate {
    /// Entries observed, including quarantined ones.
    pub entries: u64,
    /// Entries carrying a trip point.
    pub converged: u64,
    /// Entries excluded from eq. 1 (no trustworthy trip point).
    pub quarantined: u64,
    /// Entries that needed the recovery ladder to converge.
    pub recovered: u64,
    /// Smallest trip point (`f64::total_cmp`, bit-exact).
    pub min: Option<f64>,
    /// Largest trip point (`f64::total_cmp`, bit-exact).
    pub max: Option<f64>,
    /// Sum of trip points (for the mean).
    pub sum: f64,
    /// The percentile sketch.
    pub sketch: QuantileSketch,
}

impl TripAggregate {
    /// An empty aggregate sketching over `[lo, hi]` with `buckets` bins —
    /// callers pass the measured parameter's generous range.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        Self {
            entries: 0,
            converged: 0,
            quarantined: 0,
            recovered: 0,
            min: None,
            max: None,
            sum: 0.0,
            sketch: QuantileSketch::new(lo, hi, buckets),
        }
    }

    /// Absorbs one measurement outcome. Quarantined entries (no trip
    /// point) advance only the exclusion counters, exactly like the
    /// materialized report's `filter_map` over `trip_point`.
    pub fn observe(&mut self, trip_point: Option<f64>, status: &TripStatus) {
        self.entries += 1;
        if status.is_quarantined() {
            self.quarantined += 1;
        }
        if status.is_recovered() {
            self.recovered += 1;
        }
        let Some(trip) = trip_point else {
            return;
        };
        self.converged += 1;
        self.sum += trip;
        self.min = Some(match self.min {
            Some(m) if m.total_cmp(&trip).is_le() => m,
            _ => trip,
        });
        self.max = Some(match self.max {
            Some(m) if m.total_cmp(&trip).is_ge() => m,
            _ => trip,
        });
        self.sketch.observe(trip);
    }

    /// Absorbs one materialized entry (fold-and-drop call site).
    pub fn observe_entry(&mut self, entry: &DsvEntry) {
        self.observe(entry.trip_point, &entry.status);
    }

    /// Mean trip point over converged entries.
    pub fn mean(&self) -> Option<f64> {
        (self.converged > 0).then(|| self.sum / self.converged as f64)
    }

    /// The eq. 1 worst-case band: `max - min`.
    pub fn spread(&self) -> Option<f64> {
        match (self.min, self.max) {
            (Some(lo), Some(hi)) => Some(hi - lo),
            _ => None,
        }
    }

    /// Sketch-approximate `q`-quantile of the converged trip points.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.sketch.quantile(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsv::{DsvReport, QuarantineReason, SearchStrategy};
    use cichar_ate::MeasuredParam;
    use proptest::prelude::*;

    fn entry(trip: Option<f64>, status: TripStatus) -> DsvEntry {
        DsvEntry {
            test_name: String::from("t"),
            trip_point: trip,
            measurements: 10,
            status,
        }
    }

    /// The materialized baseline the streaming aggregate must agree with.
    fn materialized(entries: Vec<DsvEntry>) -> DsvReport {
        DsvReport {
            param: MeasuredParam::DataValidTime,
            strategy: SearchStrategy::FullRange,
            reference_trip_point: None,
            entries,
            total_measurements: 0,
        }
    }

    /// Exact sample quantile under the sketch's rank convention: the
    /// `ceil(q·n)`-th smallest value.
    fn exact_quantile(values: &mut Vec<f64>, q: f64) -> Option<f64> {
        if values.is_empty() {
            return None;
        }
        values.sort_by(f64::total_cmp);
        let rank = ((q * values.len() as f64).ceil() as usize).max(1);
        Some(values[rank - 1])
    }

    #[test]
    fn empty_aggregate_reports_nothing() {
        let agg = TripAggregate::new(0.0, 40.0, 64);
        assert_eq!(agg.min, None);
        assert_eq!(agg.max, None);
        assert_eq!(agg.mean(), None);
        assert_eq!(agg.spread(), None);
        assert_eq!(agg.quantile(0.5), None);
    }

    #[test]
    fn quarantined_entries_are_excluded_from_extrema() {
        let mut agg = TripAggregate::new(0.0, 40.0, 64);
        agg.observe_entry(&entry(Some(30.0), TripStatus::Clean));
        agg.observe_entry(&entry(
            None,
            TripStatus::Quarantined {
                reason: QuarantineReason::Dropout,
            },
        ));
        agg.observe_entry(&entry(
            Some(32.0),
            TripStatus::Recovered {
                retries: 2,
                rebracketed: false,
            },
        ));
        assert_eq!(agg.entries, 3);
        assert_eq!(agg.converged, 2);
        assert_eq!(agg.quarantined, 1);
        assert_eq!(agg.recovered, 1);
        assert_eq!(agg.min, Some(30.0));
        assert_eq!(agg.max, Some(32.0));
        assert_eq!(agg.spread(), Some(2.0));
    }

    #[test]
    fn sketch_merge_matches_single_stream() {
        let mut whole = QuantileSketch::new(0.0, 10.0, 20);
        let mut left = QuantileSketch::new(0.0, 10.0, 20);
        let mut right = QuantileSketch::new(0.0, 10.0, 20);
        for i in 0..100 {
            let v = f64::from(i) / 10.0;
            whole.observe(v);
            if i % 2 == 0 { left.observe(v) } else { right.observe(v) }
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn out_of_range_and_nan_observations_are_safe() {
        let mut sketch = QuantileSketch::new(0.0, 10.0, 10);
        sketch.observe(-5.0);
        sketch.observe(15.0);
        sketch.observe(f64::NAN);
        assert_eq!(sketch.total(), 2);
        assert_eq!(sketch.quantile(0.0), Some(0.5), "clamped low lands in bin 0");
        assert_eq!(sketch.quantile(1.0), Some(9.5), "clamped high lands in the last bin");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Satellite: the incremental aggregate against the materialized
        /// `DsvReport` baseline — extrema and counters bit-exact,
        /// percentiles within the sketch's bucket resolution, quarantined
        /// entries excluded identically.
        #[test]
        fn streaming_aggregate_matches_materialized_report(
            observations in proptest::collection::vec((5.0f64..39.5, 0u8..10), 1..200),
            buckets in 16usize..512,
        ) {
            let range = MeasuredParam::DataValidTime.generous_range();
            let (lo, hi) = (range.start(), range.end());
            let entries: Vec<DsvEntry> = observations
                .iter()
                .map(|&(trip, tag)| match tag {
                    // ~20% quarantined, cycling through the reasons.
                    0 => entry(None, TripStatus::Quarantined { reason: QuarantineReason::Dropout }),
                    1 => entry(None, TripStatus::Quarantined { reason: QuarantineReason::Unconverged }),
                    2 => entry(Some(trip), TripStatus::Recovered { retries: 1, rebracketed: false }),
                    _ => entry(Some(trip), TripStatus::Clean),
                })
                .collect();

            let mut agg = TripAggregate::new(lo, hi, buckets);
            for e in &entries {
                agg.observe_entry(e);
            }
            let baseline = materialized(entries.clone());

            // Extrema and counters: bit-exact against the materialized report.
            prop_assert_eq!(agg.min, baseline.min());
            prop_assert_eq!(agg.max, baseline.max());
            prop_assert_eq!(agg.spread(), baseline.spread());
            prop_assert_eq!(agg.quarantined as usize, baseline.quarantined());
            prop_assert_eq!(agg.recovered as usize, baseline.recovered());
            prop_assert_eq!(agg.entries as usize, baseline.entries.len());
            prop_assert_eq!(agg.converged as usize, baseline.trip_points().len());
            if let (Some(stream_mean), Some(report_mean)) = (agg.mean(), baseline.mean()) {
                prop_assert!((stream_mean - report_mean).abs() < 1e-9);
            } else {
                prop_assert_eq!(agg.mean().is_some(), baseline.mean().is_some());
            }

            // Percentiles: within one bucket width of the exact sample
            // quantile under the same rank convention.
            let mut trips: Vec<f64> = baseline.trip_points();
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                match (agg.quantile(q), exact_quantile(&mut trips, q)) {
                    (Some(approx), Some(exact)) => prop_assert!(
                        (approx - exact).abs() <= agg.sketch.resolution(),
                        "q={} approx={} exact={} resolution={}",
                        q, approx, exact, agg.sketch.resolution()
                    ),
                    (a, b) => prop_assert_eq!(a.is_some(), b.is_some()),
                }
            }
        }
    }
}
