//! Text renderings of the paper's figures.
//!
//! The repro binaries in `cichar-bench` print these; each function maps to
//! one figure of the paper (see `DESIGN.md` §5).

use crate::dsv::DsvReport;
use cichar_search::SearchOutcome;
use std::fmt::Write as _;

/// Fig. 1 — the single-trip-point concept: a search trace plotted as
/// parameter value against search step, with pass/fail verdicts.
pub fn render_search_trace(outcome: &SearchOutcome, unit: &str) -> String {
    let mut out = String::from("step | value        | verdict\n-----+--------------+--------\n");
    for (i, (value, verdict)) in outcome.trace.iter().enumerate() {
        let _ = writeln!(out, "{i:>4} | {value:>9.3} {unit:<3}| {verdict}");
    }
    match (outcome.converged, outcome.trip_point) {
        (true, Some(tp)) => {
            let _ = writeln!(
                out,
                "trip point = {tp:.3} {unit} ({} measurements)",
                outcome.measurements()
            );
        }
        _ => {
            let _ = writeln!(out, "no trip point in range");
        }
    }
    out
}

/// Fig. 2 — the multiple-trip-point concept: each test's trip point as a
/// bar over the common parameter axis, with the worst-case variation band
/// annotated.
pub fn render_multi_trip(report: &DsvReport, unit: &str) -> String {
    let (Some(min), Some(max)) = (report.min(), report.max()) else {
        return String::from("no converged trip points\n");
    };
    let width = 46usize;
    let span = (max - min).max(1e-9);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "multiple trip points over {} tests ({unit}):",
        report.entries.len()
    );
    for entry in &report.entries {
        let Some(tp) = entry.trip_point else {
            // Quarantined points say why they were excluded; a plain
            // unconverged search (no fault involved) keeps the old label.
            if entry.status.is_quarantined() {
                let _ = writeln!(
                    out,
                    "{:<20} | ({})",
                    truncate_name(&entry.test_name, 20),
                    entry.status
                );
            } else {
                let _ = writeln!(out, "{:<20} | (did not converge)", entry.test_name);
            }
            continue;
        };
        let pos = (((tp - min) / span) * (width - 1) as f64).round() as usize;
        let mut bar = vec![b'-'; width];
        bar[pos] = b'*';
        let _ = writeln!(
            out,
            "{:<20} |{}| {tp:.3}",
            truncate_name(&entry.test_name, 20),
            String::from_utf8(bar).expect("ascii")
        );
    }
    let _ = writeln!(
        out,
        "worst case trip point variation: {:.3} {unit} (min {min:.3}, max {max:.3})",
        max - min
    );
    let (recovered, quarantined) = (report.recovered(), report.quarantined());
    if recovered > 0 || quarantined > 0 {
        let _ = writeln!(
            out,
            "measurement robustness: {recovered} recovered, {quarantined} quarantined (excluded from the band)"
        );
    }
    out
}

/// Fig. 3 — the search-until-trip-point economics: measurement counts of
/// the full-range strategy against STP, per test and in total.
pub fn render_stp_saving(full: &DsvReport, stp: &DsvReport) -> String {
    let mut out = String::from(
        "test                 | full-range | search-until-trip\n\
         ---------------------+------------+------------------\n",
    );
    for (a, b) in full.entries.iter().zip(&stp.entries) {
        let _ = writeln!(
            out,
            "{:<20} | {:>10} | {:>17}",
            truncate_name(&a.test_name, 20),
            a.measurements,
            b.measurements
        );
    }
    let saving = 100.0 * (1.0 - stp.total_measurements as f64 / full.total_measurements.max(1) as f64);
    let _ = writeln!(
        out,
        "total                | {:>10} | {:>17}\nmeasurement saving: {saving:.1}%",
        full.total_measurements, stp.total_measurements
    );
    out
}

/// Fig. 6 — the WCR classification bands as a number line.
pub fn render_wcr_bands() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "WCR   0.0                0.8        1.0        >1");
    let _ = writeln!(out, "      |------------------|----------|----------->");
    let _ = writeln!(out, "            pass           weakness      fail");
    for (wcr, label) in [(0.619f64, "March"), (0.701, "Random"), (0.904, "NNGA")] {
        let pos = (wcr / 1.2 * 46.0).round() as usize;
        let _ = writeln!(out, "      {}^ {label} ({wcr})", " ".repeat(pos));
    }
    out
}

/// Fig. 7 — the `T_DQ` timing diagram: address change, data-invalid
/// window, then the valid window whose length is the measured parameter.
pub fn render_timing_diagram(t_dq_ns: f64, spec_ns: f64, cycle_ns: f64) -> String {
    let width = 60usize;
    let scale = width as f64 / cycle_ns;
    let invalid = ((cycle_ns - t_dq_ns) * scale).round() as usize;
    let invalid = invalid.min(width - 1);
    let valid = width - invalid;
    let mut out = String::new();
    let _ = writeln!(out, "Address   ==X{}", "=".repeat(width - 1));
    let _ = writeln!(
        out,
        "DQ bus      {}{}",
        "X".repeat(invalid),
        "V".repeat(valid)
    );
    let _ = writeln!(out, "            |- not valid | data valid |");
    let _ = writeln!(
        out,
        "T_DQ (data output valid time) = {t_dq_ns:.1} ns over a {cycle_ns:.0} ns cycle; spec >= {spec_ns:.0} ns"
    );
    let verdict = if t_dq_ns >= spec_ns { "meets" } else { "VIOLATES" };
    let _ = writeln!(out, "the measured window {verdict} the specification");
    out
}

fn truncate_name(name: &str, max: usize) -> String {
    if name.len() <= max {
        name.to_string()
    } else {
        format!("{}~", &name[..max - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsv::{MultiTripRunner, SearchStrategy};
    use cichar_ate::{Ate, MeasuredParam};
    use cichar_dut::MemoryDevice;
    use cichar_patterns::{march, random, Test, TestConditions};
    use cichar_search::{BinarySearch, Probe};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reports() -> (DsvReport, DsvReport) {
        let mut rng = StdRng::seed_from_u64(3);
        let tests: Vec<Test> = (0..8)
            .map(|_| random::random_test_at(&mut rng, TestConditions::nominal()))
            .collect();
        let runner = MultiTripRunner::new(MeasuredParam::DataValidTime);
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let full = runner.run(&mut ate, &tests, SearchStrategy::FullRange);
        let stp = runner.run(&mut ate, &tests, SearchStrategy::SearchUntilTrip);
        (full, stp)
    }

    #[test]
    fn search_trace_lists_every_probe() {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let t = Test::deterministic("m", march::march_c_minus(64));
        let param = MeasuredParam::DataValidTime;
        let outcome = BinarySearch::new(param.generous_range(), param.resolution())
            .run(param.region_order(), ate.trip_oracle(&t, param));
        let text = render_search_trace(&outcome, "ns");
        assert_eq!(
            text.lines().count(),
            outcome.measurements() + 3,
            "{text}"
        );
        assert!(text.contains("trip point ="));
        assert!(text.contains("PASS") && text.contains("FAIL"));
    }

    #[test]
    fn unconverged_trace_says_so() {
        let outcome = SearchOutcome::unconverged(vec![(1.0, Probe::Pass)]);
        assert!(render_search_trace(&outcome, "V").contains("no trip point"));
    }

    #[test]
    fn multi_trip_shows_band() {
        let (_, stp) = reports();
        let text = render_multi_trip(&stp, "ns");
        assert!(text.contains("worst case trip point variation"));
        assert!(text.matches('*').count() >= stp.trip_points().len());
    }

    #[test]
    fn multi_trip_labels_quarantined_points() {
        use crate::dsv::{DsvEntry, QuarantineReason, TripStatus};
        let (_, mut stp) = reports();
        stp.entries.push(DsvEntry {
            test_name: String::from("flaky_contact"),
            trip_point: None,
            measurements: 12,
            status: TripStatus::Quarantined {
                reason: QuarantineReason::Dropout,
            },
        });
        stp.entries.push(DsvEntry {
            test_name: String::from("retried_ok"),
            trip_point: Some(stp.max().unwrap()),
            measurements: 9,
            status: TripStatus::Recovered {
                retries: 2,
                rebracketed: false,
            },
        });
        let text = render_multi_trip(&stp, "ns");
        assert!(text.contains("quarantined (dropout)"), "{text}");
        assert!(!text.contains("did not converge"), "{text}");
        assert!(
            text.contains("measurement robustness: 1 recovered, 1 quarantined"),
            "{text}"
        );
    }

    #[test]
    fn stp_saving_reports_percentage() {
        let (full, stp) = reports();
        let text = render_stp_saving(&full, &stp);
        assert!(text.contains("measurement saving:"), "{text}");
        assert!(text.contains('%'));
    }

    #[test]
    fn wcr_bands_mention_all_classes() {
        let text = render_wcr_bands();
        for word in ["pass", "weakness", "fail", "March", "NNGA"] {
            assert!(text.contains(word), "{text}");
        }
    }

    #[test]
    fn timing_diagram_scales_with_t_dq() {
        let wide = render_timing_diagram(32.3, 20.0, 60.0);
        let narrow = render_timing_diagram(22.1, 20.0, 60.0);
        let valid_len = |s: &str| s.matches('V').count();
        assert!(valid_len(&wide) > valid_len(&narrow));
        assert!(wide.contains("meets"));
        let violating = render_timing_diagram(18.0, 20.0, 60.0);
        assert!(violating.contains("VIOLATES"));
    }

    #[test]
    fn long_names_truncate() {
        assert_eq!(truncate_name("short", 20), "short");
        let t = truncate_name("a_very_long_test_name_indeed", 10);
        assert_eq!(t.len(), 10);
        assert!(t.ends_with('~'));
    }
}
