//! The fuzzy-neural test generator (fig. 5, step 1).
//!
//! "A number of GA test populations are initialized by a set of
//! sub-optimal tests selected by fuzzy-neural network test generator based
//! on its previous learning experience (NN weight file). It is called
//! sub-optimal because neural network can not guarantee that the generated
//! output will closely match the perfect approximation."
//!
//! The generator samples random candidate tests, asks the committee to
//! vote on each *without any measurement*, and returns the most severe
//! candidates. Software screening is orders of magnitude cheaper than ATE
//! time, so thousands of candidates can be sifted for each measured one.

use crate::learning::LearnedModel;
use cichar_patterns::{random, Test, TestConditions, TestSource};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One screened candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The proposed test (re-labelled [`TestSource::Neural`]).
    pub test: Test,
    /// Committee-predicted severity in `[0, 1]`.
    pub predicted_severity: f64,
    /// Vote confidence in `[0, 1]`.
    pub confidence: f64,
}

/// Screens random tests through the learned committee.
///
/// # Examples
///
/// See [`crate::compare`] for the full pipeline; the proposal call is
///
/// ```ignore
/// let generator = NeuralTestGenerator::new(&model);
/// let seeds = generator.propose(2000, 24, None, &mut rng);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NeuralTestGenerator<'a> {
    model: &'a LearnedModel,
}

impl<'a> NeuralTestGenerator<'a> {
    /// Creates a generator over a learned model.
    pub fn new(model: &'a LearnedModel) -> Self {
        Self { model }
    }

    /// The backing model.
    pub fn model(&self) -> &LearnedModel {
        self.model
    }

    /// Samples `candidates` random tests, votes on each, and returns the
    /// `top_k` most severe, ordered worst-first.
    ///
    /// With `conditions` set, every candidate is pinned to those
    /// conditions (Table 1's fixed corner); otherwise conditions randomize
    /// over the model's space.
    ///
    /// # Panics
    ///
    /// Panics if `top_k` is zero or exceeds `candidates`.
    pub fn propose<R: Rng + ?Sized>(
        &self,
        candidates: usize,
        top_k: usize,
        conditions: Option<TestConditions>,
        rng: &mut R,
    ) -> Vec<Candidate> {
        assert!(top_k > 0 && top_k <= candidates, "invalid top_k {top_k}");
        let mut scored: Vec<Candidate> = (0..candidates)
            .map(|i| {
                let test = match conditions {
                    Some(c) => random::random_test_at(rng, c),
                    None => random::random_test(rng, self.model.encoder.space()),
                };
                let (severity, confidence) = self.model.predict_severity(&test);
                Candidate {
                    test: test.relabel(format!("nn_candidate_{i:05}"), TestSource::Neural),
                    predicted_severity: severity,
                    confidence,
                }
            })
            .collect();
        scored.sort_by(|a, b| b.predicted_severity.total_cmp(&a.predicted_severity));
        scored.truncate(top_k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learning::{LearningConfig, LearningScheme};
    use cichar_ate::Ate;
    use cichar_dut::MemoryDevice;
    use cichar_fuzzy::coding::CodingScheme;
    use cichar_neural::TrainConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> LearnedModel {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let mut rng = StdRng::seed_from_u64(11);
        LearningScheme::new(LearningConfig {
            tests_per_round: 60,
            max_rounds: 2,
            committee_size: 3,
            hidden: vec![12],
            coding: CodingScheme::Numeric,
            train: TrainConfig {
                epochs: 150,
                ..TrainConfig::default()
            },
            ..LearningConfig::default()
        })
        .run(&mut ate, &mut rng)
    }

    #[test]
    fn proposes_sorted_candidates() {
        let model = model();
        let generator = NeuralTestGenerator::new(&model);
        let mut rng = StdRng::seed_from_u64(12);
        let picks = generator.propose(200, 10, None, &mut rng);
        assert_eq!(picks.len(), 10);
        for pair in picks.windows(2) {
            assert!(pair[0].predicted_severity >= pair[1].predicted_severity);
        }
        assert!(picks
            .iter()
            .all(|c| c.test.source() == cichar_patterns::TestSource::Neural));
    }

    #[test]
    fn screened_tests_beat_random_average_on_the_real_device() {
        // The whole point of the generator: its top picks must actually
        // provoke lower t_dq than the random average when measured.
        use cichar_patterns::PatternFeatures;
        let model = model();
        let generator = NeuralTestGenerator::new(&model);
        let mut rng = StdRng::seed_from_u64(13);
        let nominal = TestConditions::nominal();
        let picks = generator.propose(400, 8, Some(nominal), &mut rng);

        let device = MemoryDevice::nominal();
        let measure = |t: &Test| {
            device
                .evaluate_features(&PatternFeatures::extract(&t.pattern()), &nominal)
                .t_dq
                .value()
        };
        let picked_mean: f64 =
            picks.iter().map(|c| measure(&c.test)).sum::<f64>() / picks.len() as f64;
        let mut rng2 = StdRng::seed_from_u64(14);
        let random_mean: f64 = (0..60)
            .map(|_| measure(&cichar_patterns::random::random_test_at(&mut rng2, nominal)))
            .sum::<f64>()
            / 60.0;
        assert!(
            picked_mean < random_mean - 0.3,
            "screened mean {picked_mean} vs random mean {random_mean}"
        );
    }

    #[test]
    fn conditions_pin_when_requested() {
        let model = model();
        let generator = NeuralTestGenerator::new(&model);
        let mut rng = StdRng::seed_from_u64(15);
        let nominal = TestConditions::nominal();
        let picks = generator.propose(50, 5, Some(nominal), &mut rng);
        assert!(picks.iter().all(|c| *c.test.conditions() == nominal));
    }

    #[test]
    #[should_panic(expected = "invalid top_k")]
    fn rejects_zero_top_k() {
        let model = model();
        let generator = NeuralTestGenerator::new(&model);
        let mut rng = StdRng::seed_from_u64(16);
        let _ = generator.propose(10, 0, None, &mut rng);
    }
}
