//! Intelligent device characterization — the DATE'05 paper's contribution,
//! end to end.
//!
//! This crate wires the substrates (`cichar-dut`, `cichar-ate`,
//! `cichar-search`) and the computational-intelligence building blocks
//! (`cichar-neural`, `cichar-fuzzy`, `cichar-genetic`) into the paper's
//! two schemes plus the evaluation harness:
//!
//! * [`wcr`] — the worst-case ratio of eqs. (5)–(6) with the fig. 6
//!   classification bands;
//! * [`dsv`] — multiple-trip-point characterization (§3, eq. 1): measure
//!   the trip point of many tests, the first with a full-range search
//!   (eq. 2's reference trip point), the rest with search-until-trip-point;
//! * [`learning`] — the fig. 4 learning scheme: random tests measured on
//!   the ATE, coded numerically or fuzzily, fed to a bagged NN committee
//!   with learnability/generalization gates;
//! * [`generator`] — the fuzzy-neural test generator: committee-screened
//!   random candidates become the GA's sub-optimal seeds;
//! * [`optimization`] — the fig. 5 optimization scheme: a two-species GA
//!   (sequence and condition chromosomes) maximizing measured WCR, with a
//!   worst-case database as the product;
//! * [`compare`] — the Table 1 harness: deterministic vs random vs NN+GA;
//! * [`report`] — text renderings of the paper's figures.
//!
//! # Examples
//!
//! Measure a deterministic test's `T_DQ` trip point and classify it:
//!
//! ```
//! use cichar_ate::{Ate, MeasuredParam};
//! use cichar_core::wcr::{CharacterizationObjective, WcrClass};
//! use cichar_dut::MemoryDevice;
//! use cichar_patterns::{march, Test};
//! use cichar_search::{BinarySearch, RegionOrder};
//!
//! let mut ate = Ate::noiseless(MemoryDevice::nominal());
//! let test = Test::deterministic("march_c-", march::march_c_minus(64));
//! let param = MeasuredParam::DataValidTime;
//! let outcome = BinarySearch::new(param.generous_range(), param.resolution())
//!     .run(param.region_order(), ate.trip_oracle(&test, param));
//! let t_dq = outcome.trip_point.expect("trip in range");
//!
//! // §6: spec = 20 ns, minimum drift analysis (eq. 6).
//! let objective = CharacterizationObjective::drift_to_minimum(20.0);
//! let wcr = objective.wcr(t_dq);
//! assert_eq!(objective.classify(t_dq), WcrClass::Pass);
//! assert!((wcr - 0.619).abs() < 0.02, "March row of Table 1, wcr = {wcr}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod compare;
pub mod db;
pub mod dsv;
pub mod encode;
pub mod generator;
pub mod journal;
pub mod learning;
pub mod multi;
pub mod optimization;
pub mod production;
pub mod report;
pub mod sample;
pub mod stream;
pub mod wafer;
pub mod wcr;
