//! Worst-case ratio (eqs. 5–6) and the fig. 6 classification.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The crisp fig. 6 classes: pass `0 ≤ WCR ≤ 0.8`, weakness
/// `0.8 < WCR ≤ 1`, fail `WCR > 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WcrClass {
    /// Comfortable margin to the specification.
    Pass,
    /// Close to the limit — a design weakness worth detailed analysis.
    Weakness,
    /// Specification violated.
    Fail,
}

impl WcrClass {
    /// Classifies a WCR value per fig. 6.
    pub fn from_wcr(wcr: f64) -> Self {
        if wcr > 1.0 {
            WcrClass::Fail
        } else if wcr > 0.8 {
            WcrClass::Weakness
        } else {
            WcrClass::Pass
        }
    }
}

impl fmt::Display for WcrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WcrClass::Pass => "pass",
            WcrClass::Weakness => "weakness",
            WcrClass::Fail => "fail",
        })
    }
}

/// Which drift the analysis hunts (fig. 4 step (2): "generating a worst
/// case test that can provoke the worst case characterization parameter
/// drift, such as drift to the maximum value, or drift to the minimum
/// value").
///
/// * Drift **to maximum**: the parameter must stay below `vmax`; eq. (5)
///   scores a measurement `va` as `|va / vmax|`.
/// * Drift **to minimum**: the parameter must stay above `vmin`; eq. (6)
///   scores it as `|vmin / va|` — §6's `T_DQ` analysis (spec = 20 ns,
///   smaller is worse).
///
/// In both orientations *larger WCR is worse*, and "the worst case tests
/// are given by the largest values of WCR".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CharacterizationObjective {
    /// Parameter limited from above by `vmax` (eq. 5).
    DriftToMaximum {
        /// The specified maximum value.
        vmax: f64,
    },
    /// Parameter limited from below by `vmin` (eq. 6).
    DriftToMinimum {
        /// The specified minimum value.
        vmin: f64,
    },
}

impl CharacterizationObjective {
    /// Eq. (5) constructor.
    ///
    /// # Panics
    ///
    /// Panics if `vmax` is zero or not finite.
    pub fn drift_to_maximum(vmax: f64) -> Self {
        assert!(vmax.is_finite() && vmax != 0.0, "invalid vmax {vmax}");
        Self::DriftToMaximum { vmax }
    }

    /// Eq. (6) constructor.
    ///
    /// # Panics
    ///
    /// Panics if `vmin` is zero or not finite.
    pub fn drift_to_minimum(vmin: f64) -> Self {
        assert!(vmin.is_finite() && vmin != 0.0, "invalid vmin {vmin}");
        Self::DriftToMinimum { vmin }
    }

    /// The WCR of one measured value.
    pub fn wcr(&self, measured: f64) -> f64 {
        match *self {
            CharacterizationObjective::DriftToMaximum { vmax } => (measured / vmax).abs(),
            CharacterizationObjective::DriftToMinimum { vmin } => {
                if measured == 0.0 {
                    return f64::INFINITY;
                }
                (vmin / measured).abs()
            }
        }
    }

    /// Fig. 6 classification of one measured value.
    pub fn classify(&self, measured: f64) -> WcrClass {
        WcrClass::from_wcr(self.wcr(measured))
    }

    /// The worst case over a set of measurements: the largest WCR, as
    /// `(index, wcr)`.
    ///
    /// Returns `None` on an empty set.
    pub fn worst_case<'a>(
        &self,
        measurements: impl IntoIterator<Item = &'a f64>,
    ) -> Option<(usize, f64)> {
        measurements
            .into_iter()
            .enumerate()
            .map(|(i, &v)| (i, self.wcr(v)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// The measured value that would score `wcr` — the inverse of
    /// [`Self::wcr`] on the positive branch, which is what turns a
    /// committee's predicted WCR back into a predicted trip point.
    ///
    /// Infinite for `wcr == 0` under eq. 6 (a zero ratio needs an
    /// unboundedly large measurement).
    pub fn value_for_wcr(&self, wcr: f64) -> f64 {
        match *self {
            CharacterizationObjective::DriftToMaximum { vmax } => wcr * vmax.abs(),
            CharacterizationObjective::DriftToMinimum { vmin } => {
                if wcr == 0.0 {
                    return f64::INFINITY;
                }
                (vmin / wcr).abs()
            }
        }
    }

    /// The specification limit this objective compares against.
    pub fn spec(&self) -> f64 {
        match *self {
            CharacterizationObjective::DriftToMaximum { vmax } => vmax,
            CharacterizationObjective::DriftToMinimum { vmin } => vmin,
        }
    }
}

impl fmt::Display for CharacterizationObjective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CharacterizationObjective::DriftToMaximum { vmax } => {
                write!(f, "drift-to-maximum vs vmax = {vmax}")
            }
            CharacterizationObjective::DriftToMinimum { vmin } => {
                write!(f, "drift-to-minimum vs vmin = {vmin}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_wcr_values_reproduce() {
        // §6: spec 20 ns, eq. (6) minimization.
        let obj = CharacterizationObjective::drift_to_minimum(20.0);
        assert!((obj.wcr(32.3) - 0.619).abs() < 0.001);
        assert!((obj.wcr(28.5) - 0.701).abs() < 0.001);
        assert!((obj.wcr(22.1) - 0.904).abs() < 0.001);
    }

    #[test]
    fn fig6_bands() {
        assert_eq!(WcrClass::from_wcr(0.0), WcrClass::Pass);
        assert_eq!(WcrClass::from_wcr(0.8), WcrClass::Pass);
        assert_eq!(WcrClass::from_wcr(0.81), WcrClass::Weakness);
        assert_eq!(WcrClass::from_wcr(1.0), WcrClass::Weakness);
        assert_eq!(WcrClass::from_wcr(1.01), WcrClass::Fail);
    }

    #[test]
    fn table1_classes() {
        let obj = CharacterizationObjective::drift_to_minimum(20.0);
        assert_eq!(obj.classify(32.3), WcrClass::Pass);
        assert_eq!(obj.classify(28.5), WcrClass::Pass);
        assert_eq!(obj.classify(22.1), WcrClass::Weakness);
        assert_eq!(obj.classify(19.0), WcrClass::Fail);
    }

    #[test]
    fn maximization_objective_eq5() {
        // §4's frequency example: spec 100 MHz ceiling analysis.
        let obj = CharacterizationObjective::drift_to_maximum(110.0);
        assert!(obj.wcr(100.0) < 1.0);
        assert!(obj.wcr(112.0) > 1.0);
        assert_eq!(obj.spec(), 110.0);
    }

    #[test]
    fn worst_case_picks_largest_wcr() {
        let obj = CharacterizationObjective::drift_to_minimum(20.0);
        let measured = [32.3, 28.5, 22.1, 30.0];
        let (idx, wcr) = obj.worst_case(&measured).expect("non-empty");
        assert_eq!(idx, 2, "22.1 ns is the worst (minimum) measurement");
        assert!((wcr - 0.904).abs() < 0.001);
        assert_eq!(obj.worst_case([].iter()), None);
    }

    #[test]
    fn zero_measurement_is_infinite_wcr() {
        let obj = CharacterizationObjective::drift_to_minimum(20.0);
        assert!(obj.wcr(0.0).is_infinite());
        assert!(obj.value_for_wcr(0.0).is_infinite());
    }

    #[test]
    #[should_panic(expected = "invalid vmin")]
    fn rejects_zero_spec() {
        let _ = CharacterizationObjective::drift_to_minimum(0.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn eq6_wcr_is_antitone_in_measurement(
                vmin in 1.0f64..100.0,
                a in 1.0f64..200.0,
                delta in 0.01f64..50.0,
            ) {
                let obj = CharacterizationObjective::drift_to_minimum(vmin);
                prop_assert!(obj.wcr(a + delta) <= obj.wcr(a));
            }

            #[test]
            fn eq5_wcr_is_monotone_in_measurement(
                vmax in 1.0f64..200.0,
                a in 0.0f64..200.0,
                delta in 0.01f64..50.0,
            ) {
                let obj = CharacterizationObjective::drift_to_maximum(vmax);
                prop_assert!(obj.wcr(a + delta) >= obj.wcr(a));
            }

            #[test]
            fn value_for_wcr_inverts_wcr(
                spec in 1.0f64..100.0,
                wcr in 0.05f64..5.0,
            ) {
                for obj in [
                    CharacterizationObjective::drift_to_minimum(spec),
                    CharacterizationObjective::drift_to_maximum(spec),
                ] {
                    let value = obj.value_for_wcr(wcr);
                    prop_assert!((obj.wcr(value) - wcr).abs() < 1e-9 * wcr, "{obj}: {wcr}");
                }
            }

            #[test]
            fn classification_thresholds_agree_with_wcr(
                vmin in 1.0f64..100.0,
                measured in 0.5f64..300.0,
            ) {
                let obj = CharacterizationObjective::drift_to_minimum(vmin);
                let wcr = obj.wcr(measured);
                let class = obj.classify(measured);
                prop_assert_eq!(class, WcrClass::from_wcr(wcr));
                // At the spec itself the ratio is exactly 1: weakness edge.
                prop_assert_eq!(obj.classify(vmin), WcrClass::Weakness);
            }

            #[test]
            fn worst_case_dominates_all(
                vmin in 1.0f64..100.0,
                values in proptest::collection::vec(1.0f64..300.0, 1..20),
            ) {
                let obj = CharacterizationObjective::drift_to_minimum(vmin);
                let (idx, wcr) = obj.worst_case(values.iter()).expect("non-empty");
                prop_assert!(idx < values.len());
                for v in &values {
                    prop_assert!(obj.wcr(*v) <= wcr + 1e-12);
                }
            }
        }
    }

    #[test]
    fn displays_are_informative() {
        assert_eq!(WcrClass::Weakness.to_string(), "weakness");
        assert!(CharacterizationObjective::drift_to_minimum(20.0)
            .to_string()
            .contains("20"));
    }
}
