//! Crash-durable campaign journal: chunk-granular checkpoints for
//! [`WaferRunner`](crate::wafer::WaferRunner) campaigns.
//!
//! A journaled campaign records every completed touchdown chunk as one
//! JSONL file (`journal_chunk_{index:05}.jsonl`) written through the
//! atomic temp+rename path of [`db::save_jsonl`]: a chunk file either
//! exists complete or not at all, and a crash mid-write leaves at worst a
//! torn trailing line that salvage drops. Each file holds the chunk's
//! [`TouchdownRecord`]s in fold order followed by exactly one
//! [`ChunkCommit`] marker carrying the chunk's own aggregate and merged
//! ledger delta as integrity checks. A chunk counts as committed **only**
//! when its final record is a matching `Commit` — a missing, torn or
//! mismatched tail means the chunk re-runs on resume.
//!
//! Resume replays the contiguous committed prefix by re-folding the
//! stored per-touchdown entries and ledgers in exactly the live fold
//! order. Re-folding (rather than restoring chunk-level partials) is what
//! makes a resumed [`WaferReport`](crate::wafer::WaferReport)
//! bit-identical to an uninterrupted run: `f64` accumulation is not
//! associative, so the sums must be rebuilt term by term in the original
//! order. The chunk-level partials stored in the commit marker are used
//! purely to cross-check the re-fold and fail loudly on corruption.

use crate::db;
use crate::stream::TripAggregate;
use crate::wafer::WaferEntry;
use cichar_ate::MeasurementLedger;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// On-disk journal format version.
pub const JOURNAL_VERSION: u64 = 1;

/// The journal's identity artifact (`journal_meta.json`): which campaign
/// the chunk files belong to. Resume refuses a journal whose fingerprint
/// does not match the campaign being resumed — replaying another
/// campaign's chunks would silently corrupt results.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalMeta {
    /// Journal format version ([`JOURNAL_VERSION`]).
    pub version: u64,
    /// Digest of everything that shapes the campaign's results: runner
    /// and tester configuration, strategy, and the dies × tests shape.
    pub fingerprint: String,
    /// Total touchdown chunks the finished campaign will have committed.
    pub chunks_total: u64,
}

/// One persisted record in a chunk journal file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// One completed touchdown's raw product, in fold order.
    Touchdown(TouchdownRecord),
    /// The chunk's commit marker — always the file's last record.
    Commit(ChunkCommit),
}

/// A completed touchdown as journaled: everything the coordinator fold
/// needs to replay it without re-measuring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TouchdownRecord {
    /// Global touchdown index.
    pub touchdown: u64,
    /// Sites whose contact-check strobe returned no verdict.
    pub contact_faults: u64,
    /// Streamed entries in emission order (site-major, then test).
    pub entries: Vec<WaferEntry>,
    /// Per-site session ledgers (a session lives one touchdown, so the
    /// ledger is the touchdown's delta).
    pub ledgers: Vec<MeasurementLedger>,
}

/// The commit marker closing a chunk file. The aggregate and ledger are
/// the chunk's *own* partials, stored as integrity checks: replay
/// re-folds the touchdown records and must land on exactly these values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChunkCommit {
    /// Chunk index this marker commits.
    pub chunk: u64,
    /// Touchdown records the chunk holds.
    pub touchdowns: u64,
    /// Wafer entries across those touchdowns.
    pub entries: u64,
    /// The chunk-local trip aggregate (integrity check).
    pub aggregate: TripAggregate,
    /// The chunk-local merged ledger delta (integrity check).
    pub ledger: MeasurementLedger,
}

/// What resume replayed from the journal, reported alongside the (bit
/// identical) campaign result — the manifest's durability section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResumeStats {
    /// Committed chunks replayed from the journal.
    pub chunks_replayed: u64,
    /// Chunks the full campaign comprises.
    pub chunks_total: u64,
    /// Touchdowns replayed without re-measuring.
    pub touchdowns_replayed: u64,
    /// Wafer entries replayed without re-measuring.
    pub entries_replayed: u64,
}

/// A chunk-granular write-ahead journal over a directory.
///
/// # Examples
///
/// ```
/// use cichar_core::journal::{CampaignJournal, ChunkCommit, JournalMeta, JournalRecord};
/// use cichar_core::stream::TripAggregate;
/// use cichar_ate::MeasurementLedger;
///
/// let dir = std::env::temp_dir().join("cichar_journal_doc");
/// let _ = std::fs::remove_dir_all(&dir);
/// let meta = JournalMeta { version: 1, fingerprint: "demo".into(), chunks_total: 1 };
/// let journal = CampaignJournal::create(&dir, meta.clone()).expect("writable tmp dir");
/// journal
///     .commit_chunk(0, &[JournalRecord::Commit(ChunkCommit {
///         chunk: 0,
///         touchdowns: 0,
///         entries: 0,
///         aggregate: TripAggregate::new(0.0, 1.0, 8),
///         ledger: MeasurementLedger::new(),
///     })])
///     .expect("writable tmp dir");
/// let reopened = CampaignJournal::open(&dir, &meta).expect("same campaign");
/// assert_eq!(reopened.committed_chunks().expect("readable"), 1);
/// let _ = std::fs::remove_dir_all(&dir);
/// ```
#[derive(Debug, Clone)]
pub struct CampaignJournal {
    dir: PathBuf,
    meta: JournalMeta,
}

impl CampaignJournal {
    /// Starts a fresh journal in `dir`: creates the directory, removes
    /// any stale chunk files from a previous campaign, and writes the
    /// meta artifact atomically.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and write failures.
    pub fn create(dir: impl Into<PathBuf>, meta: JournalMeta) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if Self::is_chunk_file(&path) {
                fs::remove_file(&path)?;
            }
        }
        db::save_artifact(&meta, dir.join("journal_meta.json"))?;
        Ok(Self { dir, meta })
    }

    /// Opens an existing journal for resume, verifying that it belongs to
    /// the campaign described by `expected`.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::NotFound`] when `dir` holds no journal, and
    /// [`io::ErrorKind::InvalidData`] when the journal's version or
    /// fingerprint disagrees with the campaign being resumed.
    pub fn open(dir: impl Into<PathBuf>, expected: &JournalMeta) -> io::Result<Self> {
        let dir = dir.into();
        let meta: JournalMeta = db::load_artifact(dir.join("journal_meta.json"))?;
        if meta != *expected {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "journal at {} belongs to a different campaign \
                     (journal {meta:?}, resuming {expected:?})",
                    dir.display()
                ),
            ));
        }
        Ok(Self { dir, meta })
    }

    /// The journal's identity.
    pub fn meta(&self) -> &JournalMeta {
        &self.meta
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of chunk `index`'s journal file.
    pub fn chunk_path(&self, index: usize) -> PathBuf {
        self.dir.join(format!("journal_chunk_{index:05}.jsonl"))
    }

    fn is_chunk_file(path: &Path) -> bool {
        path.file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("journal_chunk_") && n.ends_with(".jsonl"))
    }

    /// Commits chunk `index`: writes its records (touchdowns then the
    /// commit marker) as one atomic JSONL file. The rename is the commit
    /// point — a crash before it leaves the chunk uncommitted, a crash
    /// after it leaves the chunk fully durable.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn commit_chunk(&self, index: usize, records: &[JournalRecord]) -> io::Result<()> {
        db::save_jsonl(records, self.chunk_path(index))
    }

    /// How many chunks form the journal's contiguous committed prefix —
    /// the chunks resume may replay. Scanning stops at the first missing
    /// chunk file or the first file whose tail is not a matching commit
    /// marker (torn tails are salvaged away by [`db::load_jsonl_salvaged`],
    /// which demotes a mid-write crash to "uncommitted").
    ///
    /// # Errors
    ///
    /// Propagates read failures other than a missing chunk file.
    pub fn committed_chunks(&self) -> io::Result<u64> {
        let mut committed = 0u64;
        while committed < self.meta.chunks_total {
            match self.load_chunk(committed as usize)? {
                Some(_) => committed += 1,
                None => break,
            }
        }
        Ok(committed)
    }

    /// Loads chunk `index` if it is committed: returns its touchdown
    /// records and commit marker, or `None` when the chunk file is
    /// missing, torn before its commit marker, or closed by a marker for
    /// the wrong chunk (a stale file from an earlier campaign layout).
    ///
    /// The commit marker's counts are verified here; the aggregate and
    /// ledger partials are verified by the caller's re-fold.
    ///
    /// # Errors
    ///
    /// Propagates read failures and [`io::ErrorKind::InvalidData`] for
    /// records that parse but are structurally impossible (a commit
    /// marker before the end, or counts that disagree with the records).
    pub fn load_chunk(&self, index: usize) -> io::Result<Option<(Vec<TouchdownRecord>, ChunkCommit)>> {
        let path = self.chunk_path(index);
        let salvaged = match db::load_jsonl_salvaged::<JournalRecord>(&path) {
            Ok(salvaged) => salvaged,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let mut records = salvaged.records;
        let commit = match records.pop() {
            Some(JournalRecord::Commit(commit)) if commit.chunk == index as u64 => commit,
            // No records, a torn-away tail, or a foreign commit marker:
            // the chunk never committed — re-run it.
            _ => return Ok(None),
        };
        let mut touchdowns = Vec::with_capacity(records.len());
        for record in records {
            match record {
                JournalRecord::Touchdown(td) => touchdowns.push(td),
                JournalRecord::Commit(stray) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "journal chunk {index} holds a stray commit marker for \
                             chunk {} before its tail",
                            stray.chunk
                        ),
                    ));
                }
            }
        }
        let entries: u64 = touchdowns.iter().map(|td| td.entries.len() as u64).sum();
        if commit.touchdowns != touchdowns.len() as u64 || commit.entries != entries {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "journal chunk {index} commit marker disagrees with its records: \
                     marker says {} touchdowns / {} entries, file holds {} / {}",
                    commit.touchdowns,
                    commit.entries,
                    touchdowns.len(),
                    entries
                ),
            ));
        }
        Ok(Some((touchdowns, commit)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsv::TripStatus;
    use std::fs::OpenOptions;
    use std::io::Write as _;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cichar_journal_{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn meta(chunks: u64) -> JournalMeta {
        JournalMeta {
            version: JOURNAL_VERSION,
            fingerprint: "test-campaign".to_string(),
            chunks_total: chunks,
        }
    }

    fn touchdown(td: u64, entries: usize) -> TouchdownRecord {
        TouchdownRecord {
            touchdown: td,
            contact_faults: 0,
            entries: (0..entries)
                .map(|i| WaferEntry {
                    die: td as u32,
                    test: i as u32,
                    trip_point: Some(1.5 + i as f64),
                    status: TripStatus::Clean,
                })
                .collect(),
            ledgers: vec![MeasurementLedger::new()],
        }
    }

    fn commit(chunk: u64, touchdowns: u64, entries: u64) -> ChunkCommit {
        ChunkCommit {
            chunk,
            touchdowns,
            entries,
            aggregate: TripAggregate::new(0.0, 10.0, 16),
            ledger: MeasurementLedger::new(),
        }
    }

    fn chunk_records(chunk: u64, touchdowns: usize, entries_each: usize) -> Vec<JournalRecord> {
        let mut records: Vec<JournalRecord> = (0..touchdowns)
            .map(|i| JournalRecord::Touchdown(touchdown(chunk * 10 + i as u64, entries_each)))
            .collect();
        records.push(JournalRecord::Commit(commit(
            chunk,
            touchdowns as u64,
            (touchdowns * entries_each) as u64,
        )));
        records
    }

    #[test]
    fn committed_prefix_stops_at_the_first_gap() {
        let dir = tmp_dir("gap");
        let journal = CampaignJournal::create(&dir, meta(4)).expect("tmp dir");
        journal.commit_chunk(0, &chunk_records(0, 2, 3)).expect("write");
        // Chunk 1 missing; chunk 2 committed but unreachable through the gap.
        journal.commit_chunk(2, &chunk_records(2, 2, 3)).expect("write");
        assert_eq!(journal.committed_chunks().expect("scan"), 1);
        let (tds, commit) = journal.load_chunk(0).expect("read").expect("committed");
        assert_eq!(tds.len(), 2);
        assert_eq!(commit.entries, 6);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_commit_marker_demotes_the_chunk_to_uncommitted() {
        let dir = tmp_dir("torn");
        let journal = CampaignJournal::create(&dir, meta(2)).expect("tmp dir");
        journal.commit_chunk(0, &chunk_records(0, 2, 2)).expect("write");
        // Tear the tail mid-commit-marker: the chunk must re-run, not
        // half-replay.
        let path = journal.chunk_path(0);
        let bytes = fs::read(&path).expect("written chunk");
        fs::write(&path, &bytes[..bytes.len() - 7]).expect("truncate");
        assert_eq!(journal.load_chunk(0).expect("salvage"), None);
        assert_eq!(journal.committed_chunks().expect("scan"), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn commit_marker_count_mismatch_fails_loudly() {
        let dir = tmp_dir("mismatch");
        let journal = CampaignJournal::create(&dir, meta(1)).expect("tmp dir");
        let mut records = chunk_records(0, 2, 2);
        if let JournalRecord::Commit(commit) = records.last_mut().expect("marker") {
            commit.entries = 99;
        }
        journal.commit_chunk(0, &records).expect("write");
        let err = journal.load_chunk(0).expect_err("marker disagrees");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("disagrees"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_rejects_a_foreign_fingerprint() {
        let dir = tmp_dir("foreign");
        CampaignJournal::create(&dir, meta(3)).expect("tmp dir");
        let other = JournalMeta {
            fingerprint: "other-campaign".to_string(),
            ..meta(3)
        };
        let err = CampaignJournal::open(&dir, &other).expect_err("fingerprint mismatch");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("different campaign"), "{err}");
        // The matching fingerprint opens fine.
        let journal = CampaignJournal::open(&dir, &meta(3)).expect("same campaign");
        assert_eq!(journal.meta().chunks_total, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_wipes_stale_chunk_files() {
        let dir = tmp_dir("stale");
        let journal = CampaignJournal::create(&dir, meta(2)).expect("tmp dir");
        journal.commit_chunk(0, &chunk_records(0, 1, 1)).expect("write");
        journal.commit_chunk(1, &chunk_records(1, 1, 1)).expect("write");
        // A fresh campaign over the same directory must not resurrect the
        // old campaign's chunks.
        let fresh = CampaignJournal::create(&dir, meta(2)).expect("tmp dir");
        assert_eq!(fresh.committed_chunks().expect("scan"), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_mid_file_stray_commit_is_corruption_not_a_tear() {
        let dir = tmp_dir("stray");
        let journal = CampaignJournal::create(&dir, meta(1)).expect("tmp dir");
        journal.commit_chunk(0, &chunk_records(0, 1, 1)).expect("write");
        let mut file = OpenOptions::new()
            .append(true)
            .open(journal.chunk_path(0))
            .expect("chunk file");
        // A trailing touchdown after the marker leaves the tail as a
        // non-commit record: the chunk is merely uncommitted.
        let extra = serde_json::to_string(&JournalRecord::Touchdown(touchdown(9, 1)))
            .expect("serializable");
        writeln!(file, "{extra}").expect("append");
        assert_eq!(journal.load_chunk(0).expect("salvage"), None);
        // But a second commit marker at the tail leaves the first one
        // stranded mid-file — structurally impossible, loud corruption.
        let marker =
            serde_json::to_string(&JournalRecord::Commit(commit(0, 2, 2))).expect("serializable");
        writeln!(file, "{marker}").expect("append");
        drop(file);
        let err = journal.load_chunk(0).expect_err("stray mid-file commit");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("stray commit marker"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
