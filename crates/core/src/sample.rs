//! Characterization over a statistically significant device sample.
//!
//! §1: "select a statistically significant sample of devices, and repeat
//! the test for every combination of two or more environmental variables.
//! … This set of information helps to define the final device
//! specification at the end of the characterization phase."
//!
//! [`SampleCharacterization`] runs a multiple-trip-point sweep for every
//! sampled die at every environmental corner and aggregates the population
//! statistics the final specification is cut from.

use crate::dsv::{MultiTripRunner, SearchStrategy};
use cichar_search::RetryPolicy;
use crate::wcr::{CharacterizationObjective, WcrClass};
use cichar_ate::{Ate, AteConfig, MeasuredParam};
use cichar_dut::{Device, Die, Lot, MemoryDevice};
use cichar_exec::ExecPolicy;
use cichar_patterns::{Test, TestConditions};
use cichar_trace::{SpanTrace, Tracer};
use cichar_units::{Celsius, Volts};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One die's result at one environmental corner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CornerResult {
    /// The forced environmental corner.
    pub conditions: TestConditions,
    /// Worst (minimum for eq.-6 objectives) trip point across the tests.
    pub worst_trip_point: Option<f64>,
    /// Trip-point spread across the tests at this corner.
    pub spread: Option<f64>,
    /// Measurements spent at this corner.
    pub measurements: u64,
    /// Tests quarantined out of this corner's DSV (fault recovery could
    /// not produce a trustworthy trip point for them).
    pub quarantined: u64,
    /// Tests that converged only through retries or re-bracketing.
    pub recovered: u64,
}

/// One die's results across all corners.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DieResult {
    /// The sampled die.
    pub die: Die,
    /// Per-corner results, in corner order.
    pub corners: Vec<CornerResult>,
    /// The die's overall worst trip point across corners.
    pub worst_trip_point: Option<f64>,
    /// WCR of the overall worst trip point.
    pub worst_wcr: Option<f64>,
}

impl DieResult {
    /// Fig. 6 class of the die's worst corner.
    pub fn class(&self) -> Option<WcrClass> {
        self.worst_wcr.map(WcrClass::from_wcr)
    }
}

/// The population report the specification is cut from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleReport {
    /// Per-die results.
    pub dies: Vec<DieResult>,
    /// The characterized parameter.
    pub param: MeasuredParam,
    /// The WCR objective.
    pub objective: CharacterizationObjective,
    /// Total measurements across the whole sample.
    pub total_measurements: u64,
}

impl SampleReport {
    /// Tests quarantined across the whole sample — every one of them was
    /// excluded from the population statistics below.
    pub fn quarantined(&self) -> u64 {
        self.dies
            .iter()
            .flat_map(|d| &d.corners)
            .map(|c| c.quarantined)
            .sum()
    }

    /// Tests that needed fault recovery across the whole sample.
    pub fn recovered(&self) -> u64 {
        self.dies
            .iter()
            .flat_map(|d| &d.corners)
            .map(|c| c.recovered)
            .sum()
    }

    /// Worst trip points of every die that produced one.
    pub fn worst_trip_points(&self) -> Vec<f64> {
        self.dies
            .iter()
            .filter_map(|d| d.worst_trip_point)
            .collect()
    }

    /// The population's worst-case trip point — the number the final
    /// specification must cover.
    pub fn population_worst(&self) -> Option<f64> {
        self.worst_trip_points()
            .into_iter()
            .min_by(f64::total_cmp)
    }

    /// Mean of per-die worst trip points.
    pub fn population_mean(&self) -> Option<f64> {
        let v = self.worst_trip_points();
        if v.is_empty() {
            return None;
        }
        Some(v.iter().sum::<f64>() / v.len() as f64)
    }

    /// Sample standard deviation of per-die worst trip points.
    pub fn population_std(&self) -> Option<f64> {
        let v = self.worst_trip_points();
        if v.len() < 2 {
            return None;
        }
        let mean = self.population_mean().expect("non-empty");
        Some(
            (v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (v.len() - 1) as f64).sqrt(),
        )
    }

    /// Dies whose worst corner violates the specification (fig. 6 fail).
    pub fn failing_dies(&self) -> Vec<&DieResult> {
        self.dies
            .iter()
            .filter(|d| d.class() == Some(WcrClass::Fail))
            .collect()
    }

    /// Margin between the population worst case and the specification, in
    /// the parameter's unit (negative = violation).
    pub fn spec_margin(&self) -> Option<f64> {
        let worst = self.population_worst()?;
        Some(match self.objective {
            CharacterizationObjective::DriftToMinimum { vmin } => worst - vmin,
            CharacterizationObjective::DriftToMaximum { vmax } => vmax - worst,
        })
    }

    /// The data-sheet limit this campaign supports — §1's "this set of
    /// information helps to define the final device specification".
    ///
    /// The suggested limit is the population worst case backed off by
    /// `k_sigma` population standard deviations (toward the conservative
    /// side for the objective's drift direction), so unseen dies from the
    /// same distribution stay covered.
    ///
    /// Returns `None` until at least two dies measured.
    pub fn suggest_spec(&self, k_sigma: f64) -> Option<f64> {
        let worst = self.population_worst()?;
        let sigma = self.population_std()?;
        Some(match self.objective {
            // Minimum-limited (eq. 6): promise less than the worst die.
            CharacterizationObjective::DriftToMinimum { .. } => worst - k_sigma * sigma,
            // Maximum-limited (eq. 5): promise more headroom than needed.
            CharacterizationObjective::DriftToMaximum { .. } => worst + k_sigma * sigma,
        })
    }
}

impl fmt::Display for SampleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sample of {} dies, {} corners each: population worst {:?}, mean {:?}, spec margin {:?}",
            self.dies.len(),
            self.dies.first().map_or(0, |d| d.corners.len()),
            self.population_worst(),
            self.population_mean(),
            self.spec_margin(),
        )
    }
}

/// Builds the §1 corner grid: every combination of the given supply and
/// temperature values at the nominal clock.
pub fn corner_grid(vdds: &[f64], temperatures: &[f64]) -> Vec<TestConditions> {
    let mut corners = Vec::with_capacity(vdds.len() * temperatures.len());
    for &v in vdds {
        for &t in temperatures {
            corners.push(
                TestConditions::nominal()
                    .with_vdd(Volts::new(v))
                    .with_temperature(Celsius::new(t)),
            );
        }
    }
    corners
}

/// Runs a characterization campaign over a sampled lot.
///
/// # Examples
///
/// ```
/// use cichar_core::sample::{corner_grid, SampleCharacterization};
/// use cichar_core::wcr::CharacterizationObjective;
/// use cichar_ate::MeasuredParam;
/// use cichar_dut::Lot;
/// use cichar_patterns::{march, Test};
/// use rand::SeedableRng;
///
/// let campaign = SampleCharacterization::new(
///     MeasuredParam::DataValidTime,
///     CharacterizationObjective::drift_to_minimum(20.0),
///     corner_grid(&[1.65, 1.8, 1.95], &[25.0]),
/// );
/// let tests = vec![Test::deterministic("march_c-", march::march_c_minus(64))];
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let report = campaign.run(&Lot::default(), 5, &tests, &mut rng);
/// assert_eq!(report.dies.len(), 5);
/// assert!(report.spec_margin().expect("measured") > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SampleCharacterization {
    param: MeasuredParam,
    objective: CharacterizationObjective,
    corners: Vec<TestConditions>,
    strategy: SearchStrategy,
    ate_config: AteConfig,
    recovery: Option<RetryPolicy>,
    /// The device prototype each die is characterized on (re-died via
    /// [`Device::for_die`]). Defaults to the nominal `memory` backend.
    device: Device,
}

impl SampleCharacterization {
    /// Creates a campaign over the given corners.
    ///
    /// # Panics
    ///
    /// Panics if `corners` is empty.
    pub fn new(
        param: MeasuredParam,
        objective: CharacterizationObjective,
        corners: Vec<TestConditions>,
    ) -> Self {
        assert!(!corners.is_empty(), "campaign needs at least one corner");
        Self {
            param,
            objective,
            corners,
            strategy: SearchStrategy::SearchUntilTrip,
            ate_config: AteConfig::default(),
            recovery: None,
            device: MemoryDevice::nominal().into(),
        }
    }

    /// Characterizes a different device backend: every die of the sample
    /// is instantiated as `device.for_die(die)`, so the campaign's
    /// structure carries to any registered backend.
    pub fn with_device(mut self, device: impl Into<Device>) -> Self {
        self.device = device.into();
        self
    }

    /// Uses an explicit tester configuration (noise/drift injection).
    pub fn with_ate_config(mut self, config: AteConfig) -> Self {
        self.ate_config = config;
        self
    }

    /// Uses full-range searches instead of STP (the cost baseline).
    pub fn with_full_range_searches(mut self) -> Self {
        self.strategy = SearchStrategy::FullRange;
        self
    }

    /// Enables the fault-tolerant measurement ladder on every die's sweep
    /// (see [`MultiTripRunner::with_recovery`]).
    pub fn with_recovery(mut self, policy: RetryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// The campaign's corners.
    pub fn corners(&self) -> &[TestConditions] {
        &self.corners
    }

    /// Samples `die_count` dies from `lot` and characterizes each over
    /// every corner with the given tests.
    pub fn run<R: Rng + ?Sized>(
        &self,
        lot: &Lot,
        die_count: usize,
        tests: &[Test],
        rng: &mut R,
    ) -> SampleReport {
        self.run_traced(lot, die_count, tests, rng, &Tracer::disabled())
    }

    /// [`run`](Self::run) with per-die spans recorded into `tracer`.
    ///
    /// Each sampled die gets one span keyed by its sample index; every
    /// search at every corner of that die reports into it. The span is
    /// absorbed when the die's sweep completes.
    pub fn run_traced<R: Rng + ?Sized>(
        &self,
        lot: &Lot,
        die_count: usize,
        tests: &[Test],
        rng: &mut R,
        tracer: &Tracer,
    ) -> SampleReport {
        let runner = self.runner();
        let dies: Vec<DieResult> = lot
            .sample_dies(rng, die_count)
            .into_iter()
            .enumerate()
            .map(|(index, die)| {
                let span = tracer.span(index as u64);
                let result = self.characterize_die(&runner, die, tests, &span);
                span.mark_done();
                tracer.absorb(span);
                result
            })
            .collect();
        self.assemble(dies)
    }

    /// [`run`](Self::run) with the per-die sweeps fanned out across worker
    /// threads.
    ///
    /// The sequential path already puts each die on a fresh tester session
    /// with the campaign's configuration, so the per-die work is
    /// independent by construction: this produces a report bit-identical
    /// to [`run`](Self::run) for every configuration — including noisy and
    /// drifting testers — at any thread count.
    pub fn run_parallel<R: Rng + ?Sized>(
        &self,
        lot: &Lot,
        die_count: usize,
        tests: &[Test],
        policy: ExecPolicy,
        rng: &mut R,
    ) -> SampleReport {
        self.run_parallel_traced(lot, die_count, tests, policy, rng, &Tracer::disabled())
    }

    /// [`run_parallel`](Self::run_parallel) with per-die spans recorded
    /// into `tracer`.
    ///
    /// Workers fill their die's span privately; the coordinator absorbs
    /// spans in sample-index order, so the sequenced stream matches the
    /// traced sequential run and is identical for every thread count.
    pub fn run_parallel_traced<R: Rng + ?Sized>(
        &self,
        lot: &Lot,
        die_count: usize,
        tests: &[Test],
        policy: ExecPolicy,
        rng: &mut R,
        tracer: &Tracer,
    ) -> SampleReport {
        let runner = self.runner();
        let sampled = lot.sample_dies(rng, die_count);
        let results = cichar_exec::par_map(policy, sampled, |index, die| {
            let span = tracer.span(index as u64);
            let result = self.characterize_die(&runner, die, tests, &span);
            // Stamp on the worker: the timing sidecar should measure the
            // die sweep, not the coordinator's absorb latency.
            span.mark_done();
            (result, span)
        });
        let dies = results
            .into_iter()
            .map(|(result, span)| {
                tracer.absorb(span);
                result
            })
            .collect();
        self.assemble(dies)
    }

    /// The per-die DSV runner with this campaign's recovery policy.
    fn runner(&self) -> MultiTripRunner {
        let runner = MultiTripRunner::new(self.param);
        match self.recovery {
            Some(policy) => runner.with_recovery(policy),
            None => runner,
        }
    }

    /// Runs one die's full corner sweep on its own fresh tester session,
    /// reporting every search into the die's `span`.
    fn characterize_die(
        &self,
        runner: &MultiTripRunner,
        die: Die,
        tests: &[Test],
        span: &SpanTrace,
    ) -> DieResult {
        // Each die goes onto a fresh tester session.
        let mut ate = Ate::with_config(self.device.for_die(die), self.ate_config.clone());
        let mut corners = Vec::with_capacity(self.corners.len());
        for &conditions in &self.corners {
            let corner_tests: Vec<Test> =
                tests.iter().map(|t| t.with_conditions(conditions)).collect();
            let baseline = *ate.ledger();
            let report = runner.run_in_span(&mut ate, &corner_tests, self.strategy, span);
            let measurements = ate.ledger().measurements_since(&baseline);
            corners.push(CornerResult {
                conditions,
                worst_trip_point: report.min(),
                spread: report.spread(),
                measurements,
                quarantined: report.quarantined() as u64,
                recovered: report.recovered() as u64,
            });
        }
        let worst_trip_point = corners
            .iter()
            .filter_map(|c| c.worst_trip_point)
            .min_by(f64::total_cmp);
        let worst_wcr = worst_trip_point.map(|tp| self.objective.wcr(tp));
        DieResult {
            die,
            corners,
            worst_trip_point,
            worst_wcr,
        }
    }

    fn assemble(&self, dies: Vec<DieResult>) -> SampleReport {
        let total = dies
            .iter()
            .flat_map(|d| &d.corners)
            .map(|c| c.measurements)
            .sum();
        SampleReport {
            dies,
            param: self.param,
            objective: self.objective,
            total_measurements: total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cichar_patterns::march;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn suite() -> Vec<Test> {
        vec![
            Test::deterministic("march_c-", march::march_c_minus(64)),
            Test::deterministic("checkerboard", march::checkerboard(128)),
        ]
    }

    fn campaign() -> SampleCharacterization {
        SampleCharacterization::new(
            MeasuredParam::DataValidTime,
            CharacterizationObjective::drift_to_minimum(20.0),
            corner_grid(&[1.65, 1.8, 1.95], &[25.0, 85.0]),
        )
    }

    #[test]
    fn corner_grid_is_a_full_product() {
        let corners = corner_grid(&[1.6, 1.8], &[-40.0, 25.0, 125.0]);
        assert_eq!(corners.len(), 6);
        assert!(corners
            .iter()
            .any(|c| c.vdd.value() == 1.6 && c.temperature.value() == 125.0));
    }

    #[test]
    fn every_die_gets_every_corner() {
        let mut rng = StdRng::seed_from_u64(3);
        let report = campaign().run(&Lot::default(), 4, &suite(), &mut rng);
        assert_eq!(report.dies.len(), 4);
        for die in &report.dies {
            assert_eq!(die.corners.len(), 6);
            assert!(die.worst_trip_point.is_some());
        }
    }

    #[test]
    fn worst_corner_is_cold_supply_hot_die() {
        let mut rng = StdRng::seed_from_u64(4);
        let report = campaign().run(&Lot::default(), 3, &suite(), &mut rng);
        for die in &report.dies {
            let worst_corner = die
                .corners
                .iter()
                .filter(|c| c.worst_trip_point.is_some())
                .min_by(|a, b| {
                    a.worst_trip_point
                        .expect("filtered")
                        .total_cmp(&b.worst_trip_point.expect("filtered"))
                })
                .expect("corners measured");
            assert_eq!(worst_corner.conditions.vdd.value(), 1.65);
            assert_eq!(worst_corner.conditions.temperature.value(), 85.0);
        }
    }

    #[test]
    fn population_statistics_are_consistent() {
        let mut rng = StdRng::seed_from_u64(5);
        let report = campaign().run(&Lot::default(), 6, &suite(), &mut rng);
        let worst = report.population_worst().expect("measured");
        let mean = report.population_mean().expect("measured");
        assert!(worst <= mean);
        assert!(report.population_std().expect("n >= 2") >= 0.0);
        assert!(report.spec_margin().expect("measured") > 0.0, "healthy lot");
        assert!(report.failing_dies().is_empty());
        assert_eq!(
            report.total_measurements,
            report
                .dies
                .iter()
                .flat_map(|d| &d.corners)
                .map(|c| c.measurements)
                .sum::<u64>()
        );
    }

    #[test]
    fn die_variation_shows_in_the_population() {
        let mut rng = StdRng::seed_from_u64(6);
        let report = campaign().run(&Lot::default(), 10, &suite(), &mut rng);
        let std = report.population_std().expect("n >= 2");
        assert!(std > 0.05, "die-to-die spread must be visible: {std}");
    }

    #[test]
    fn stp_campaign_is_cheaper_than_full_range() {
        let mut rng_a = StdRng::seed_from_u64(7);
        let stp = campaign().run(&Lot::default(), 2, &suite(), &mut rng_a);
        let mut rng_b = StdRng::seed_from_u64(7);
        let full = campaign()
            .with_full_range_searches()
            .run(&Lot::default(), 2, &suite(), &mut rng_b);
        assert!(
            stp.total_measurements < full.total_measurements,
            "{} vs {}",
            stp.total_measurements,
            full.total_measurements
        );
        // Same dies (same seed), same worst-case conclusion.
        let a = stp.population_worst().expect("measured");
        let b = full.population_worst().expect("measured");
        assert!((a - b).abs() < 0.2, "{a} vs {b}");
    }

    #[test]
    fn suggested_spec_is_conservative_and_covers_the_sample() {
        let mut rng = StdRng::seed_from_u64(9);
        let report = campaign().run(&Lot::default(), 8, &suite(), &mut rng);
        let worst = report.population_worst().expect("measured");
        let spec = report.suggest_spec(3.0).expect("n >= 2");
        // Minimum-limited: the suggested limit sits below every measured
        // die's worst case.
        assert!(spec < worst);
        for die in &report.dies {
            assert!(die.worst_trip_point.expect("measured") > spec);
        }
        // Tighter k gives a less conservative (higher) limit.
        let loose = report.suggest_spec(1.0).expect("n >= 2");
        assert!(loose > spec);
    }

    #[test]
    fn parallel_run_is_bit_identical_even_with_noise() {
        use cichar_ate::{AteConfig, NoiseModel};
        let noisy = campaign().with_ate_config(AteConfig {
            noise: NoiseModel::new(0.02, 0.02, 0.002),
            seed: 41,
            ..AteConfig::default()
        });
        let mut rng_a = StdRng::seed_from_u64(11);
        let sequential = noisy.run(&Lot::default(), 5, &suite(), &mut rng_a);
        let mut rng_b = StdRng::seed_from_u64(11);
        let parallel = noisy.run_parallel(
            &Lot::default(),
            5,
            &suite(),
            ExecPolicy::with_threads(8),
            &mut rng_b,
        );
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn parallel_run_is_thread_count_invariant() {
        let mut rng_a = StdRng::seed_from_u64(12);
        let one = campaign().run_parallel(
            &Lot::default(),
            4,
            &suite(),
            ExecPolicy::serial(),
            &mut rng_a,
        );
        let mut rng_b = StdRng::seed_from_u64(12);
        let many = campaign().run_parallel(
            &Lot::default(),
            4,
            &suite(),
            ExecPolicy::with_threads(8),
            &mut rng_b,
        );
        assert_eq!(one, many);
    }

    #[test]
    #[should_panic(expected = "at least one corner")]
    fn rejects_empty_corner_list() {
        let _ = SampleCharacterization::new(
            MeasuredParam::DataValidTime,
            CharacterizationObjective::drift_to_minimum(20.0),
            vec![],
        );
    }

    #[test]
    fn display_summarizes_population() {
        let mut rng = StdRng::seed_from_u64(8);
        let report = campaign().run(&Lot::default(), 2, &suite(), &mut rng);
        let s = report.to_string();
        assert!(s.contains("2 dies") && s.contains("spec margin"), "{s}");
    }

    #[test]
    fn faulty_sample_recovers_the_fault_free_specification() {
        use cichar_ate::{NoiseModel, TesterFaultModel};
        use cichar_search::RetryPolicy;
        // Dropout-prone probes across a sampled lot: the retry ladder
        // resolves every verdict, so the per-die worst cases — and the
        // specification cut from them — match the fault-free campaign
        // exactly (dropouts hide verdicts but never alter them).
        let faulty = campaign()
            .with_ate_config(AteConfig {
                noise: NoiseModel::noiseless(),
                faults: TesterFaultModel::transient(0.0, 0.15),
                seed: 17,
                ..AteConfig::default()
            })
            .with_recovery(RetryPolicy::new(8, 50.0));
        let mut rng_a = StdRng::seed_from_u64(19);
        let report = faulty.run(&Lot::default(), 4, &suite(), &mut rng_a);
        assert!(report.recovered() > 0, "15% dropouts must need retries");

        let clean = campaign().with_ate_config(AteConfig {
            noise: NoiseModel::noiseless(),
            seed: 17,
            ..AteConfig::default()
        });
        let mut rng_b = StdRng::seed_from_u64(19);
        let baseline = clean.run(&Lot::default(), 4, &suite(), &mut rng_b);
        // The only quarantines left are genuine unmeasurables (tests with
        // no trip in the generous range) that the fault-free campaign
        // withholds too — none are fault-induced.
        assert_eq!(report.quarantined(), baseline.quarantined(), "{report}");
        assert_eq!(report.population_worst(), baseline.population_worst());
        assert_eq!(report.suggest_spec(3.0), baseline.suggest_spec(3.0));
    }
}
