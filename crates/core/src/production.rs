//! Production test programs derived from characterization.
//!
//! §1 draws the line this crate exists on: "Production testing determines
//! if the device meets its design specification and, if it does not, stops
//! testing on first fail, bins the device and goes on to the next device",
//! while characterization's output "helps to define the final device
//! specification … and develop a production test program in manufacturing
//! test".
//!
//! [`ProductionProgram`] is that artifact: an ordered list of go/no-go
//! steps, each applying one test with the measured parameter forced to the
//! specification limit plus a guard band — a single measurement per step,
//! stop on first fail, bin. [`ProductionProgram::from_worst_cases`]
//! derives the steps from a worst-case database, which is how the paper's
//! method upgrades manufacturing test: the screen now contains the tests
//! that actually provoke the worst drift.

use crate::db::WorstCaseDatabase;
use crate::wcr::CharacterizationObjective;
use cichar_ate::{Ate, MeasuredParam};
use cichar_patterns::Test;
use cichar_search::Probe;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One go/no-go step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestStep {
    /// The stimulus and conditions to apply.
    pub test: Test,
    /// The parameter forced to the limit.
    pub param: MeasuredParam,
    /// The forced limit value (spec plus guard band, on the pass side).
    pub limit: f64,
}

impl fmt::Display for TestStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {} forced to {:.3} {}",
            self.test.name(),
            self.param,
            self.limit,
            self.param.kind().unit_symbol()
        )
    }
}

/// The binning outcome of a production run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bin {
    /// Every step passed.
    Good,
    /// Testing stopped at the named step (0-based index).
    Reject {
        /// Index of the failing step.
        step: usize,
        /// Name of the failing step's test.
        test_name: String,
    },
}

impl Bin {
    /// `true` for [`Bin::Good`].
    pub fn is_good(&self) -> bool {
        matches!(self, Bin::Good)
    }
}

impl fmt::Display for Bin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bin::Good => f.write_str("bin 1 (good)"),
            Bin::Reject { step, test_name } => {
                write!(f, "reject at step {step} ({test_name})")
            }
        }
    }
}

/// An ordered go/no-go production program.
///
/// # Examples
///
/// See [`ProductionProgram::from_worst_cases`] and the
/// `production_screen` example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProductionProgram {
    steps: Vec<TestStep>,
}

impl ProductionProgram {
    /// Builds a program from explicit steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty — an empty program bins everything good.
    pub fn new(steps: Vec<TestStep>) -> Self {
        assert!(!steps.is_empty(), "production program needs steps");
        Self { steps }
    }

    /// The steps in execution order.
    pub fn steps(&self) -> &[TestStep] {
        &self.steps
    }

    /// Derives a program from the worst-case database: the top
    /// `max_steps` database entries become go/no-go steps at the
    /// specification limit padded by `guard_band` (in the parameter's
    /// unit, applied toward the pass side).
    ///
    /// # Panics
    ///
    /// Panics if the database is empty or `guard_band` is negative.
    pub fn from_worst_cases(
        db: &WorstCaseDatabase,
        param: MeasuredParam,
        objective: CharacterizationObjective,
        guard_band: f64,
        max_steps: usize,
    ) -> Self {
        assert!(guard_band >= 0.0, "negative guard band {guard_band}");
        assert!(!db.is_empty(), "empty worst-case database");
        let limit = match objective {
            // Minimum-limited parameter (eq. 6): the device must still pass
            // with the parameter forced to spec + guard band.
            CharacterizationObjective::DriftToMinimum { vmin } => vmin + guard_band,
            // Maximum-limited parameter (eq. 5): forced to spec − guard band.
            CharacterizationObjective::DriftToMaximum { vmax } => vmax - guard_band,
        };
        let steps = db
            .entries()
            .iter()
            .take(max_steps.max(1))
            .map(|record| TestStep {
                test: record.test.clone(),
                param,
                limit,
            })
            .collect();
        Self::new(steps)
    }

    /// Screens one device: applies each step once, stops on first fail.
    ///
    /// Each step is exactly one ATE measurement — production economics,
    /// not characterization economics — and combines the guard-banded
    /// parametric check with the functional data compare, so both a
    /// marginal die and a defective array bin out.
    pub fn screen(&self, ate: &mut Ate) -> Bin {
        for (i, step) in self.steps.iter().enumerate() {
            if ate.measure_production(&step.test, step.param, step.limit) != Probe::Pass {
                return Bin::Reject {
                    step: i,
                    test_name: step.test.name().to_string(),
                };
            }
        }
        Bin::Good
    }

    /// Screens a batch of devices, returning the yield as `(good, total)`.
    pub fn screen_batch<'a>(
        &self,
        testers: impl IntoIterator<Item = &'a mut Ate>,
    ) -> (usize, usize) {
        let mut good = 0;
        let mut total = 0;
        for ate in testers {
            total += 1;
            if self.screen(ate).is_good() {
                good += 1;
            }
        }
        (good, total)
    }
}

impl fmt::Display for ProductionProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "production program, {} steps:", self.steps.len())?;
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(f, "  {i}: {step}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::WorstCaseTest;
    
    use cichar_dut::{Die, Lot, MemoryDevice, ProcessCorner};
    use cichar_patterns::{march, Pattern, TestVector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The resonant ping-pong stress pattern — a stand-in for a GA-found
    /// worst case.
    fn stress_test() -> Test {
        let mut v = Vec::new();
        v.push(TestVector::write(0x0000, 0x5555));
        v.push(TestVector::write(0xFFFF, 0xAAAA));
        while v.len() < 990 {
            v.push(TestVector::write(0x0000, 0x5555));
            for i in 0..12u16 {
                let (addr, w) = if i % 2 == 0 {
                    (0x0000, 0x5555)
                } else {
                    (0xFFFF, 0xAAAA)
                };
                v.push(TestVector::read(addr, w));
            }
        }
        Test::deterministic("wc_stress", Pattern::new_clamped(v))
    }

    fn objective() -> CharacterizationObjective {
        CharacterizationObjective::drift_to_minimum(20.0)
    }

    fn db_with(tests: &[(&str, Test, f64)]) -> WorstCaseDatabase {
        let mut db = WorstCaseDatabase::new(8);
        for (name, test, tp) in tests {
            db.insert(WorstCaseTest {
                test: test.relabel(*name, cichar_patterns::TestSource::NeuralGa),
                trip_point: *tp,
                wcr: objective().wcr(*tp),
                class: objective().classify(*tp),
                predicted_severity: None,
            });
        }
        db
    }

    fn march_program(guard_band: f64) -> ProductionProgram {
        let db = db_with(&[(
            "march",
            Test::deterministic("march", march::march_c_minus(64)),
            32.3,
        )]);
        ProductionProgram::from_worst_cases(
            &db,
            MeasuredParam::DataValidTime,
            objective(),
            guard_band,
            4,
        )
    }

    fn worst_case_program(guard_band: f64) -> ProductionProgram {
        let db = db_with(&[
            ("wc_stress", stress_test(), 22.5),
            ("march", Test::deterministic("march", march::march_c_minus(64)), 32.3),
        ]);
        ProductionProgram::from_worst_cases(
            &db,
            MeasuredParam::DataValidTime,
            objective(),
            guard_band,
            4,
        )
    }

    #[test]
    fn limits_apply_guard_band_toward_pass_side() {
        let p = march_program(1.5);
        assert_eq!(p.steps()[0].limit, 21.5);
        let eq5 = ProductionProgram::from_worst_cases(
            &db_with(&[("m", Test::deterministic("m", march::march_x(96)), 105.0)]),
            MeasuredParam::MaxFrequency,
            CharacterizationObjective::drift_to_maximum(110.0),
            2.0,
            4,
        );
        assert_eq!(eq5.steps()[0].limit, 108.0);
    }

    #[test]
    fn nominal_die_bins_good() {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        assert_eq!(worst_case_program(1.0).screen(&mut ate), Bin::Good);
        // One measurement per step — production economics.
        assert_eq!(ate.ledger().measurements(), 2);
    }

    #[test]
    fn screen_stops_on_first_fail() {
        // A slow, stress-sensitive die: the worst-case step (first in WCR
        // order) rejects it immediately.
        let weak = Die::at_corner(ProcessCorner::Slow);
        let mut ate = Ate::noiseless(MemoryDevice::new(weak));
        let bin = worst_case_program(1.0).screen(&mut ate);
        match bin {
            Bin::Reject { step, ref test_name } => {
                assert_eq!(step, 0, "stops at the first (worst) step");
                assert_eq!(test_name, "wc_stress");
            }
            Bin::Good => panic!("slow sensitive die must be rejected"),
        }
        assert_eq!(
            ate.ledger().measurements(),
            1,
            "stop-on-first-fail spends one measurement"
        );
    }

    #[test]
    fn worst_case_program_catches_escapes_the_march_program_misses() {
        // §1's motivating scenario: a die that passes the deterministic
        // production screen but violates the spec under the true worst
        // case. The Noisy corner die (typical speed, outlier stress
        // sensitivity) is exactly that part.
        let escape_prone = Die::at_corner(ProcessCorner::Noisy);
        // Check the premise: its March t_dq is fine, its worst-case t_dq
        // is not (needs > 1 ns guard band to show).
        let device = MemoryDevice::new(escape_prone);
        let march_t = device
            .evaluate(&Test::deterministic("m", march::march_c_minus(64)))
            .t_dq
            .value();
        let stress_t = device.evaluate(&stress_test()).t_dq.value();
        assert!(march_t > 21.5 && stress_t < 21.5, "{march_t} vs {stress_t}");

        let mut ate_march = Ate::noiseless(MemoryDevice::new(escape_prone));
        let mut ate_wc = Ate::noiseless(MemoryDevice::new(escape_prone));
        assert_eq!(
            march_program(1.5).screen(&mut ate_march),
            Bin::Good,
            "the deterministic-only program lets the escape through"
        );
        assert!(
            !worst_case_program(1.5).screen(&mut ate_wc).is_good(),
            "the characterization-derived program catches it"
        );
    }

    #[test]
    fn defective_array_is_rejected_functionally() {
        use cichar_dut::{Fault, FaultSet};
        // A die with healthy parametrics but a stuck-at cell inside the
        // March sweep: only the functional compare can catch it.
        let device = MemoryDevice::nominal().with_faults(FaultSet::new(vec![Fault::StuckAt {
            address: 7,
            bit: 2,
            value: true,
        }]));
        let mut ate = Ate::noiseless(device);
        let program = march_program(1.5);
        assert!(
            !program.screen(&mut ate).is_good(),
            "the production screen must catch array defects"
        );
        assert_eq!(ate.ledger().measurements(), 1, "one application suffices");
    }

    #[test]
    fn defect_outside_the_swept_array_escapes_the_march_step() {
        use cichar_dut::{Fault, FaultSet};
        // March C- sweeps addresses 0..64; a defect at 0x4000 is invisible
        // to it — coverage is only as good as the address sweep.
        let device = MemoryDevice::nominal().with_faults(FaultSet::new(vec![Fault::StuckAt {
            address: 0x4000,
            bit: 0,
            value: true,
        }]));
        let mut ate = Ate::noiseless(device);
        assert_eq!(march_program(1.5).screen(&mut ate), Bin::Good);
    }

    #[test]
    fn batch_yield_reflects_lot_quality() {
        let program = worst_case_program(0.5);
        let lot = Lot::default();
        let mut rng = StdRng::seed_from_u64(11);
        let mut testers: Vec<Ate> = lot
            .sample_dies(&mut rng, 30)
            .into_iter()
            .map(|die| Ate::noiseless(MemoryDevice::new(die)))
            .collect();
        let (good, total) = program.screen_batch(testers.iter_mut());
        assert_eq!(total, 30);
        assert!(good >= 20, "healthy lot yields well: {good}/{total}");
    }

    #[test]
    fn steps_ordered_by_database_severity() {
        let p = worst_case_program(1.0);
        assert_eq!(p.steps()[0].test.name(), "wc_stress");
        assert_eq!(p.steps()[1].test.name(), "march");
    }

    #[test]
    #[should_panic(expected = "empty worst-case database")]
    fn rejects_empty_database() {
        let db = WorstCaseDatabase::new(4);
        let _ = ProductionProgram::from_worst_cases(
            &db,
            MeasuredParam::DataValidTime,
            objective(),
            1.0,
            4,
        );
    }

    #[test]
    fn display_lists_steps_and_bins() {
        let p = worst_case_program(1.0);
        let text = p.to_string();
        assert!(text.contains("production program, 2 steps"), "{text}");
        assert!(Bin::Good.to_string().contains("good"));
        assert!(Bin::Reject {
            step: 0,
            test_name: "x".into()
        }
        .to_string()
        .contains("reject"));
    }
}
