//! Multiple-trip-point characterization (§3, eq. 1).
//!
//! `DSV = TPV(T_1 .. T_N)`: the device specification becomes the *set* of
//! trip points over many tests. The first test runs a full-range
//! successive-approximation search (eq. 2 — the reference trip point);
//! every further test runs search-until-trip-point around that reference
//! (eqs. 3–4), which is where the measurement saving of fig. 3 comes from.

use cichar_ate::{Ate, MeasuredParam, MeasurementLedger, ParallelAte};
use cichar_exec::ExecPolicy;
use cichar_patterns::Test;
use cichar_search::{
    trace_is_consistent, RebracketingStp, RetryPolicy, SearchUntilTrip, SuccessiveApproximation,
    TripPrediction, WarmStartPlanner,
};
use cichar_trace::{Progress, SpanTrace, Telemetry, TraceEvent, Tracer};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How each test's trip point is searched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchStrategy {
    /// Every test gets a full-range successive-approximation search — the
    /// §1 state of the art, used as the fig. 3 cost baseline.
    FullRange,
    /// Eq. 2 for the first test, then eqs. 3–4 around the reference trip
    /// point — the paper's method.
    SearchUntilTrip,
}

/// Why a test's trip point was withheld from the DSV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuarantineReason {
    /// The verdict channel stayed unavailable — a probe-contact dropout or
    /// tester session abort the retry ladder could not ride out.
    Dropout,
    /// The search exhausted the generous range without finding a trip.
    Unconverged,
    /// The search converged but its trace puts pass probes beyond fail
    /// probes for the region ordering — the trip point cannot be trusted.
    InconsistentTrace,
    /// The stall watchdog abandoned the test: the site's touchdown budget
    /// expired before this search could run.
    TimedOut,
    /// The site's health circuit breaker was open: the test was never
    /// measured because the site had been quarantined wholesale.
    SiteBreaker,
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            QuarantineReason::Dropout => "dropout",
            QuarantineReason::Unconverged => "unconverged",
            QuarantineReason::InconsistentTrace => "inconsistent trace",
            QuarantineReason::TimedOut => "timed out",
            QuarantineReason::SiteBreaker => "site breaker",
        })
    }
}

/// Per-test measurement health in a DSV campaign.
///
/// A faulty tester session no longer panics a campaign or silently poisons
/// eq. 1: every test records how its trip point was obtained, and
/// quarantined tests are excluded from the worst-case extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TripStatus {
    /// The search converged with no recovery action.
    Clean,
    /// The search converged, but only after the recovery ladder stepped in.
    Recovered {
        /// Strobes the retry ladder re-issued.
        retries: u64,
        /// Whether the full-range re-bracketing fallback produced the
        /// trip point after the STP walk failed.
        rebracketed: bool,
    },
    /// No trustworthy trip point: the entry carries no value and is
    /// excluded from the eq. 1 extraction.
    Quarantined {
        /// Why the point was excluded.
        reason: QuarantineReason,
    },
}

impl TripStatus {
    /// Whether this entry was excluded from the DSV.
    pub fn is_quarantined(&self) -> bool {
        matches!(self, TripStatus::Quarantined { .. })
    }

    /// Whether this entry needed retries or re-bracketing to converge.
    pub fn is_recovered(&self) -> bool {
        matches!(self, TripStatus::Recovered { .. })
    }
}

impl fmt::Display for TripStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TripStatus::Clean => f.write_str("clean"),
            TripStatus::Recovered { retries, rebracketed } => {
                write!(f, "recovered ({retries} retries")?;
                if *rebracketed {
                    f.write_str(", rebracketed")?;
                }
                f.write_str(")")
            }
            TripStatus::Quarantined { reason } => write!(f, "quarantined ({reason})"),
        }
    }
}

/// One test's entry in the DSV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DsvEntry {
    /// Name of the test.
    pub test_name: String,
    /// The measured trip point. `None` whenever the entry is quarantined,
    /// so eq. 1 extraction excludes it automatically.
    pub trip_point: Option<f64>,
    /// Measurements this test's search consumed.
    pub measurements: u64,
    /// How the trip point was obtained (or why it is missing).
    pub status: TripStatus,
}

/// A streamed per-test outcome: everything a [`DsvEntry`] records except
/// the test's name — streaming consumers carry the test *index* instead,
/// so handing one over allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct StreamedEntry {
    /// The measured trip point (`None` when quarantined).
    pub trip_point: Option<f64>,
    /// Measurements this test's search consumed.
    pub measurements: u64,
    /// How the trip point was obtained (or why it is missing).
    pub status: TripStatus,
}

/// The design-specification-value set of eq. 1 plus cost accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DsvReport {
    /// Parameter that was characterized.
    pub param: MeasuredParam,
    /// Strategy used.
    pub strategy: SearchStrategy,
    /// The reference trip point (the first converged trip point; with RTP
    /// refresh enabled, the most recently re-anchored one).
    pub reference_trip_point: Option<f64>,
    /// Per-test results, in execution order.
    pub entries: Vec<DsvEntry>,
    /// Total measurements across all searches.
    pub total_measurements: u64,
}

impl DsvReport {
    /// Converged trip points in execution order.
    pub fn trip_points(&self) -> Vec<f64> {
        self.entries.iter().filter_map(|e| e.trip_point).collect()
    }

    /// Smallest trip point (the §6 worst case for minimization).
    pub fn min(&self) -> Option<f64> {
        self.trip_points().into_iter().min_by(f64::total_cmp)
    }

    /// Largest trip point.
    pub fn max(&self) -> Option<f64> {
        self.trip_points().into_iter().max_by(f64::total_cmp)
    }

    /// The worst-case trip-point variation band (fig. 2): `max − min`.
    pub fn spread(&self) -> Option<f64> {
        match (self.min(), self.max()) {
            (Some(lo), Some(hi)) => Some(hi - lo),
            _ => None,
        }
    }

    /// Mean of converged trip points.
    pub fn mean(&self) -> Option<f64> {
        let tps = self.trip_points();
        if tps.is_empty() {
            return None;
        }
        Some(tps.iter().sum::<f64>() / tps.len() as f64)
    }

    /// Sample standard deviation of converged trip points.
    pub fn std_dev(&self) -> Option<f64> {
        let tps = self.trip_points();
        if tps.len() < 2 {
            return None;
        }
        let mean = self.mean().expect("non-empty");
        let var = tps.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / (tps.len() - 1) as f64;
        Some(var.sqrt())
    }

    /// Mean measurements per test — fig. 3's cost axis.
    pub fn mean_measurements_per_test(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.total_measurements as f64 / self.entries.len() as f64
    }

    /// Entries quarantined out of the DSV.
    pub fn quarantined(&self) -> usize {
        self.entries.iter().filter(|e| e.status.is_quarantined()).count()
    }

    /// Entries that converged only through retries or re-bracketing.
    pub fn recovered(&self) -> usize {
        self.entries.iter().filter(|e| e.status.is_recovered()).count()
    }

    /// The quarantined entries, in execution order.
    pub fn quarantined_entries(&self) -> Vec<&DsvEntry> {
        self.entries.iter().filter(|e| e.status.is_quarantined()).collect()
    }

    /// The entry with the smallest trip point, if any converged.
    pub fn worst_entry(&self) -> Option<&DsvEntry> {
        self.entries
            .iter()
            .filter(|e| e.trip_point.is_some())
            .min_by(|a, b| {
                a.trip_point
                    .expect("filtered")
                    .total_cmp(&b.trip_point.expect("filtered"))
            })
    }
}

impl fmt::Display for DsvReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DSV over {} tests: [{:.3}, {:.3}] spread {:.3}, {:.1} measurements/test",
            self.entries.len(),
            self.min().unwrap_or(f64::NAN),
            self.max().unwrap_or(f64::NAN),
            self.spread().unwrap_or(f64::NAN),
            self.mean_measurements_per_test(),
        )?;
        let (recovered, quarantined) = (self.recovered(), self.quarantined());
        if recovered > 0 || quarantined > 0 {
            write!(f, " ({recovered} recovered, {quarantined} quarantined)")?;
        }
        Ok(())
    }
}

/// Runs multiple-trip-point characterization over a set of tests.
///
/// # Examples
///
/// ```
/// use cichar_ate::{Ate, MeasuredParam};
/// use cichar_core::dsv::{MultiTripRunner, SearchStrategy};
/// use cichar_dut::MemoryDevice;
/// use cichar_patterns::{march, Test};
///
/// let mut ate = Ate::noiseless(MemoryDevice::nominal());
/// let tests: Vec<Test> = cichar_patterns::march::standard_suite()
///     .into_iter()
///     .map(|(name, p)| Test::deterministic(name, p))
///     .collect();
/// let runner = MultiTripRunner::new(MeasuredParam::DataValidTime);
/// let report = runner.run(&mut ate, &tests, SearchStrategy::SearchUntilTrip);
/// assert_eq!(report.entries.len(), 8);
/// assert!(report.spread().expect("converged") > 0.0, "trip point is test dependent");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiTripRunner {
    param: MeasuredParam,
    refine: bool,
    rtp_refresh: Option<usize>,
    recovery: Option<RetryPolicy>,
    speculative: bool,
}

impl MultiTripRunner {
    /// Creates a runner for a parameter, with STP refinement enabled (the
    /// measured trip points then carry full search resolution).
    pub fn new(param: MeasuredParam) -> Self {
        Self {
            param,
            refine: true,
            rtp_refresh: None,
            recovery: None,
            speculative: false,
        }
    }

    /// Enables speculative bisection on the full-range searches: both
    /// children of the next level are pre-issued alongside each midpoint
    /// as one batch, and the unused half is discarded. Trip points are
    /// bit-identical; the ledger marks the discarded probes speculative so
    /// eq. 1 accounting stays honest.
    pub fn with_speculation(mut self) -> Self {
        self.speculative = true;
        self
    }

    /// Disables STP bisection refinement — the raw §4 algorithm.
    pub fn without_refinement(mut self) -> Self {
        self.refine = false;
        self
    }

    /// Re-establishes the reference trip point with a fresh full-range
    /// search every `every` tests. Long sessions drift (§1's device
    /// heating); a stale reference slowly inflates STP walk lengths, and a
    /// periodic refresh keeps the reference tracking the drifted device.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn with_rtp_refresh(mut self, every: usize) -> Self {
        assert!(every > 0, "refresh interval must be positive");
        self.rtp_refresh = Some(every);
        self
    }

    /// Enables the fault-tolerant measurement ladder: every strobe runs
    /// through a [`cichar_search::RobustOracle`] applying `policy`'s
    /// retries, backoff and voting; STP walks that fail or produce an
    /// inconsistent trace re-bracket with a fresh full-range search (which
    /// also refreshes the reference trip point on the sequential path);
    /// and tests that still cannot yield a trustworthy trip point are
    /// quarantined instead of poisoning the DSV.
    pub fn with_recovery(mut self, policy: RetryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// The active recovery policy, if fault tolerance is enabled.
    pub fn recovery(&self) -> Option<RetryPolicy> {
        self.recovery
    }

    /// The characterized parameter.
    pub fn param(&self) -> MeasuredParam {
        self.param
    }

    /// The eq. 2 full-range search and the eq. 3/4 STP wrapped with its
    /// re-bracketing fallback, as configured for this runner.
    fn searches(&self) -> (SuccessiveApproximation, RebracketingStp) {
        let param = self.param;
        let mut full = SuccessiveApproximation::new(param.generous_range(), param.resolution());
        if self.speculative {
            full = full.with_speculation();
        }
        let mut stp = SearchUntilTrip::new(param.generous_range(), param.search_factor());
        if self.refine {
            stp = stp.with_refinement(param.resolution());
        }
        (full.clone(), RebracketingStp::new(stp, full))
    }

    /// One test's trip-point search on `ate`, with the configured recovery
    /// ladder. `reference = None` runs eq. 2 full-range; otherwise the STP
    /// walk (re-bracketing when recovery is on). Both [`Self::run`] and
    /// [`Self::run_parallel`] go through this single path so sequential
    /// and parallel campaigns classify faults identically.
    fn measure_one(
        &self,
        ate: &mut Ate,
        test: &Test,
        reference: Option<f64>,
        full: &SuccessiveApproximation,
        rebracket: &RebracketingStp,
        span: &SpanTrace,
    ) -> Measured {
        measure_with_recovery(
            ate,
            test,
            self.param,
            reference,
            full,
            rebracket,
            self.recovery,
            span,
        )
    }

    /// Runs the characterization, consuming measurements from `ate`.
    pub fn run(&self, ate: &mut Ate, tests: &[Test], strategy: SearchStrategy) -> DsvReport {
        self.run_inner(ate, tests, strategy, |_| SpanTrace::disabled(), |_| {})
    }

    /// [`run`](Self::run) with per-test spans recorded into `tracer`.
    ///
    /// Each test gets a span keyed by its input index; the span is
    /// absorbed (sequenced into the sink) as soon as the test's search
    /// completes, so the sequential event stream is ordered by test index
    /// by construction.
    pub fn run_traced(
        &self,
        ate: &mut Ate,
        tests: &[Test],
        strategy: SearchStrategy,
        tracer: &Tracer,
    ) -> DsvReport {
        self.run_inner(
            ate,
            tests,
            strategy,
            |index| tracer.span(index as u64),
            |span| tracer.absorb(span),
        )
    }

    /// [`run`](Self::run) with every test's events recorded into one
    /// caller-owned span — used by per-die characterization, where the
    /// span identifies the die rather than the test.
    pub(crate) fn run_in_span(
        &self,
        ate: &mut Ate,
        tests: &[Test],
        strategy: SearchStrategy,
        span: &SpanTrace,
    ) -> DsvReport {
        self.run_inner(ate, tests, strategy, |_| span.clone(), |_| {})
    }

    /// [`run_in_span`](Self::run_in_span) without materializing a
    /// [`DsvReport`]: each test's outcome streams to `sink` (keyed by test
    /// index) as its search completes. This is the wafer engine's hot
    /// path — it shares [`Self::fold_inner`] with the report-building
    /// runs, so every entry is classified identically either way; only
    /// the packaging differs. No per-entry name strings, no entries
    /// vector — the caller owns whatever it accumulates.
    ///
    /// `deadline_us` arms the stall watchdog: it caps the session's total
    /// **simulated** tester time. Once the ledger crosses the budget,
    /// every remaining test is quarantined as
    /// [`QuarantineReason::TimedOut`] (ledgered as a timeout plus a
    /// quarantine, with a `Quarantined` trace event) instead of being
    /// measured. Simulated time makes the watchdog deterministic: whether
    /// it fires is a pure function of the seeded campaign, never of host
    /// scheduling.
    pub(crate) fn run_fold(
        &self,
        ate: &mut Ate,
        tests: &[Test],
        strategy: SearchStrategy,
        span: &SpanTrace,
        deadline_us: Option<f64>,
        sink: impl FnMut(usize, StreamedEntry),
    ) {
        self.fold_inner(ate, tests, strategy, |_| span.clone(), |_| {}, deadline_us, sink);
    }

    /// The single sequential campaign body, packaged as a report.
    /// `with_span` produces the span a test's search reports into; `done`
    /// disposes of it afterwards (absorbing it into a tracer, or nothing
    /// for shared/disabled spans).
    fn run_inner(
        &self,
        ate: &mut Ate,
        tests: &[Test],
        strategy: SearchStrategy,
        with_span: impl FnMut(usize) -> SpanTrace,
        done: impl FnMut(SpanTrace),
    ) -> DsvReport {
        let mut entries = Vec::with_capacity(tests.len());
        let mut total = 0u64;
        let rtp = self.fold_inner(ate, tests, strategy, with_span, done, None, |index, entry| {
            total += entry.measurements;
            entries.push(DsvEntry {
                test_name: tests[index].name().to_string(),
                trip_point: entry.trip_point,
                measurements: entry.measurements,
                status: entry.status,
            });
        });
        DsvReport {
            param: self.param,
            strategy,
            reference_trip_point: rtp,
            entries,
            total_measurements: total,
        }
    }

    /// The sequential campaign loop itself: per-test searches with the
    /// RTP refresh/re-anchor discipline, streaming each outcome to `sink`.
    /// Both the report-building and the wafer fold paths run exactly this
    /// code. Returns the final reference trip point.
    #[allow(clippy::too_many_arguments)]
    fn fold_inner(
        &self,
        ate: &mut Ate,
        tests: &[Test],
        strategy: SearchStrategy,
        mut with_span: impl FnMut(usize) -> SpanTrace,
        mut done: impl FnMut(SpanTrace),
        deadline_us: Option<f64>,
        mut sink: impl FnMut(usize, StreamedEntry),
    ) -> Option<f64> {
        let (full, rebracket) = self.searches();

        let mut rtp: Option<f64> = None;
        let mut expired = false;
        for (index, test) in tests.iter().enumerate() {
            // Stall watchdog: once the session's simulated tester time
            // crosses the budget, stop measuring — the remaining tests
            // are abandoned as timed out, not left to hang on a stalled
            // channel. The latch is one-way; time only moves forward.
            if let Some(budget_us) = deadline_us {
                expired = expired || ate.ledger().test_time_ms() * 1000.0 > budget_us;
            }
            if expired {
                let span = with_span(index);
                ate.time_out();
                span.emit_with(|| TraceEvent::Quarantined {
                    reason: QuarantineReason::TimedOut.to_string(),
                });
                span.mark_done();
                done(span);
                sink(
                    index,
                    StreamedEntry {
                        trip_point: None,
                        measurements: 0,
                        status: TripStatus::Quarantined {
                            reason: QuarantineReason::TimedOut,
                        },
                    },
                );
                continue;
            }
            // Periodic reference refresh: drop the stale RTP so the next
            // search runs full-range and re-anchors the reference.
            if let Some(every) = self.rtp_refresh {
                if index > 0 && index % every == 0 {
                    rtp = None;
                }
            }
            let baseline = *ate.ledger();
            // Eq. 2 for the first (or any un-referenced) test, eqs. 3–4
            // around the RTP for the rest.
            let reference = match strategy {
                SearchStrategy::FullRange => None,
                SearchStrategy::SearchUntilTrip => rtp,
            };
            let span = with_span(index);
            let measured = self.measure_one(ate, test, reference, &full, &rebracket, &span);
            span.mark_done();
            done(span);
            let measurements = ate.ledger().measurements_since(&baseline);
            if strategy == SearchStrategy::SearchUntilTrip {
                if let Some(fresh) = measured.refreshed_reference {
                    // Re-bracketing already paid for a full search; its
                    // trip point re-anchors the reference (sequential runs
                    // only — the parallel fan-out must stay index-pure).
                    rtp = Some(fresh);
                } else if rtp.is_none() {
                    rtp = measured.trip_point;
                }
            }
            sink(
                index,
                StreamedEntry {
                    trip_point: measured.trip_point,
                    measurements,
                    status: measured.status,
                },
            );
        }
        rtp
    }

    /// Runs the characterization across worker threads, spawning one
    /// deterministic tester session per test from `blueprint`.
    ///
    /// Results and ledgers are merged **by test index**, and each test's
    /// session seed is derived from (campaign seed, test index), so the
    /// report is bit-identical for every thread count — including
    /// [`ExecPolicy::serial`], which executes the same schedule inline.
    /// For a noiseless, drift-free blueprint the report also matches
    /// [`MultiTripRunner::run`] on a single shared session exactly: with
    /// zero noise the session RNG is never consumed, and without drift a
    /// verdict does not depend on previously applied cycles, so splitting
    /// the session per test changes no verdict.
    ///
    /// The reference trip point keeps its eq. 2 data dependence: the head
    /// of each refresh window runs full-range searches sequentially until
    /// one converges and anchors the reference, and only the anchored
    /// remainder of the window fans out.
    ///
    /// Returns the report plus the merged measurement ledger (per-test
    /// session ledgers folded in index order).
    pub fn run_parallel(
        &self,
        blueprint: &ParallelAte,
        tests: &[Test],
        strategy: SearchStrategy,
        policy: ExecPolicy,
    ) -> (DsvReport, MeasurementLedger) {
        self.run_parallel_traced(blueprint, tests, strategy, policy, &Tracer::disabled())
    }

    /// [`run_parallel`](Self::run_parallel) with per-test spans recorded
    /// into `tracer`.
    ///
    /// Workers fill their test's span privately; the coordinator absorbs
    /// spans at the same index-ordered merge points where entries and
    /// ledgers fold in. The sequenced event stream (and the metrics
    /// derived from it) is therefore identical for every thread count.
    pub fn run_parallel_traced(
        &self,
        blueprint: &ParallelAte,
        tests: &[Test],
        strategy: SearchStrategy,
        policy: ExecPolicy,
        tracer: &Tracer,
    ) -> (DsvReport, MeasurementLedger) {
        self.run_parallel_observed(
            blueprint,
            tests,
            strategy,
            policy,
            tracer,
            &Telemetry::disabled(),
        )
    }

    /// [`run_parallel_traced`](Self::run_parallel_traced) with live
    /// telemetry: the coordinator offers a progress sample after every
    /// index-ordered merge, so heartbeat cadence rides the same
    /// deterministic fold points as span absorption. Telemetry lives in a
    /// parameter — not a runner field — because the wafer journal
    /// fingerprint embeds this runner's `Debug` output.
    pub fn run_parallel_observed(
        &self,
        blueprint: &ParallelAte,
        tests: &[Test],
        strategy: SearchStrategy,
        policy: ExecPolicy,
        tracer: &Tracer,
        telemetry: &Telemetry,
    ) -> (DsvReport, MeasurementLedger) {
        let param = self.param;
        let (full, rebracket) = self.searches();

        // One test on its own derived-seed session; the session's ledger
        // is the per-test cost record. Fan-out workers run the same
        // recovery ladder as the sequential path, but a re-bracketed
        // fallback never updates the shared reference: the anchor must
        // stay a pure function of the schedule, not of which worker
        // finished first.
        let probe_one = |index: usize, test: &Test, reference: Option<f64>| {
            let span = tracer.span(index as u64);
            let mut session = blueprint.session(index as u64);
            let measured =
                self.measure_one(&mut session, test, reference, &full, &rebracket, &span);
            // Stamp the span's wall clock on the worker, so a timing
            // sidecar measures the search itself, not absorb latency.
            span.mark_done();
            let entry = DsvEntry {
                test_name: test.name().to_string(),
                trip_point: measured.trip_point,
                measurements: session.ledger().measurements(),
                status: measured.status,
            };
            (entry, *session.ledger(), span)
        };

        let mut entries = Vec::with_capacity(tests.len());
        let mut ledger = MeasurementLedger::new();
        let mut rtp: Option<f64> = None;

        if strategy == SearchStrategy::FullRange {
            // Every search is independent: fan out the whole batch.
            for (entry, session_ledger, span) in
                cichar_exec::par_map_ref(policy, tests, |i, test| probe_one(i, test, None))
            {
                ledger.merge(&session_ledger);
                tracer.absorb(span);
                entries.push(entry);
                telemetry.tick(|| {
                    Progress::units(
                        "dsv",
                        (ledger.test_time_ms() * 1000.0) as u64,
                        entries.len() as u64,
                        tests.len() as u64,
                    )
                });
            }
        } else {
            let window = self.rtp_refresh.unwrap_or(tests.len().max(1));
            let mut start = 0;
            while start < tests.len() {
                let end = (start + window).min(tests.len());
                // Anchor sequentially: full-range searches until one
                // converges (normally just the window's first test).
                let mut anchor: Option<f64> = None;
                let mut cursor = start;
                while cursor < end && anchor.is_none() {
                    let (entry, session_ledger, span) = probe_one(cursor, &tests[cursor], None);
                    anchor = entry.trip_point;
                    ledger.merge(&session_ledger);
                    tracer.absorb(span);
                    entries.push(entry);
                    telemetry.tick(|| {
                        Progress::units(
                            "dsv",
                            (ledger.test_time_ms() * 1000.0) as u64,
                            entries.len() as u64,
                            tests.len() as u64,
                        )
                    });
                    cursor += 1;
                }
                // Fan out the anchored remainder of the window.
                for (entry, session_ledger, span) in
                    cichar_exec::par_map_ref(policy, &tests[cursor..end], |i, test| {
                        probe_one(cursor + i, test, anchor)
                    })
                {
                    ledger.merge(&session_ledger);
                    tracer.absorb(span);
                    entries.push(entry);
                    telemetry.tick(|| {
                        Progress::units(
                            "dsv",
                            (ledger.test_time_ms() * 1000.0) as u64,
                            entries.len() as u64,
                            tests.len() as u64,
                        )
                    });
                }
                rtp = anchor;
                start = end;
            }
        }

        let total = entries.iter().map(|e| e.measurements).sum();
        (
            DsvReport {
                param,
                strategy,
                reference_trip_point: rtp,
                entries,
                total_measurements: total,
            },
            ledger,
        )
    }

    /// [`run_parallel`](Self::run_parallel) with *predicted warm starts*:
    /// each fanned-out test seeds its STP walk from `planner.plan` over
    /// the test's own committee prediction, falling back to the
    /// sequentially-anchored reference trip point when the prediction is
    /// missing or untrusted (and, under recovery, to a full-range
    /// re-bracket when even the seed turns out wrong — so trip points
    /// never depend on prediction quality, only the probe bill does).
    ///
    /// `predictions[i]` belongs to `tests[i]`; the anchor head of each
    /// refresh window still runs eq. 2 full-range, exactly as
    /// [`Self::run_parallel`], so the fallback reference exists before any
    /// fan-out.
    ///
    /// # Panics
    ///
    /// Panics when `predictions` is not one slot per test.
    pub fn run_parallel_warm(
        &self,
        blueprint: &ParallelAte,
        tests: &[Test],
        predictions: &[Option<TripPrediction>],
        planner: &WarmStartPlanner,
        policy: ExecPolicy,
    ) -> (DsvReport, MeasurementLedger) {
        self.run_parallel_warm_traced(
            blueprint,
            tests,
            predictions,
            planner,
            policy,
            &Tracer::disabled(),
        )
    }

    /// [`run_parallel_warm`](Self::run_parallel_warm) with per-test spans
    /// recorded into `tracer`, under the same index-ordered absorption
    /// contract as [`Self::run_parallel_traced`].
    ///
    /// # Panics
    ///
    /// Panics when `predictions` is not one slot per test.
    pub fn run_parallel_warm_traced(
        &self,
        blueprint: &ParallelAte,
        tests: &[Test],
        predictions: &[Option<TripPrediction>],
        planner: &WarmStartPlanner,
        policy: ExecPolicy,
        tracer: &Tracer,
    ) -> (DsvReport, MeasurementLedger) {
        assert_eq!(
            tests.len(),
            predictions.len(),
            "one prediction slot per test"
        );
        let param = self.param;
        let (full, rebracket) = self.searches();

        let probe_one = |index: usize, test: &Test, reference: Option<f64>| {
            let span = tracer.span(index as u64);
            let mut session = blueprint.session(index as u64);
            let measured =
                self.measure_one(&mut session, test, reference, &full, &rebracket, &span);
            span.mark_done();
            let entry = DsvEntry {
                test_name: test.name().to_string(),
                trip_point: measured.trip_point,
                measurements: session.ledger().measurements(),
                status: measured.status,
            };
            (entry, *session.ledger(), span)
        };

        let mut entries = Vec::with_capacity(tests.len());
        let mut ledger = MeasurementLedger::new();
        let mut rtp: Option<f64> = None;
        let window = self.rtp_refresh.unwrap_or(tests.len().max(1));
        let mut start = 0;
        while start < tests.len() {
            let end = (start + window).min(tests.len());
            // Anchor sequentially, as the plain parallel path does: the
            // warm-start ladder's final rung (the RTP) must exist before
            // any prediction can be distrusted in favour of it.
            let mut anchor: Option<f64> = None;
            let mut cursor = start;
            while cursor < end && anchor.is_none() {
                let (entry, session_ledger, span) = probe_one(cursor, &tests[cursor], None);
                anchor = entry.trip_point;
                ledger.merge(&session_ledger);
                tracer.absorb(span);
                entries.push(entry);
                cursor += 1;
            }
            // Fan out with per-test seeds: the planner picks prediction or
            // anchor per test, keeping the schedule index-pure.
            for (entry, session_ledger, span) in
                cichar_exec::par_map_ref(policy, &tests[cursor..end], |i, test| {
                    let index = cursor + i;
                    let warm =
                        planner.plan(predictions[index].as_ref(), anchor.expect("anchored"));
                    probe_one(index, test, Some(warm.reference))
                })
            {
                ledger.merge(&session_ledger);
                tracer.absorb(span);
                entries.push(entry);
            }
            rtp = anchor;
            start = end;
        }

        let total = entries.iter().map(|e| e.measurements).sum();
        (
            DsvReport {
                param,
                strategy: SearchStrategy::SearchUntilTrip,
                reference_trip_point: rtp,
                entries,
                total_measurements: total,
            },
            ledger,
        )
    }
}

/// The shared fault-tolerant search ladder: robust-oracle strobes,
/// re-bracketing fallback, trace-consistency screening, and quarantine
/// accounting. Every characterization path in this crate (DSV runs, GA
/// fitness evaluations, sample sweeps) measures through this single
/// function so faults are classified identically everywhere.
#[allow(clippy::too_many_arguments)]
pub(crate) fn measure_with_recovery(
    ate: &mut Ate,
    test: &Test,
    param: MeasuredParam,
    reference: Option<f64>,
    full: &SuccessiveApproximation,
    rebracket: &RebracketingStp,
    recovery: Option<RetryPolicy>,
    span: &SpanTrace,
) -> Measured {
    // Install the span on the tester for the duration of this measurement
    // so probe, fault and retry events report into it, then detach — the
    // tester outlives the span, and a stale span must never leak events
    // from a later test into an earlier test's stream.
    ate.set_trace(span.clone());
    let measured = measure_traced(ate, test, param, reference, full, rebracket, recovery, span);
    ate.set_trace(SpanTrace::disabled());
    measured
}

/// [`measure_with_recovery`] minus the span install/detach bracketing.
#[allow(clippy::too_many_arguments)]
fn measure_traced(
    ate: &mut Ate,
    test: &Test,
    param: MeasuredParam,
    reference: Option<f64>,
    full: &SuccessiveApproximation,
    rebracket: &RebracketingStp,
    recovery: Option<RetryPolicy>,
    span: &SpanTrace,
) -> Measured {
    let order = param.region_order();
    let Some(policy) = recovery else {
        // Raw path: no retries, no re-bracketing. Searches still abort
        // honestly on an unavailable verdict, and the entry records why
        // a trip point is missing.
        let outcome = match reference {
            None => full.run_traced(order, ate.trip_oracle(test, param), span),
            Some(r) => rebracket
                .stp()
                .run_traced(r, order, ate.trip_oracle(test, param), span),
        };
        let status = match outcome.trip_point {
            Some(_) => TripStatus::Clean,
            None => {
                ate.quarantine();
                let reason = if outcome.has_invalid() {
                    QuarantineReason::Dropout
                } else {
                    QuarantineReason::Unconverged
                };
                span.emit_with(|| TraceEvent::Quarantined {
                    reason: reason.to_string(),
                });
                TripStatus::Quarantined { reason }
            }
        };
        return Measured {
            trip_point: outcome.trip_point,
            status,
            refreshed_reference: None,
        };
    };

    let tolerance = rebracket.tolerance();
    let mut oracle = ate.robust_oracle(test, param, policy);
    let (outcome, rebracketed, consistent, refreshed) = match reference {
        None => {
            let outcome = full.run_traced(order, &mut oracle, span);
            let consistent = trace_is_consistent(&outcome.trace, order, tolerance);
            (outcome, false, consistent, None)
        }
        Some(r) => {
            let result = rebracket.run_traced(r, order, &mut oracle, span);
            let consistent =
                trace_is_consistent(result.authoritative_trace(), order, tolerance);
            // A converged fallback is a fresh eq. 2 anchor.
            let refreshed = if result.rebracketed {
                result.outcome.trip_point
            } else {
                None
            };
            (result.outcome, result.rebracketed, consistent, refreshed)
        }
    };
    let stats = oracle.into_stats();
    ate.absorb_recovery(&stats);

    if !outcome.converged {
        ate.quarantine();
        let reason = if outcome.has_invalid() {
            QuarantineReason::Dropout
        } else {
            QuarantineReason::Unconverged
        };
        span.emit_with(|| TraceEvent::Quarantined {
            reason: reason.to_string(),
        });
        return Measured {
            trip_point: None,
            status: TripStatus::Quarantined { reason },
            refreshed_reference: None,
        };
    }
    if !consistent {
        ate.quarantine();
        span.emit_with(|| TraceEvent::Quarantined {
            reason: QuarantineReason::InconsistentTrace.to_string(),
        });
        return Measured {
            trip_point: None,
            status: TripStatus::Quarantined {
                reason: QuarantineReason::InconsistentTrace,
            },
            refreshed_reference: None,
        };
    }
    let status = if stats.retries > 0 || rebracketed {
        TripStatus::Recovered {
            retries: stats.retries,
            rebracketed,
        }
    } else {
        TripStatus::Clean
    };
    Measured {
        trip_point: outcome.trip_point,
        status,
        refreshed_reference: refreshed,
    }
}

/// The product of one test's search: what lands in the [`DsvEntry`], plus
/// the fresh reference a re-bracketing fallback discovered (only the
/// sequential path may act on it).
pub(crate) struct Measured {
    pub(crate) trip_point: Option<f64>,
    pub(crate) status: TripStatus,
    pub(crate) refreshed_reference: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cichar_dut::MemoryDevice;
    use cichar_patterns::{march, random, ConditionSpace, TestConditions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn suite() -> Vec<Test> {
        march::standard_suite()
            .into_iter()
            .map(|(name, p)| Test::deterministic(name, p))
            .collect()
    }

    fn random_tests(n: usize) -> Vec<Test> {
        let mut rng = StdRng::seed_from_u64(21);
        (0..n)
            .map(|_| random::random_test_at(&mut rng, TestConditions::nominal()))
            .collect()
    }

    #[test]
    fn stp_converges_to_same_trip_points_as_full_search() {
        let tests = suite();
        let runner = MultiTripRunner::new(MeasuredParam::DataValidTime);
        let mut ate_a = Ate::noiseless(MemoryDevice::nominal());
        let full = runner.run(&mut ate_a, &tests, SearchStrategy::FullRange);
        let mut ate_b = Ate::noiseless(MemoryDevice::nominal());
        let stp = runner.run(&mut ate_b, &tests, SearchStrategy::SearchUntilTrip);
        for (a, b) in full.entries.iter().zip(&stp.entries) {
            let (ta, tb) = (
                a.trip_point.expect("full converges"),
                b.trip_point.expect("stp converges"),
            );
            assert!(
                (ta - tb).abs() <= 2.0 * MeasuredParam::DataValidTime.resolution(),
                "{}: {ta} vs {tb}",
                a.test_name
            );
        }
    }

    #[test]
    fn stp_costs_fewer_measurements_than_full_search() {
        // The fig. 3 claim, on a 30-test random batch.
        let tests = random_tests(30);
        let runner = MultiTripRunner::new(MeasuredParam::DataValidTime);
        let mut ate_a = Ate::noiseless(MemoryDevice::nominal());
        let full = runner.run(&mut ate_a, &tests, SearchStrategy::FullRange);
        let mut ate_b = Ate::noiseless(MemoryDevice::nominal());
        let stp = runner.run(&mut ate_b, &tests, SearchStrategy::SearchUntilTrip);
        assert!(
            (stp.total_measurements as f64) < 0.8 * full.total_measurements as f64,
            "stp {} vs full {}",
            stp.total_measurements,
            full.total_measurements
        );
    }

    #[test]
    fn trip_points_are_test_dependent() {
        let report = MultiTripRunner::new(MeasuredParam::DataValidTime).run(
            &mut Ate::noiseless(MemoryDevice::nominal()),
            &suite(),
            SearchStrategy::SearchUntilTrip,
        );
        assert!(report.spread().expect("converged") > 0.5, "{report}");
    }

    #[test]
    fn first_converged_trip_becomes_reference() {
        let report = MultiTripRunner::new(MeasuredParam::DataValidTime).run(
            &mut Ate::noiseless(MemoryDevice::nominal()),
            &suite(),
            SearchStrategy::SearchUntilTrip,
        );
        let first = report.entries[0].trip_point.expect("converges");
        assert_eq!(report.reference_trip_point, Some(first));
    }

    #[test]
    fn full_range_strategy_has_no_reference() {
        let report = MultiTripRunner::new(MeasuredParam::DataValidTime).run(
            &mut Ate::noiseless(MemoryDevice::nominal()),
            &suite()[..2],
            SearchStrategy::FullRange,
        );
        assert_eq!(report.reference_trip_point, None);
    }

    #[test]
    fn statistics_are_consistent() {
        let report = MultiTripRunner::new(MeasuredParam::DataValidTime).run(
            &mut Ate::noiseless(MemoryDevice::nominal()),
            &suite(),
            SearchStrategy::SearchUntilTrip,
        );
        let min = report.min().expect("converged");
        let max = report.max().expect("converged");
        let mean = report.mean().expect("converged");
        assert!(min <= mean && mean <= max);
        assert!(report.std_dev().expect("n >= 2") >= 0.0);
        assert_eq!(
            report.total_measurements,
            report.entries.iter().map(|e| e.measurements).sum::<u64>()
        );
    }

    #[test]
    fn worst_entry_is_minimum_trip_point() {
        let report = MultiTripRunner::new(MeasuredParam::DataValidTime).run(
            &mut Ate::noiseless(MemoryDevice::nominal()),
            &suite(),
            SearchStrategy::SearchUntilTrip,
        );
        let worst = report.worst_entry().expect("converged");
        assert_eq!(worst.trip_point, report.min());
    }

    #[test]
    fn works_for_eq4_parameter_too() {
        // Vdd_min characterization: pass region above the fail region.
        let report = MultiTripRunner::new(MeasuredParam::MinVoltage).run(
            &mut Ate::noiseless(MemoryDevice::nominal()),
            &suite(),
            SearchStrategy::SearchUntilTrip,
        );
        for entry in &report.entries {
            let tp = entry.trip_point.expect("converges");
            assert!((1.3..1.6).contains(&tp), "{}: {tp}", entry.test_name);
        }
    }

    #[test]
    fn random_condition_tests_widen_the_band() {
        // Fig. 2's point: non-deterministic tests (varying conditions too)
        // fluctuate the trip point far more than the deterministic suite.
        let mut rng = StdRng::seed_from_u64(33);
        let space = ConditionSpace::default();
        let tests: Vec<Test> = (0..20).map(|_| random::random_test(&mut rng, &space)).collect();
        let report = MultiTripRunner::new(MeasuredParam::DataValidTime).run(
            &mut Ate::noiseless(MemoryDevice::nominal()),
            &tests,
            SearchStrategy::SearchUntilTrip,
        );
        assert!(report.spread().expect("converged") > 3.0, "{report}");
    }

    #[test]
    fn rtp_refresh_tracks_a_drifting_session() {
        use cichar_ate::{AteConfig, DriftModel, NoiseModel};
        // Strong thermal drift: by the end of a 60-test session the die is
        // tens of degrees hotter and the true window has shrunk.
        let config = AteConfig {
            noise: NoiseModel::noiseless(),
            drift: DriftModel::new(60.0, 3e5),
            seed: 0,
            ..AteConfig::default()
        };
        let tests = random_tests(60);
        let stale = MultiTripRunner::new(MeasuredParam::DataValidTime).run(
            &mut Ate::with_config(MemoryDevice::nominal(), config.clone()),
            &tests,
            SearchStrategy::SearchUntilTrip,
        );
        let refreshed = MultiTripRunner::new(MeasuredParam::DataValidTime)
            .with_rtp_refresh(10)
            .run(
                &mut Ate::with_config(MemoryDevice::nominal(), config),
                &tests,
                SearchStrategy::SearchUntilTrip,
            );
        // Both converge on every test (STP's accelerating walk absorbs the
        // drift either way), but only the refreshed session's reference
        // tracks the heated device: it ends well below the cold reference.
        assert!(refreshed.entries.iter().all(|e| e.trip_point.is_some()));
        assert!(stale.entries.iter().all(|e| e.trip_point.is_some()));
        let cold_ref = stale.reference_trip_point.expect("converged");
        let tracked_ref = refreshed.reference_trip_point.expect("converged");
        assert!(
            tracked_ref < cold_ref - 0.3,
            "tracked {tracked_ref} must sit below cold {cold_ref}"
        );
        // And the refresh costs only a handful of extra full searches.
        let overhead =
            refreshed.total_measurements as f64 / stale.total_measurements as f64;
        assert!(overhead < 1.5, "refresh overhead {overhead}");
    }

    #[test]
    #[should_panic(expected = "refresh interval must be positive")]
    fn zero_refresh_interval_rejected() {
        let _ = MultiTripRunner::new(MeasuredParam::DataValidTime).with_rtp_refresh(0);
    }

    #[test]
    fn parallel_run_matches_sequential_on_noiseless_sessions() {
        use cichar_ate::{AteConfig, DriftModel, NoiseModel, ParallelAte};
        use cichar_exec::ExecPolicy;
        let config = AteConfig {
            noise: NoiseModel::noiseless(),
            drift: DriftModel::none(),
            seed: 11,
            ..AteConfig::default()
        };
        let tests = random_tests(24);
        for strategy in [SearchStrategy::FullRange, SearchStrategy::SearchUntilTrip] {
            let runner = MultiTripRunner::new(MeasuredParam::DataValidTime);
            let sequential = runner.run(
                &mut Ate::with_config(MemoryDevice::nominal(), config.clone()),
                &tests,
                strategy,
            );
            let blueprint = ParallelAte::new(MemoryDevice::nominal(), config.clone());
            let (parallel, _) =
                runner.run_parallel(&blueprint, &tests, strategy, ExecPolicy::with_threads(4));
            assert_eq!(parallel, sequential, "{strategy:?}");
        }
    }

    #[test]
    fn parallel_run_is_thread_count_invariant_even_with_noise() {
        use cichar_ate::{AteConfig, ParallelAte};
        use cichar_exec::ExecPolicy;
        // Default config is noisy: per-test derived seeds make the result a
        // pure function of the schedule, not of who ran what where.
        let blueprint =
            ParallelAte::new(MemoryDevice::nominal(), AteConfig { seed: 77, ..AteConfig::default() });
        let tests = random_tests(24);
        let runner = MultiTripRunner::new(MeasuredParam::DataValidTime).with_rtp_refresh(7);
        let run = |policy: ExecPolicy| {
            runner.run_parallel(&blueprint, &tests, SearchStrategy::SearchUntilTrip, policy)
        };
        let (serial_report, serial_ledger) = run(ExecPolicy::serial());
        let (wide_report, wide_ledger) = run(ExecPolicy::with_threads(8));
        assert_eq!(wide_report, serial_report);
        assert_eq!(wide_ledger, serial_ledger);
    }

    #[test]
    fn parallel_ledger_accounts_every_measurement() {
        use cichar_ate::{AteConfig, DriftModel, NoiseModel, ParallelAte};
        use cichar_exec::ExecPolicy;
        let config = AteConfig {
            noise: NoiseModel::noiseless(),
            drift: DriftModel::none(),
            seed: 5,
            ..AteConfig::default()
        };
        let blueprint = ParallelAte::new(MemoryDevice::nominal(), config);
        let tests = suite();
        let (report, ledger) = MultiTripRunner::new(MeasuredParam::DataValidTime).run_parallel(
            &blueprint,
            &tests,
            SearchStrategy::SearchUntilTrip,
            ExecPolicy::with_threads(4),
        );
        assert_eq!(ledger.measurements(), report.total_measurements);
        assert_eq!(
            report.total_measurements,
            report.entries.iter().map(|e| e.measurements).sum::<u64>()
        );
    }

    #[test]
    fn parallel_report_preserves_input_test_order() {
        use cichar_ate::{AteConfig, ParallelAte};
        use cichar_exec::ExecPolicy;
        let blueprint = ParallelAte::new(MemoryDevice::nominal(), AteConfig::default());
        let tests = suite();
        let (report, _) = MultiTripRunner::new(MeasuredParam::DataValidTime).run_parallel(
            &blueprint,
            &tests,
            SearchStrategy::FullRange,
            ExecPolicy::with_threads(8),
        );
        // Entries land by input index, never by worker completion order.
        let got: Vec<&str> = report.entries.iter().map(|e| e.test_name.as_str()).collect();
        let expected: Vec<&str> = tests.iter().map(|t| t.name()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn quarantined_points_never_reach_the_extremes() {
        use cichar_ate::{AteConfig, TesterFaultModel};
        // Brutal dropout rate with no recovery ladder: searches abort on
        // the first unavailable verdict and the entries quarantine.
        let config = AteConfig {
            faults: TesterFaultModel::transient(0.0, 0.25),
            seed: 9,
            ..AteConfig::default()
        };
        let mut ate = Ate::with_config(MemoryDevice::nominal(), config);
        let report = MultiTripRunner::new(MeasuredParam::DataValidTime).run(
            &mut ate,
            &suite(),
            SearchStrategy::SearchUntilTrip,
        );
        assert!(report.quarantined() > 0, "{report}");
        for entry in report.quarantined_entries() {
            assert_eq!(entry.trip_point, None, "{}", entry.test_name);
            assert_eq!(
                entry.status,
                TripStatus::Quarantined {
                    reason: QuarantineReason::Dropout
                }
            );
        }
        // Eq. 1 extraction only ever sees surviving entries.
        assert_eq!(
            report.trip_points().len(),
            report.entries.len() - report.quarantined()
        );
        // Every quarantine is accounted in the ledger.
        assert_eq!(ate.ledger().quarantined(), report.quarantined() as u64);
        assert!(ate.ledger().dropouts() > 0);
    }

    #[test]
    fn retry_ladder_rides_out_dropouts() {
        use cichar_ate::{AteConfig, NoiseModel, TesterFaultModel};
        // The same brutal dropout rate, now with bounded retries: every
        // verdict eventually resolves, and because dropouts hide but never
        // alter verdicts, the trip points match a fault-free session
        // exactly.
        let config = AteConfig {
            noise: NoiseModel::noiseless(),
            faults: TesterFaultModel::transient(0.0, 0.25),
            seed: 9,
            ..AteConfig::default()
        };
        let mut ate = Ate::with_config(MemoryDevice::nominal(), config);
        let runner = MultiTripRunner::new(MeasuredParam::DataValidTime)
            .with_recovery(RetryPolicy::new(8, 50.0));
        let report = runner.run(&mut ate, &suite(), SearchStrategy::SearchUntilTrip);
        assert_eq!(report.quarantined(), 0, "{report}");
        assert!(report.recovered() > 0, "25% dropouts must need retries");
        assert!(ate.ledger().retries() > 0);
        assert!(ate.ledger().backoff_time_us() > 0.0, "backoff settles in simulated time");

        let baseline = MultiTripRunner::new(MeasuredParam::DataValidTime).run(
            &mut Ate::noiseless(MemoryDevice::nominal()),
            &suite(),
            SearchStrategy::SearchUntilTrip,
        );
        for (faulty, clean) in report.entries.iter().zip(&baseline.entries) {
            assert_eq!(faulty.trip_point, clean.trip_point, "{}", faulty.test_name);
        }
    }

    #[test]
    fn rebracketing_recovers_aborted_stp_walks_and_reanchors() {
        use cichar_ate::{AteConfig, NoiseModel, TesterFaultModel};
        // Session aborts knock out bursts of 5 strobes — exactly one retry
        // ladder. The aborted probe exhausts its retries inside the burst
        // and stays unavailable, the STP walk dies, and the full-range
        // fallback re-brackets right after the burst clears; the fresh
        // trip point re-anchors the reference.
        let config = AteConfig {
            noise: NoiseModel::noiseless(),
            faults: TesterFaultModel::none().with_session_aborts(0.02, 5),
            seed: 5,
            ..AteConfig::default()
        };
        let mut ate = Ate::with_config(MemoryDevice::nominal(), config);
        let tests = random_tests(20);
        let runner = MultiTripRunner::new(MeasuredParam::DataValidTime)
            .with_recovery(RetryPolicy::new(4, 50.0));
        let report = runner.run(&mut ate, &tests, SearchStrategy::SearchUntilTrip);
        let rebracketed: Vec<&DsvEntry> = report
            .entries
            .iter()
            .filter(|e| matches!(e.status, TripStatus::Recovered { rebracketed: true, .. }))
            .collect();
        assert!(!rebracketed.is_empty(), "aborts must trigger re-bracketing: {report}");
        for entry in &rebracketed {
            assert!(entry.trip_point.is_some(), "{}", entry.test_name);
        }
        // The last fallback's trip point is the reference the run ended on.
        assert_eq!(
            report.reference_trip_point,
            rebracketed.last().expect("non-empty").trip_point
        );
        assert!(ate.ledger().aborts() > 0);
    }

    #[test]
    fn parallel_faulty_run_is_thread_count_invariant() {
        use cichar_ate::{AteConfig, ParallelAte, TesterFaultModel};
        use cichar_exec::ExecPolicy;
        // Fault injection and recovery live inside the per-test derived
        //-seed sessions, so a faulty campaign stays a pure function of the
        // schedule.
        let blueprint = ParallelAte::new(
            MemoryDevice::nominal(),
            AteConfig {
                faults: TesterFaultModel::transient(0.02, 0.01),
                seed: 99,
                ..AteConfig::default()
            },
        );
        let tests = random_tests(24);
        let runner = MultiTripRunner::new(MeasuredParam::DataValidTime)
            .with_recovery(RetryPolicy::new(3, 100.0).with_vote(2, 3));
        let run = |policy: ExecPolicy| {
            runner.run_parallel(&blueprint, &tests, SearchStrategy::SearchUntilTrip, policy)
        };
        let (serial_report, serial_ledger) = run(ExecPolicy::serial());
        let (wide_report, wide_ledger) = run(ExecPolicy::with_threads(8));
        assert_eq!(wide_report, serial_report);
        assert_eq!(wide_ledger, serial_ledger);
        // The merged ledger accounts the campaign's quarantines.
        assert_eq!(serial_ledger.quarantined(), serial_report.quarantined() as u64);
        assert!(serial_ledger.injected_faults() > 0);
    }

    #[test]
    fn speculative_runner_preserves_trip_points_and_marks_waste() {
        let tests = suite();
        let runner = MultiTripRunner::new(MeasuredParam::DataValidTime);
        let mut plain_ate = Ate::noiseless(MemoryDevice::nominal());
        let plain = runner.run(&mut plain_ate, &tests, SearchStrategy::FullRange);
        let mut spec_ate = Ate::noiseless(MemoryDevice::nominal());
        let spec = runner
            .clone()
            .with_speculation()
            .run(&mut spec_ate, &tests, SearchStrategy::FullRange);
        for (a, b) in plain.entries.iter().zip(&spec.entries) {
            assert_eq!(a.trip_point, b.trip_point, "{}", a.test_name);
        }
        let ledger = spec_ate.ledger();
        assert!(ledger.speculative_probes() > 0, "children were pre-issued");
        // The honest eq. 1 bill (speculation subtracted) undercuts the
        // plain bisection: resolved pending children replace every other
        // level's midpoint measurement (the un-speculated bracketing
        // probes keep the ratio above the asymptotic one half).
        assert!(
            ledger.non_speculative_measurements() < plain_ate.ledger().measurements() * 3 / 4,
            "honest {} vs plain {}",
            ledger.non_speculative_measurements(),
            plain_ate.ledger().measurements()
        );
    }

    fn perfect_predictions(report: &DsvReport) -> Vec<Option<cichar_search::TripPrediction>> {
        report
            .entries
            .iter()
            .map(|e| {
                e.trip_point.map(|tp| cichar_search::TripPrediction {
                    trip_point: tp,
                    spread: 0.05,
                })
            })
            .collect()
    }

    #[test]
    fn warm_starts_cut_probes_without_moving_trip_points() {
        use cichar_ate::{AteConfig, DriftModel, NoiseModel, ParallelAte};
        use cichar_exec::ExecPolicy;
        use cichar_search::WarmStartPlanner;
        let config = AteConfig {
            noise: NoiseModel::noiseless(),
            drift: DriftModel::none(),
            seed: 3,
            ..AteConfig::default()
        };
        let tests = random_tests(30);
        let param = MeasuredParam::DataValidTime;
        let runner = MultiTripRunner::new(param);
        let blueprint = ParallelAte::new(MemoryDevice::nominal(), config);
        let (stp, _) = runner.run_parallel(
            &blueprint,
            &tests,
            SearchStrategy::SearchUntilTrip,
            ExecPolicy::serial(),
        );
        let predictions = perfect_predictions(&stp);
        let planner = WarmStartPlanner::new(param.generous_range(), 1.0);
        let (warm, ledger) = runner.run_parallel_warm(
            &blueprint,
            &tests,
            &predictions,
            &planner,
            ExecPolicy::serial(),
        );
        for (a, b) in stp.entries.iter().zip(&warm.entries) {
            let (ta, tb) = (
                a.trip_point.expect("stp converges"),
                b.trip_point.expect("warm converges"),
            );
            assert!(
                (ta - tb).abs() <= 2.0 * param.resolution(),
                "{}: {ta} vs {tb}",
                a.test_name
            );
        }
        assert!(
            warm.total_measurements < stp.total_measurements,
            "warm {} must undercut rtp-seeded {}",
            warm.total_measurements,
            stp.total_measurements
        );
        assert_eq!(ledger.measurements(), warm.total_measurements);
    }

    #[test]
    fn untrusted_predictions_reduce_to_plain_stp() {
        use cichar_ate::{AteConfig, ParallelAte};
        use cichar_exec::ExecPolicy;
        use cichar_search::{TripPrediction, WarmStartPlanner};
        let blueprint = ParallelAte::new(
            MemoryDevice::nominal(),
            AteConfig {
                seed: 19,
                ..AteConfig::default()
            },
        );
        let tests = random_tests(16);
        let param = MeasuredParam::DataValidTime;
        let runner = MultiTripRunner::new(param).with_rtp_refresh(5);
        let (plain, plain_ledger) = runner.run_parallel(
            &blueprint,
            &tests,
            SearchStrategy::SearchUntilTrip,
            ExecPolicy::with_threads(4),
        );
        // Every prediction's vote scatter blows the trust band: the ladder
        // must land on the RTP rung for every test, reproducing the plain
        // campaign bit for bit.
        let wild: Vec<Option<TripPrediction>> = tests
            .iter()
            .map(|_| {
                Some(TripPrediction {
                    trip_point: 5.0,
                    spread: 50.0,
                })
            })
            .collect();
        let planner = WarmStartPlanner::new(param.generous_range(), 1.0);
        let (warm, warm_ledger) = runner.run_parallel_warm(
            &blueprint,
            &tests,
            &wild,
            &planner,
            ExecPolicy::with_threads(4),
        );
        assert_eq!(warm, plain);
        assert_eq!(warm_ledger, plain_ledger);
    }

    #[test]
    fn warm_run_is_thread_count_invariant() {
        use cichar_ate::{AteConfig, ParallelAte, TesterFaultModel};
        use cichar_exec::ExecPolicy;
        use cichar_search::{TripPrediction, WarmStartPlanner};
        // Noisy and faulty: the hardest determinism regime.
        let blueprint = ParallelAte::new(
            MemoryDevice::nominal(),
            AteConfig {
                faults: TesterFaultModel::transient(0.01, 0.01),
                seed: 41,
                ..AteConfig::default()
            },
        );
        let tests = random_tests(24);
        let param = MeasuredParam::DataValidTime;
        let runner = MultiTripRunner::new(param)
            .with_recovery(RetryPolicy::new(3, 100.0).with_vote(2, 3));
        let predictions: Vec<Option<TripPrediction>> = (0..tests.len())
            .map(|i| {
                (i % 2 == 0).then_some(TripPrediction {
                    trip_point: 29.0 + 0.1 * i as f64,
                    spread: 0.2,
                })
            })
            .collect();
        let planner = WarmStartPlanner::new(param.generous_range(), 1.0);
        let run = |policy: ExecPolicy| {
            runner.run_parallel_warm(&blueprint, &tests, &predictions, &planner, policy)
        };
        let (serial_report, serial_ledger) = run(ExecPolicy::serial());
        let (wide_report, wide_ledger) = run(ExecPolicy::with_threads(8));
        assert_eq!(wide_report, serial_report);
        assert_eq!(wide_ledger, serial_ledger);
    }

    #[test]
    #[should_panic(expected = "one prediction slot per test")]
    fn mismatched_prediction_slots_panic() {
        use cichar_ate::{AteConfig, ParallelAte};
        use cichar_exec::ExecPolicy;
        use cichar_search::WarmStartPlanner;
        let blueprint = ParallelAte::new(MemoryDevice::nominal(), AteConfig::default());
        let param = MeasuredParam::DataValidTime;
        let planner = WarmStartPlanner::new(param.generous_range(), 1.0);
        let _ = MultiTripRunner::new(param).run_parallel_warm(
            &blueprint,
            &suite(),
            &[None],
            &planner,
            ExecPolicy::serial(),
        );
    }

    #[test]
    fn display_summarizes_cost() {
        let report = MultiTripRunner::new(MeasuredParam::DataValidTime).run(
            &mut Ate::noiseless(MemoryDevice::nominal()),
            &suite()[..2],
            SearchStrategy::SearchUntilTrip,
        );
        assert!(report.to_string().contains("measurements/test"));
    }
}
