//! Wafer-scale streaming characterization: the ROADMAP's 10^5–10^6
//! (test, die) campaigns in bounded memory.
//!
//! A wafer run is organised the way real ATE organises it:
//!
//! * dies are grouped into **touchdowns** of `sites` dies, measured on a
//!   [`MultiSiteAte`] whose per-site sessions are seeded by *global die
//!   index* — so results are bit-identical across thread counts, site
//!   groupings and chunk sizes (a die's random streams depend only on its
//!   identity);
//! * touchdowns are dispatched in **chunks** through
//!   [`cichar_exec::par_map_ref`], and each chunk's entries are folded
//!   into an incremental [`TripAggregate`] (eq. 1 extrema bit-exact,
//!   percentiles sketch-bounded) and then dropped — peak memory holds one
//!   chunk, never the wafer;
//! * optionally every chunk **spills** its entries as an atomic JSONL
//!   artifact ([`db::save_jsonl`]), and a final compaction step merges the
//!   chunk files into one artifact plus a summary
//!   ([`db::save_artifact`]).
//!
//! Searches themselves reuse the exact [`MultiTripRunner`] ladder —
//! recovery, re-bracketing, quarantine classification — so a wafer entry
//! is classified identically to a bench-top entry.

use crate::db;
use crate::dsv::{MultiTripRunner, SearchStrategy, TripStatus};
use crate::stream::TripAggregate;
use cichar_ate::{Ate, AteConfig, MeasuredParam, MeasurementLedger, MultiSiteAte};
use cichar_dut::{Die, MemoryDevice};
use cichar_exec::ExecPolicy;
use cichar_patterns::{PatternFeatures, Test};
use cichar_search::RegionOrder;
use cichar_trace::{SpanTrace, Tracer};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::PathBuf;

/// Shape of a wafer campaign: touchdown width, dispatch chunking, sketch
/// resolution, and the optional spill destination.
#[derive(Debug, Clone, PartialEq)]
pub struct WaferConfig {
    /// Dies measured per touchdown (multi-site width). Grouping never
    /// changes results — only batching shape.
    pub sites: usize,
    /// Touchdowns dispatched per parallel chunk; one chunk of entries is
    /// the peak materialized memory.
    pub chunk_touchdowns: usize,
    /// Buckets of the percentile sketch over the parameter's generous
    /// range.
    pub sketch_buckets: usize,
    /// Whether each touchdown opens with one shared contact-check strobe
    /// per site (at the parameter's pass edge); an unavailable verdict
    /// counts as a contact fault. One strobe per die either way, so the
    /// check is invariant under site grouping.
    pub contact_check: bool,
    /// Directory for JSONL entry spills; `None` keeps only the aggregate.
    pub spill_dir: Option<PathBuf>,
}

impl Default for WaferConfig {
    fn default() -> Self {
        Self {
            sites: 4,
            chunk_touchdowns: 32,
            sketch_buckets: 256,
            contact_check: true,
            spill_dir: None,
        }
    }
}

/// One streamed (die, test) measurement record — the spill row. Compact
/// by design: test identity is an index into the campaign's test list,
/// not a per-entry name allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaferEntry {
    /// The die's serial id.
    pub die: u32,
    /// Index of the test in the campaign's test list.
    pub test: u32,
    /// The measured trip point (`None` when quarantined).
    pub trip_point: Option<f64>,
    /// How the trip point was obtained (or why it is missing).
    pub status: TripStatus,
}

/// Where the streamed entries went on disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpillManifest {
    /// Chunk files written before compaction.
    pub chunks: u64,
    /// Entries in the compacted artifact.
    pub entries: u64,
    /// Path of the compacted JSONL artifact.
    pub path: String,
}

/// The bounded-memory result of a wafer campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaferReport {
    /// The measured parameter.
    pub param: MeasuredParam,
    /// The per-test search strategy.
    pub strategy: SearchStrategy,
    /// Dies characterized.
    pub dies: u64,
    /// Tests per die.
    pub tests: u64,
    /// Touchdown width the campaign ran with.
    pub sites: u64,
    /// Touchdowns performed.
    pub touchdowns: u64,
    /// Sites whose contact-check strobe returned no verdict.
    pub contact_faults: u64,
    /// The streaming eq. 1 aggregate over every (test, die) entry.
    pub aggregate: TripAggregate,
    /// Quarantined entries by site position within the touchdown — always
    /// sums to `aggregate.quarantined` (per-site accounting reconciles
    /// with the merged ledger by construction).
    pub per_site_quarantined: Vec<u64>,
    /// Total tester measurements across every site session.
    pub total_measurements: u64,
    /// The spill artifact, when the campaign spilled.
    pub spill: Option<SpillManifest>,
}

/// One touchdown's raw product, produced on a worker and folded by the
/// coordinator in touchdown order.
struct TouchdownOutcome {
    entries: Vec<WaferEntry>,
    ledgers: Vec<MeasurementLedger>,
    contact_faults: u64,
    spans: Vec<SpanTrace>,
}

/// Streaming wafer/lot characterization over the [`MultiTripRunner`]
/// search ladder.
///
/// # Examples
///
/// ```
/// use cichar_ate::{AteConfig, MeasuredParam};
/// use cichar_core::dsv::SearchStrategy;
/// use cichar_core::wafer::{WaferConfig, WaferRunner};
/// use cichar_dut::Lot;
/// use cichar_exec::ExecPolicy;
/// use cichar_patterns::{march, Test};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let dies = Lot::default().sample_dies(&mut rng, 8);
/// let tests = vec![Test::deterministic("march_x", march::march_x(96))];
/// let runner = WaferRunner::new(MeasuredParam::DataValidTime)
///     .with_config(WaferConfig { sites: 4, ..WaferConfig::default() });
/// let (report, ledger) = runner
///     .run(&AteConfig::default(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::serial())
///     .expect("no spill configured, no I/O to fail");
/// assert_eq!(report.dies, 8);
/// assert_eq!(ledger.measurements(), report.total_measurements);
/// ```
#[derive(Debug, Clone)]
pub struct WaferRunner {
    runner: MultiTripRunner,
    config: WaferConfig,
}

impl WaferRunner {
    /// A wafer runner measuring `param` with default search behaviour and
    /// wafer shape.
    pub fn new(param: MeasuredParam) -> Self {
        Self {
            runner: MultiTripRunner::new(param),
            config: WaferConfig::default(),
        }
    }

    /// Wraps an already-configured per-die search runner (speculation,
    /// refinement, RTP refresh, recovery — everything carries over).
    pub fn from_runner(runner: MultiTripRunner) -> Self {
        Self {
            runner,
            config: WaferConfig::default(),
        }
    }

    /// Replaces the wafer shape.
    pub fn with_config(mut self, config: WaferConfig) -> Self {
        self.config = config;
        self
    }

    /// Enables the fault-tolerant recovery ladder on every search.
    pub fn with_recovery(mut self, policy: cichar_search::RetryPolicy) -> Self {
        self.runner = self.runner.with_recovery(policy);
        self
    }

    /// The wafer shape.
    pub fn config(&self) -> &WaferConfig {
        &self.config
    }

    /// Characterizes `dies` × `tests`, streaming entries through the
    /// chunked aggregate. See [`Self::run_traced`].
    ///
    /// # Errors
    ///
    /// Propagates spill I/O errors (only possible with a spill directory
    /// configured).
    pub fn run(
        &self,
        ate_config: &AteConfig,
        dies: &[Die],
        tests: &[Test],
        strategy: SearchStrategy,
        policy: ExecPolicy,
    ) -> io::Result<(WaferReport, MeasurementLedger)> {
        self.run_traced(ate_config, dies, tests, strategy, policy, &Tracer::disabled())
    }

    /// [`Self::run`] with per-die spans recorded into `tracer` (span index
    /// = global die index, absorbed in die order — the event stream is
    /// identical for every thread count, chunk size and site grouping).
    ///
    /// Die `d`'s session seed is `derive_seed(ate_config.seed, d)`, so a
    /// die's verdict stream is a pure function of the campaign seed and
    /// its position in `dies` — never of scheduling, touchdown grouping
    /// or chunking.
    ///
    /// # Errors
    ///
    /// Propagates spill I/O errors.
    pub fn run_traced(
        &self,
        ate_config: &AteConfig,
        dies: &[Die],
        tests: &[Test],
        strategy: SearchStrategy,
        policy: ExecPolicy,
        tracer: &Tracer,
    ) -> io::Result<(WaferReport, MeasurementLedger)> {
        let sites = self.config.sites.max(1);
        let chunk_touchdowns = self.config.chunk_touchdowns.max(1);
        let param = self.runner.param();
        let range = param.generous_range();

        let mut aggregate = TripAggregate::new(range.start(), range.end(), self.config.sketch_buckets);
        let mut merged = MeasurementLedger::new();
        let mut per_site_quarantined = vec![0u64; sites.min(dies.len().max(1))];
        let mut contact_faults = 0u64;
        let mut spill_paths: Vec<PathBuf> = Vec::new();
        let mut spill_buffer: Vec<WaferEntry> = Vec::new();

        let touchdowns: Vec<&[Die]> = dies.chunks(sites).collect();
        let touchdown_count = touchdowns.len();

        for (chunk_index, chunk) in touchdowns.chunks(chunk_touchdowns).enumerate() {
            let first_touchdown = chunk_index * chunk_touchdowns;
            let outcomes = cichar_exec::par_map_ref(policy, chunk, |i, td_dies| {
                self.process_touchdown(
                    first_touchdown + i,
                    td_dies,
                    ate_config,
                    tests,
                    strategy,
                    tracer,
                )
            });

            // Fold in touchdown order: aggregates, ledgers, spans, spill.
            for outcome in outcomes {
                contact_faults += outcome.contact_faults;
                for span in outcome.spans {
                    tracer.absorb(span);
                }
                for (site, ledger) in outcome.ledgers.iter().enumerate() {
                    merged.merge(ledger);
                    per_site_quarantined[site] += ledger.quarantined();
                }
                for entry in &outcome.entries {
                    aggregate.observe(entry.trip_point, &entry.status);
                }
                if self.config.spill_dir.is_some() {
                    spill_buffer.extend(outcome.entries);
                }
            }
            if let Some(dir) = &self.config.spill_dir {
                let path = dir.join(format!("wafer_chunk_{chunk_index:05}.jsonl"));
                db::save_jsonl(&spill_buffer, &path)?;
                spill_paths.push(path);
                spill_buffer.clear();
            }
        }

        let spill = match &self.config.spill_dir {
            Some(dir) => {
                let dest = dir.join("wafer_entries.jsonl");
                db::compact_jsonl(&spill_paths, &dest)?;
                Some(SpillManifest {
                    chunks: spill_paths.len() as u64,
                    entries: aggregate.entries,
                    path: dest.display().to_string(),
                })
            }
            None => None,
        };

        let report = WaferReport {
            param,
            strategy,
            dies: dies.len() as u64,
            tests: tests.len() as u64,
            sites: sites as u64,
            touchdowns: touchdown_count as u64,
            contact_faults,
            aggregate,
            per_site_quarantined,
            total_measurements: merged.measurements(),
            spill,
        };
        if let Some(dir) = &self.config.spill_dir {
            db::save_artifact(&report, dir.join("wafer_summary.json"))?;
        }
        Ok((report, merged))
    }

    /// One touchdown: per-die sessions seeded by global die index, the
    /// shared contact-check strobe (one stress hoist across sites), then
    /// each site's per-test searches through the standard recovery ladder.
    fn process_touchdown(
        &self,
        touchdown: usize,
        td_dies: &[Die],
        ate_config: &AteConfig,
        tests: &[Test],
        strategy: SearchStrategy,
        tracer: &Tracer,
    ) -> TouchdownOutcome {
        let sites = self.config.sites.max(1);
        let first_die = touchdown * sites;
        let sessions: Vec<Ate> = td_dies
            .iter()
            .enumerate()
            .map(|(site, die)| {
                Ate::with_config(
                    MemoryDevice::new(*die),
                    AteConfig {
                        seed: cichar_exec::derive_seed(ate_config.seed, (first_die + site) as u64),
                        ..ate_config.clone()
                    },
                )
            })
            .collect();
        let mut touchdown_ate = MultiSiteAte::from_sessions(sessions);

        let mut contact_faults = 0u64;
        if self.config.contact_check {
            if let Some(test) = tests.first() {
                contact_faults = self.contact_check(&mut touchdown_ate, test);
            }
        }

        let mut entries = Vec::with_capacity(td_dies.len() * tests.len());
        let mut spans = Vec::with_capacity(td_dies.len());
        for site in 0..touchdown_ate.site_count() {
            let die_index = first_die + site;
            let die_id = touchdown_ate.site(site).device().die().id();
            let span = tracer.span(die_index as u64);
            // The fold path: entries stream straight into the touchdown
            // buffer — no per-die report, no per-entry name strings.
            self.runner.run_fold(
                touchdown_ate.site_mut(site),
                tests,
                strategy,
                &span,
                |test_index, e| {
                    entries.push(WaferEntry {
                        die: die_id,
                        test: test_index as u32,
                        trip_point: e.trip_point,
                        status: e.status,
                    });
                },
            );
            span.mark_done();
            spans.push(span);
        }

        let ledgers = touchdown_ate
            .into_sessions()
            .iter()
            .map(|s| *s.ledger())
            .collect();
        TouchdownOutcome {
            entries,
            ledgers,
            contact_faults,
            spans,
        }
    }

    /// The shared touchdown strobe: every site measures the first test at
    /// the parameter's pass edge in one batch (one stress-breakdown hoist
    /// across all sites). Returns how many sites answered with no verdict.
    fn contact_check(&self, touchdown_ate: &mut MultiSiteAte, test: &Test) -> u64 {
        let param = self.runner.param();
        let range = param.generous_range();
        let edge = match param.region_order() {
            RegionOrder::PassBelowFail => range.start(),
            RegionOrder::PassAboveFail => range.end(),
        };
        let pattern = test.pattern();
        let features = PatternFeatures::extract(&pattern);
        let mut forces = param.relax_forces().to_vec();
        forces.push((param.kind(), edge));
        let verdicts =
            touchdown_ate.measure_sites(&features, pattern.len() as u64, test, &forces);
        verdicts.iter().filter(|v| !v.is_valid()).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cichar_ate::{DriftModel, NoiseModel, TesterFaultModel};
    use cichar_dut::Lot;
    use cichar_patterns::{random, TestConditions};
    use cichar_search::RetryPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn harsh_config() -> AteConfig {
        AteConfig {
            noise: NoiseModel::new(0.03, 0.05, 0.005),
            drift: DriftModel::new(20.0, 1e5),
            faults: TesterFaultModel::transient(0.01, 0.02),
            seed: 0xD1E5,
        }
    }

    fn wafer(dies: usize, tests: usize) -> (Vec<Die>, Vec<Test>) {
        let mut rng = StdRng::seed_from_u64(0x57AF);
        let dies = Lot::default().sample_dies(&mut rng, dies);
        let tests = (0..tests)
            .map(|_| random::random_test_at(&mut rng, TestConditions::nominal()))
            .collect();
        (dies, tests)
    }

    fn runner(sites: usize, chunk: usize) -> WaferRunner {
        WaferRunner::new(MeasuredParam::DataValidTime)
            .with_recovery(RetryPolicy::new(3, 50.0))
            .with_config(WaferConfig {
                sites,
                chunk_touchdowns: chunk,
                sketch_buckets: 128,
                contact_check: true,
                spill_dir: None,
            })
    }

    #[test]
    fn reports_are_bit_identical_across_thread_counts() {
        let (dies, tests) = wafer(12, 5);
        let r = runner(4, 2);
        let serial = r
            .run(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::serial())
            .expect("no spill");
        for threads in [2, 8] {
            let parallel = r
                .run(
                    &harsh_config(),
                    &dies,
                    &tests,
                    SearchStrategy::SearchUntilTrip,
                    ExecPolicy::with_threads(threads),
                )
                .expect("no spill");
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn reports_are_invariant_under_chunk_size() {
        let (dies, tests) = wafer(10, 4);
        let base = runner(2, 1)
            .run(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::with_threads(4))
            .expect("no spill");
        for chunk in [3, 64] {
            let other = runner(2, chunk)
                .run(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::with_threads(4))
                .expect("no spill");
            assert_eq!(base, other, "chunk={chunk}");
        }
    }

    #[test]
    fn site_grouping_never_changes_results() {
        // sites=1 vs sites=4: different touchdown shapes, same per-die
        // streams — entries, aggregate, ledger and contact accounting all
        // agree.
        let (dies, tests) = wafer(8, 4);
        let spill_a = std::env::temp_dir().join("cichar_wafer_sites1");
        let spill_b = std::env::temp_dir().join("cichar_wafer_sites4");
        for dir in [&spill_a, &spill_b] {
            let _ = std::fs::remove_dir_all(dir);
            std::fs::create_dir_all(dir).expect("tmp dir");
        }
        let run = |sites: usize, dir: &std::path::Path| {
            let mut r = runner(sites, 2);
            r.config.spill_dir = Some(dir.to_path_buf());
            r.run(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::with_threads(4))
                .expect("spill dir writable")
        };
        let (one, ledger_one) = run(1, &spill_a);
        let (four, ledger_four) = run(4, &spill_b);

        assert_eq!(one.aggregate, four.aggregate);
        assert_eq!(one.contact_faults, four.contact_faults);
        assert_eq!(ledger_one, ledger_four);
        assert_eq!(
            one.per_site_quarantined.iter().sum::<u64>(),
            four.per_site_quarantined.iter().sum::<u64>()
        );
        let entries_one: Vec<WaferEntry> =
            db::load_jsonl(spill_a.join("wafer_entries.jsonl")).expect("compacted spill");
        let entries_four: Vec<WaferEntry> =
            db::load_jsonl(spill_b.join("wafer_entries.jsonl")).expect("compacted spill");
        assert_eq!(entries_one, entries_four);
        for dir in [&spill_a, &spill_b] {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn per_site_accounting_reconciles_with_merged_ledger() {
        let (dies, tests) = wafer(9, 4);
        // Heavier faults so quarantines actually occur.
        let config = AteConfig {
            faults: TesterFaultModel::transient(0.02, 0.25),
            ..harsh_config()
        };
        let r = WaferRunner::new(MeasuredParam::DataValidTime).with_config(WaferConfig {
            sites: 3,
            chunk_touchdowns: 2,
            ..WaferConfig::default()
        });
        let (report, ledger) = r
            .run(&config, &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::serial())
            .expect("no spill");
        assert!(report.aggregate.quarantined > 0, "fault rate high enough to quarantine");
        assert_eq!(
            report.per_site_quarantined.iter().sum::<u64>(),
            report.aggregate.quarantined,
            "per-site quarantines sum to the aggregate"
        );
        assert_eq!(ledger.quarantined(), report.aggregate.quarantined);
        assert_eq!(ledger.measurements(), report.total_measurements);
        assert_eq!(report.aggregate.entries, report.dies * report.tests);
    }

    #[test]
    fn wafer_entries_match_independent_per_die_runs() {
        // With the contact check off, each die's wafer stream is exactly
        // an independent MultiTripRunner campaign on a session seeded by
        // its global die index.
        let (dies, tests) = wafer(6, 4);
        let config = harsh_config();
        let mut r = runner(3, 2);
        r.config.contact_check = false;
        let (report, _) = r
            .run(&config, &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::with_threads(4))
            .expect("no spill");
        assert_eq!(report.aggregate.entries, 6 * 4);

        let mut reference = TripAggregate::new(
            MeasuredParam::DataValidTime.generous_range().start(),
            MeasuredParam::DataValidTime.generous_range().end(),
            128,
        );
        let per_die = MultiTripRunner::new(MeasuredParam::DataValidTime)
            .with_recovery(RetryPolicy::new(3, 50.0));
        for (die_index, die) in dies.iter().enumerate() {
            let mut session = Ate::with_config(
                MemoryDevice::new(*die),
                AteConfig {
                    seed: cichar_exec::derive_seed(config.seed, die_index as u64),
                    ..config.clone()
                },
            );
            let report = per_die.run(&mut session, &tests, SearchStrategy::SearchUntilTrip);
            for e in &report.entries {
                reference.observe(e.trip_point, &e.status);
            }
        }
        assert_eq!(report.aggregate, reference);
    }

    #[test]
    fn spill_compacts_chunks_and_writes_summary() {
        let (dies, tests) = wafer(6, 3);
        let dir = std::env::temp_dir().join("cichar_wafer_spill");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let mut r = runner(2, 1);
        r.config.spill_dir = Some(dir.clone());
        let (report, _) = r
            .run(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::serial())
            .expect("spill dir writable");

        let spill = report.spill.as_ref().expect("spill manifest");
        assert_eq!(spill.chunks, 3, "three chunks of one touchdown each");
        assert_eq!(spill.entries, 6 * 3);
        let entries: Vec<WaferEntry> = db::load_jsonl(&spill.path).expect("compacted artifact");
        assert_eq!(entries.len(), 18);
        // Chunk files are gone after compaction; the summary artifact parses.
        assert!(!dir.join("wafer_chunk_00000.jsonl").exists());
        let summary: WaferReport =
            db::load_artifact(dir.join("wafer_summary.json")).expect("summary");
        assert_eq!(summary, report);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
