//! Wafer-scale streaming characterization: the ROADMAP's 10^5–10^6
//! (test, die) campaigns in bounded memory.
//!
//! A wafer run is organised the way real ATE organises it:
//!
//! * dies are grouped into **touchdowns** of `sites` dies, measured on a
//!   [`MultiSiteAte`] whose per-site sessions are seeded by *global die
//!   index* — so results are bit-identical across thread counts, site
//!   groupings and chunk sizes (a die's random streams depend only on its
//!   identity);
//! * touchdowns are dispatched in **chunks** through
//!   [`cichar_exec::par_map_ref`], and each chunk's entries are folded
//!   into an incremental [`TripAggregate`] (eq. 1 extrema bit-exact,
//!   percentiles sketch-bounded) and then dropped — peak memory holds one
//!   chunk, never the wafer;
//! * optionally every chunk **spills** its entries as an atomic JSONL
//!   artifact ([`db::save_jsonl`]), and a final compaction step merges the
//!   chunk files into one artifact plus a summary
//!   ([`db::save_artifact`]);
//! * optionally every chunk is **journaled**
//!   ([`CampaignJournal`]): the chunk's touchdown products are committed
//!   as one atomic JSONL checkpoint, and [`WaferRunner::resume`] replays
//!   the committed prefix to reproduce an interrupted campaign
//!   bit-identically without re-measuring it.
//!
//! Searches themselves reuse the exact [`MultiTripRunner`] ladder —
//! recovery, re-bracketing, quarantine classification — so a wafer entry
//! is classified identically to a bench-top entry.
//!
//! Two self-healing guards ride the same chunk cadence. A **stall
//! watchdog** (`chunk_timeout_ms`) caps each site-touchdown's simulated
//! tester time; once a session blows the budget its remaining tests are
//! abandoned as [`QuarantineReason::TimedOut`] instead of hanging the
//! campaign. A **site health circuit breaker** (`site_fault_threshold`)
//! accumulates per-site injected-fault and timeout rates and latches open
//! at chunk boundaries ([`SiteHealthBreaker`]); an open site's remaining
//! touchdowns are skipped as [`QuarantineReason::SiteBreaker`] with full
//! ledger, trace and report accounting.

use crate::db;
use crate::dsv::{MultiTripRunner, QuarantineReason, SearchStrategy, TripStatus};
use crate::journal::{
    CampaignJournal, ChunkCommit, JournalMeta, JournalRecord, ResumeStats, TouchdownRecord,
    JOURNAL_VERSION,
};
use crate::stream::TripAggregate;
use cichar_ate::{
    Ate, AteConfig, MeasuredParam, MeasurementLedger, MultiSiteAte, SiteHealthBreaker,
    TesterFaultModel,
};
use cichar_dut::{Device, Die, MemoryDevice};
use cichar_exec::ExecPolicy;
use cichar_patterns::{PatternFeatures, Test};
use cichar_search::RegionOrder;
use cichar_trace::{Progress, SpanTrace, Telemetry, TraceEvent, Tracer};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::PathBuf;

/// Shape of a wafer campaign: touchdown width, dispatch chunking, sketch
/// resolution, the optional spill destination, and the durability /
/// self-healing knobs (journal, watchdog, circuit breaker).
#[derive(Debug, Clone, PartialEq)]
pub struct WaferConfig {
    /// Dies measured per touchdown (multi-site width). Grouping never
    /// changes results — only batching shape.
    pub sites: usize,
    /// Touchdowns dispatched per parallel chunk; one chunk of entries is
    /// the peak materialized memory.
    pub chunk_touchdowns: usize,
    /// Buckets of the percentile sketch over the parameter's generous
    /// range.
    pub sketch_buckets: usize,
    /// Whether each touchdown opens with one shared contact-check strobe
    /// per site (at the parameter's pass edge); an unavailable verdict
    /// counts as a contact fault. One strobe per die either way, so the
    /// check is invariant under site grouping.
    pub contact_check: bool,
    /// Directory for JSONL entry spills; `None` keeps only the aggregate.
    pub spill_dir: Option<PathBuf>,
    /// Directory of the crash-durable [`CampaignJournal`]; `None` runs
    /// without checkpoints.
    pub journal_dir: Option<PathBuf>,
    /// Stall-watchdog budget per (site, touchdown) in **simulated**
    /// milliseconds of tester time; `None` never times out. Simulated
    /// time keeps the watchdog deterministic.
    pub chunk_timeout_ms: Option<u64>,
    /// Rolling fault-rate threshold in `(0, 1]` at which a site's health
    /// breaker latches open ([`SiteHealthBreaker`]); `None` never
    /// quarantines a site.
    pub site_fault_threshold: Option<f64>,
    /// Per-site fault-model overrides (site position → model), for
    /// degraded-channel scenarios. Overriding a site ties results to the
    /// touchdown grouping — a die's fault stream then depends on which
    /// site it lands on.
    pub site_faults: Vec<(usize, TesterFaultModel)>,
}

impl Default for WaferConfig {
    fn default() -> Self {
        Self {
            sites: 4,
            chunk_touchdowns: 32,
            sketch_buckets: 256,
            contact_check: true,
            spill_dir: None,
            journal_dir: None,
            chunk_timeout_ms: None,
            site_fault_threshold: None,
            site_faults: Vec::new(),
        }
    }
}

/// One streamed (die, test) measurement record — the spill row. Compact
/// by design: test identity is an index into the campaign's test list,
/// not a per-entry name allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaferEntry {
    /// The die's serial id.
    pub die: u32,
    /// Index of the test in the campaign's test list.
    pub test: u32,
    /// The measured trip point (`None` when quarantined).
    pub trip_point: Option<f64>,
    /// How the trip point was obtained (or why it is missing).
    pub status: TripStatus,
}

/// Where the streamed entries went on disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpillManifest {
    /// Chunk files written before compaction.
    pub chunks: u64,
    /// Entries in the compacted artifact.
    pub entries: u64,
    /// Path of the compacted JSONL artifact.
    pub path: String,
}

/// The bounded-memory result of a wafer campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaferReport {
    /// The measured parameter.
    pub param: MeasuredParam,
    /// The per-test search strategy.
    pub strategy: SearchStrategy,
    /// Dies characterized.
    pub dies: u64,
    /// Tests per die.
    pub tests: u64,
    /// Touchdown width the campaign ran with.
    pub sites: u64,
    /// Touchdowns performed.
    pub touchdowns: u64,
    /// Sites whose contact-check strobe returned no verdict.
    pub contact_faults: u64,
    /// The streaming eq. 1 aggregate over every (test, die) entry.
    pub aggregate: TripAggregate,
    /// Quarantined entries by site position within the touchdown — always
    /// sums to `aggregate.quarantined` (per-site accounting reconciles
    /// with the merged ledger by construction).
    pub per_site_quarantined: Vec<u64>,
    /// Total tester measurements across every site session.
    pub total_measurements: u64,
    /// Tests abandoned by the stall watchdog across every session.
    #[serde(default)]
    pub timeouts: u64,
    /// Site positions latched open by the health circuit breaker,
    /// ascending.
    #[serde(default)]
    pub quarantined_sites: Vec<u64>,
    /// The spill artifact, when the campaign spilled.
    pub spill: Option<SpillManifest>,
}

/// One touchdown's raw product, produced on a worker and folded by the
/// coordinator in touchdown order.
struct TouchdownOutcome {
    entries: Vec<WaferEntry>,
    ledgers: Vec<MeasurementLedger>,
    contact_faults: u64,
    spans: Vec<SpanTrace>,
}

/// The coordinator's campaign-wide accumulation, shared verbatim between
/// the live fold and journal replay so a resumed campaign lands on bit
/// identical `f64` sums.
struct FoldState {
    aggregate: TripAggregate,
    merged: MeasurementLedger,
    per_site_quarantined: Vec<u64>,
    contact_faults: u64,
    timeouts: u64,
    breaker: Option<SiteHealthBreaker>,
}

/// Everything one campaign pass produces; trimmed by the public wrappers.
struct CampaignOutput {
    report: WaferReport,
    merged: MeasurementLedger,
    stats: ResumeStats,
    committed_chunks: u64,
}

/// Streaming wafer/lot characterization over the [`MultiTripRunner`]
/// search ladder.
///
/// # Examples
///
/// ```
/// use cichar_ate::{AteConfig, MeasuredParam};
/// use cichar_core::dsv::SearchStrategy;
/// use cichar_core::wafer::{WaferConfig, WaferRunner};
/// use cichar_dut::Lot;
/// use cichar_exec::ExecPolicy;
/// use cichar_patterns::{march, Test};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let dies = Lot::default().sample_dies(&mut rng, 8);
/// let tests = vec![Test::deterministic("march_x", march::march_x(96))];
/// let runner = WaferRunner::new(MeasuredParam::DataValidTime)
///     .with_config(WaferConfig { sites: 4, ..WaferConfig::default() });
/// let (report, ledger) = runner
///     .run(&AteConfig::default(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::serial())
///     .expect("no spill configured, no I/O to fail");
/// assert_eq!(report.dies, 8);
/// assert_eq!(ledger.measurements(), report.total_measurements);
/// ```
#[derive(Debug, Clone)]
pub struct WaferRunner {
    runner: MultiTripRunner,
    config: WaferConfig,
    /// The device prototype each touchdown session re-dies via
    /// [`Device::for_die`]. Defaults to the nominal `memory` backend,
    /// which keeps default campaigns bit-identical to the pre-registry
    /// engine.
    device: Device,
    /// The live-telemetry handle (disabled by default). Ticked only from
    /// the coordinator's fold loop — never from workers, never during
    /// journal replay — and deliberately kept off [`MultiTripRunner`],
    /// whose `Debug` output is part of the journal fingerprint.
    telemetry: Telemetry,
}

impl WaferRunner {
    /// A wafer runner measuring `param` with default search behaviour and
    /// wafer shape.
    pub fn new(param: MeasuredParam) -> Self {
        Self {
            runner: MultiTripRunner::new(param),
            config: WaferConfig::default(),
            device: MemoryDevice::nominal().into(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Wraps an already-configured per-die search runner (speculation,
    /// refinement, RTP refresh, recovery — everything carries over).
    pub fn from_runner(runner: MultiTripRunner) -> Self {
        Self {
            runner,
            config: WaferConfig::default(),
            device: MemoryDevice::nominal().into(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Replaces the wafer shape.
    pub fn with_config(mut self, config: WaferConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the device prototype the campaign characterizes. Every
    /// touchdown session is `device.for_die(die)`, so the backend's
    /// structure (netlist shape, surface constants, …) is shared across
    /// the wafer while each site carries its own die. The device enters
    /// the journal fingerprint: a journal recorded under one backend
    /// refuses to resume under another.
    pub fn with_device(mut self, device: impl Into<Device>) -> Self {
        self.device = device.into();
        self
    }

    /// The device prototype.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Arms live telemetry: the campaign's coordinator fold loop offers a
    /// progress sample to `telemetry` after every folded touchdown, and
    /// heartbeats fire on simulated-ledger-time deadlines. Telemetry is a
    /// sidecar — it never changes measurement behaviour, the journal
    /// fingerprint, or the normalized trace stream (alarm events
    /// excepted, and those occur only when telemetry is armed).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Enables the fault-tolerant recovery ladder on every search.
    pub fn with_recovery(mut self, policy: cichar_search::RetryPolicy) -> Self {
        self.runner = self.runner.with_recovery(policy);
        self
    }

    /// The wafer shape.
    pub fn config(&self) -> &WaferConfig {
        &self.config
    }

    /// Characterizes `dies` × `tests`, streaming entries through the
    /// chunked aggregate. See [`Self::run_traced`].
    ///
    /// # Errors
    ///
    /// Propagates spill and journal I/O errors (only possible with a
    /// spill or journal directory configured).
    pub fn run(
        &self,
        ate_config: &AteConfig,
        dies: &[Die],
        tests: &[Test],
        strategy: SearchStrategy,
        policy: ExecPolicy,
    ) -> io::Result<(WaferReport, MeasurementLedger)> {
        self.run_traced(ate_config, dies, tests, strategy, policy, &Tracer::disabled())
    }

    /// [`Self::run`] with per-die spans recorded into `tracer` (span index
    /// = global die index, absorbed in die order — the event stream is
    /// identical for every thread count, chunk size and site grouping).
    ///
    /// Die `d`'s session seed is `derive_seed(ate_config.seed, d)`, so a
    /// die's verdict stream is a pure function of the campaign seed and
    /// its position in `dies` — never of scheduling, touchdown grouping
    /// or chunking.
    ///
    /// With a `journal_dir` configured, every completed chunk is also
    /// committed to a fresh [`CampaignJournal`] so a crash mid-campaign
    /// can be [`Self::resume`]d. Journaling never changes measurement
    /// behaviour — only what lands on disk.
    ///
    /// # Errors
    ///
    /// Propagates spill and journal I/O errors.
    pub fn run_traced(
        &self,
        ate_config: &AteConfig,
        dies: &[Die],
        tests: &[Test],
        strategy: SearchStrategy,
        policy: ExecPolicy,
        tracer: &Tracer,
    ) -> io::Result<(WaferReport, MeasurementLedger)> {
        let out = self.campaign(ate_config, dies, tests, strategy, policy, tracer, false, None)?;
        Ok((out.report, out.merged))
    }

    /// Resumes an interrupted journaled campaign: replays the journal's
    /// contiguous committed prefix (verifying each chunk's commit-marker
    /// integrity), re-measures only the incomplete remainder, and returns
    /// a report and ledger **bit-identical** to the uninterrupted run
    /// plus what was replayed.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidInput`] without a configured
    /// `journal_dir`, [`io::ErrorKind::NotFound`] when the directory
    /// holds no journal, and [`io::ErrorKind::InvalidData`] when the
    /// journal belongs to a different campaign or a committed chunk fails
    /// integrity verification. Spill/journal I/O errors propagate.
    pub fn resume(
        &self,
        ate_config: &AteConfig,
        dies: &[Die],
        tests: &[Test],
        strategy: SearchStrategy,
        policy: ExecPolicy,
    ) -> io::Result<(WaferReport, MeasurementLedger, ResumeStats)> {
        self.resume_traced(ate_config, dies, tests, strategy, policy, &Tracer::disabled())
    }

    /// [`Self::resume`] with live (re-measured) spans recorded into
    /// `tracer`. Replayed chunks emit **no** trace events — their spans
    /// were already absorbed by the interrupted process — so a resumed
    /// trace stream covers exactly the work this process performed.
    ///
    /// # Errors
    ///
    /// As [`Self::resume`].
    #[allow(clippy::too_many_arguments)]
    pub fn resume_traced(
        &self,
        ate_config: &AteConfig,
        dies: &[Die],
        tests: &[Test],
        strategy: SearchStrategy,
        policy: ExecPolicy,
        tracer: &Tracer,
    ) -> io::Result<(WaferReport, MeasurementLedger, ResumeStats)> {
        let out = self.campaign(ate_config, dies, tests, strategy, policy, tracer, true, None)?;
        Ok((out.report, out.merged, out.stats))
    }

    /// Crash-injection hook: runs a fresh journaled campaign but stops —
    /// without finalizing — once `chunks` chunks are committed, exactly
    /// as if the process died right after the commit rename. Returns how
    /// many chunks were committed (fewer than `chunks` when the campaign
    /// is shorter).
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidInput`] without a configured
    /// `journal_dir`; journal/spill I/O errors propagate.
    pub fn run_prefix(
        &self,
        ate_config: &AteConfig,
        dies: &[Die],
        tests: &[Test],
        strategy: SearchStrategy,
        policy: ExecPolicy,
        chunks: usize,
    ) -> io::Result<u64> {
        if self.config.journal_dir.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "run_prefix requires a journal directory in the wafer config",
            ));
        }
        let out = self.campaign(
            ate_config,
            dies,
            tests,
            strategy,
            policy,
            &Tracer::disabled(),
            false,
            Some(chunks),
        )?;
        Ok(out.committed_chunks)
    }

    /// The journal identity for this campaign: a digest of everything
    /// that shapes its results. Paths (spill/journal directories) are
    /// deliberately excluded — they relocate a campaign without changing
    /// it.
    fn journal_meta(
        &self,
        ate_config: &AteConfig,
        dies: &[Die],
        tests: &[Test],
        strategy: SearchStrategy,
        chunks_total: u64,
    ) -> JournalMeta {
        let shape = (
            self.config.sites,
            self.config.chunk_touchdowns,
            self.config.sketch_buckets,
            self.config.contact_check,
            self.config.chunk_timeout_ms,
            self.config.site_fault_threshold,
            &self.config.site_faults,
        );
        JournalMeta {
            version: JOURNAL_VERSION,
            fingerprint: format!(
                "runner:{:?}|shape:{:?}|ate:{:?}|strategy:{:?}|dies:{}|tests:{}|device:{}",
                self.runner,
                shape,
                ate_config,
                strategy,
                dies.len(),
                tests.len(),
                self.device.descriptor()
            ),
            chunks_total,
        }
    }

    /// Folds one touchdown's product into the campaign state **and** the
    /// chunk-local partials, in emission order. Live measurement and
    /// journal replay both come through here — same code, same order,
    /// same non-associative `f64` sums.
    fn fold_touchdown(
        state: &mut FoldState,
        contact_faults: u64,
        entries: &[WaferEntry],
        ledgers: &[MeasurementLedger],
        chunk_aggregate: &mut TripAggregate,
        chunk_ledger: &mut MeasurementLedger,
    ) {
        state.contact_faults += contact_faults;
        for (site, ledger) in ledgers.iter().enumerate() {
            state.merged.merge(ledger);
            chunk_ledger.merge(ledger);
            state.per_site_quarantined[site] += ledger.quarantined();
            state.timeouts += ledger.timeouts();
            if let Some(breaker) = &mut state.breaker {
                breaker.observe(site, ledger);
            }
        }
        for entry in entries {
            state.aggregate.observe(entry.trip_point, &entry.status);
            chunk_aggregate.observe(entry.trip_point, &entry.status);
        }
    }

    /// Chunk-boundary breaker evaluation. Trips latch only here, so which
    /// sites open is a pure function of the chunk partition — invariant
    /// under thread count, and reproduced exactly by journal replay.
    /// Replay passes no tracer: the interrupted process already emitted
    /// these events.
    fn latch_breaker(state: &mut FoldState, chunk_index: usize, tracer: Option<&Tracer>) {
        let Some(breaker) = &mut state.breaker else {
            return;
        };
        for site in breaker.end_chunk() {
            if let Some(tracer) = tracer {
                tracer.emit_campaign(TraceEvent::SiteBreakerTripped {
                    site: site as u64,
                    chunk: chunk_index as u64,
                    fault_rate: breaker.fault_rate(site),
                });
            }
        }
    }

    /// Flushes the chunk's spill buffer as one atomic JSONL chunk file,
    /// recording its path and entry count for verified compaction.
    fn flush_spill(
        &self,
        buffer: &mut Vec<WaferEntry>,
        paths: &mut Vec<PathBuf>,
        counts: &mut Vec<u64>,
        chunk_index: usize,
    ) -> io::Result<()> {
        if let Some(dir) = &self.config.spill_dir {
            let path = dir.join(format!("wafer_chunk_{chunk_index:05}.jsonl"));
            db::save_jsonl(buffer, &path)?;
            paths.push(path);
            counts.push(buffer.len() as u64);
            buffer.clear();
        }
        Ok(())
    }

    /// The campaign engine behind [`Self::run_traced`],
    /// [`Self::resume_traced`] and [`Self::run_prefix`]: replay the
    /// journal's committed prefix (on resume), measure the remaining
    /// chunks live, finalize spill/summary artifacts unless stopped
    /// early.
    #[allow(clippy::too_many_arguments)]
    fn campaign(
        &self,
        ate_config: &AteConfig,
        dies: &[Die],
        tests: &[Test],
        strategy: SearchStrategy,
        policy: ExecPolicy,
        tracer: &Tracer,
        resume: bool,
        stop_after_chunks: Option<usize>,
    ) -> io::Result<CampaignOutput> {
        let sites = self.config.sites.max(1);
        let chunk_touchdowns = self.config.chunk_touchdowns.max(1);
        let param = self.runner.param();
        let range = param.generous_range();

        let touchdowns: Vec<&[Die]> = dies.chunks(sites).collect();
        let touchdown_count = touchdowns.len();
        let chunk_count = touchdowns.chunks(chunk_touchdowns).len();

        let journal = match &self.config.journal_dir {
            Some(dir) => {
                let meta =
                    self.journal_meta(ate_config, dies, tests, strategy, chunk_count as u64);
                Some(if resume {
                    CampaignJournal::open(dir, &meta)?
                } else {
                    CampaignJournal::create(dir, meta)?
                })
            }
            None if resume => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "resume requires a journal directory in the wafer config",
                ));
            }
            None => None,
        };

        let fresh_chunk_aggregate =
            || TripAggregate::new(range.start(), range.end(), self.config.sketch_buckets);
        let mut state = FoldState {
            aggregate: fresh_chunk_aggregate(),
            merged: MeasurementLedger::new(),
            per_site_quarantined: vec![0u64; sites.min(dies.len().max(1))],
            contact_faults: 0,
            timeouts: 0,
            breaker: self.config.site_fault_threshold.map(SiteHealthBreaker::new),
        };
        let mut stats = ResumeStats {
            chunks_total: chunk_count as u64,
            ..ResumeStats::default()
        };
        let mut spill_paths: Vec<PathBuf> = Vec::new();
        let mut spill_counts: Vec<u64> = Vec::new();
        let mut spill_buffer: Vec<WaferEntry> = Vec::new();

        // Replay the journal's contiguous committed prefix: re-fold the
        // stored touchdown products in live order and cross-check each
        // chunk against its commit marker's partials.
        let mut start_chunk = 0usize;
        if resume {
            let journal = journal.as_ref().expect("resume opened the journal above");
            while start_chunk < chunk_count {
                let Some((replayed, commit)) = journal.load_chunk(start_chunk)? else {
                    break;
                };
                let mut chunk_aggregate = fresh_chunk_aggregate();
                let mut chunk_ledger = MeasurementLedger::new();
                for td in &replayed {
                    Self::fold_touchdown(
                        &mut state,
                        td.contact_faults,
                        &td.entries,
                        &td.ledgers,
                        &mut chunk_aggregate,
                        &mut chunk_ledger,
                    );
                    if self.config.spill_dir.is_some() {
                        spill_buffer.extend(td.entries.iter().copied());
                    }
                    stats.touchdowns_replayed += 1;
                    stats.entries_replayed += td.entries.len() as u64;
                }
                if chunk_aggregate != commit.aggregate || chunk_ledger != commit.ledger {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "journal chunk {start_chunk} failed integrity verification — \
                             the replayed fold disagrees with its commit marker"
                        ),
                    ));
                }
                self.flush_spill(&mut spill_buffer, &mut spill_paths, &mut spill_counts, start_chunk)?;
                Self::latch_breaker(&mut state, start_chunk, None);
                stats.chunks_replayed += 1;
                start_chunk += 1;
            }
        }

        // Live measurement from the first incomplete chunk.
        let mut committed_chunks = start_chunk as u64;
        for (chunk_index, chunk) in touchdowns.chunks(chunk_touchdowns).enumerate().skip(start_chunk)
        {
            if stop_after_chunks.is_some_and(|k| chunk_index >= k) {
                break;
            }
            // Snapshot the open sites once per chunk: the breaker latches
            // only at chunk boundaries, so every touchdown in the chunk
            // sees the same quarantine set regardless of scheduling.
            let open: Vec<bool> = (0..sites)
                .map(|s| state.breaker.as_ref().is_some_and(|b| b.is_open(s)))
                .collect();
            let first_touchdown = chunk_index * chunk_touchdowns;
            let outcomes = cichar_exec::par_map_ref(policy, chunk, |i, td_dies| {
                self.process_touchdown(
                    first_touchdown + i,
                    td_dies,
                    ate_config,
                    tests,
                    strategy,
                    tracer,
                    &open,
                )
            });

            // Fold in touchdown order: aggregates, ledgers, spans, spill,
            // journal records.
            let mut chunk_aggregate = fresh_chunk_aggregate();
            let mut chunk_ledger = MeasurementLedger::new();
            let mut records: Vec<JournalRecord> = Vec::new();
            let mut chunk_entries = 0u64;
            let mut chunk_touchdown_count = 0u64;
            for (i, outcome) in outcomes.into_iter().enumerate() {
                for span in outcome.spans {
                    tracer.absorb(span);
                }
                Self::fold_touchdown(
                    &mut state,
                    outcome.contact_faults,
                    &outcome.entries,
                    &outcome.ledgers,
                    &mut chunk_aggregate,
                    &mut chunk_ledger,
                );
                chunk_entries += outcome.entries.len() as u64;
                chunk_touchdown_count += 1;
                // One deterministic tick per folded touchdown: the merged
                // ledger's simulated time is a pure function of the seeded
                // campaign, so heartbeat cadence is thread-count
                // invariant. Replay (above) never ticks — a resumed run's
                // heartbeats cover exactly its live work.
                self.telemetry.tick(|| Progress {
                    phase: "wafer",
                    sim_time_us: (state.merged.test_time_ms() * 1000.0) as u64,
                    units_done: state.aggregate.entries,
                    units_total: (dies.len() * tests.len()) as u64,
                    touchdowns_done: (first_touchdown + i + 1) as u64,
                    chunks_done: chunk_index as u64,
                    breaker_open_sites: state
                        .breaker
                        .as_ref()
                        .map(SiteHealthBreaker::open_sites)
                        .unwrap_or_default(),
                });
                if journal.is_some() {
                    records.push(JournalRecord::Touchdown(TouchdownRecord {
                        touchdown: (first_touchdown + i) as u64,
                        contact_faults: outcome.contact_faults,
                        entries: outcome.entries.clone(),
                        ledgers: outcome.ledgers.clone(),
                    }));
                }
                if self.config.spill_dir.is_some() {
                    spill_buffer.extend(outcome.entries);
                }
            }
            self.flush_spill(&mut spill_buffer, &mut spill_paths, &mut spill_counts, chunk_index)?;
            if let Some(journal) = &journal {
                // The commit rename is the durability point: spill chunk
                // files land first so a crash in between re-runs (and
                // atomically rewrites) the whole chunk.
                records.push(JournalRecord::Commit(ChunkCommit {
                    chunk: chunk_index as u64,
                    touchdowns: chunk_touchdown_count,
                    entries: chunk_entries,
                    aggregate: chunk_aggregate,
                    ledger: chunk_ledger,
                }));
                journal.commit_chunk(chunk_index, &records)?;
            }
            Self::latch_breaker(&mut state, chunk_index, Some(tracer));
            committed_chunks = chunk_index as u64 + 1;
        }

        let stopped_early = stop_after_chunks.is_some_and(|k| k < chunk_count);
        let spill = match &self.config.spill_dir {
            Some(dir) if !stopped_early => {
                let dest = dir.join("wafer_entries.jsonl");
                db::compact_jsonl_verified(&spill_paths, &spill_counts, &dest)?;
                Some(SpillManifest {
                    chunks: spill_paths.len() as u64,
                    entries: state.aggregate.entries,
                    path: dest.display().to_string(),
                })
            }
            _ => None,
        };

        let report = WaferReport {
            param,
            strategy,
            dies: dies.len() as u64,
            tests: tests.len() as u64,
            sites: sites as u64,
            touchdowns: touchdown_count as u64,
            contact_faults: state.contact_faults,
            aggregate: state.aggregate,
            per_site_quarantined: state.per_site_quarantined,
            total_measurements: state.merged.measurements(),
            timeouts: state.timeouts,
            quarantined_sites: state
                .breaker
                .as_ref()
                .map(SiteHealthBreaker::open_sites)
                .unwrap_or_default(),
            spill,
        };
        if !stopped_early {
            if let Some(dir) = &self.config.spill_dir {
                db::save_artifact(&report, dir.join("wafer_summary.json"))?;
            }
            if let Some(journal) = &journal {
                if self.config.spill_dir.as_deref() != Some(journal.dir()) {
                    db::save_artifact(&report, journal.dir().join("wafer_summary.json"))?;
                }
            }
        }
        Ok(CampaignOutput {
            report,
            merged: state.merged,
            stats,
            committed_chunks,
        })
    }

    /// One touchdown: per-die sessions seeded by global die index, the
    /// shared contact-check strobe (one stress hoist across sites), then
    /// each site's per-test searches through the standard recovery ladder
    /// — under the stall-watchdog deadline when one is configured, and
    /// skipped entirely (every test quarantined as
    /// [`QuarantineReason::SiteBreaker`]) for sites whose breaker is
    /// `open`.
    #[allow(clippy::too_many_arguments)]
    fn process_touchdown(
        &self,
        touchdown: usize,
        td_dies: &[Die],
        ate_config: &AteConfig,
        tests: &[Test],
        strategy: SearchStrategy,
        tracer: &Tracer,
        open: &[bool],
    ) -> TouchdownOutcome {
        let sites = self.config.sites.max(1);
        let first_die = touchdown * sites;
        let sessions: Vec<Ate> = td_dies
            .iter()
            .enumerate()
            .map(|(site, die)| {
                let mut site_config = AteConfig {
                    seed: cichar_exec::derive_seed(ate_config.seed, (first_die + site) as u64),
                    ..ate_config.clone()
                };
                if let Some((_, model)) =
                    self.config.site_faults.iter().find(|(s, _)| *s == site)
                {
                    site_config.faults = *model;
                }
                Ate::with_config(self.device.for_die(*die), site_config)
            })
            .collect();
        let mut touchdown_ate = MultiSiteAte::from_sessions(sessions);

        let mut contact_faults = 0u64;
        if self.config.contact_check {
            if let Some(test) = tests.first() {
                contact_faults = self.contact_check(&mut touchdown_ate, test);
            }
        }

        let deadline_us = self.config.chunk_timeout_ms.map(|ms| ms as f64 * 1000.0);
        let mut entries = Vec::with_capacity(td_dies.len() * tests.len());
        let mut spans = Vec::with_capacity(td_dies.len());
        for site in 0..touchdown_ate.site_count() {
            let die_index = first_die + site;
            let die_id = touchdown_ate.site(site).device().die().id();
            let span = tracer.span(die_index as u64);
            if open.get(site).copied().unwrap_or(false) {
                // The site's breaker latched open in an earlier chunk:
                // skip the searches, quarantine every test with full
                // ledger/trace accounting.
                let session = touchdown_ate.site_mut(site);
                for test_index in 0..tests.len() {
                    session.quarantine();
                    span.emit_with(|| TraceEvent::Quarantined {
                        reason: QuarantineReason::SiteBreaker.to_string(),
                    });
                    entries.push(WaferEntry {
                        die: die_id,
                        test: test_index as u32,
                        trip_point: None,
                        status: TripStatus::Quarantined {
                            reason: QuarantineReason::SiteBreaker,
                        },
                    });
                }
                span.mark_done();
                spans.push(span);
                continue;
            }
            // The fold path: entries stream straight into the touchdown
            // buffer — no per-die report, no per-entry name strings.
            let mut watchdog_skipped = 0u64;
            self.runner.run_fold(
                touchdown_ate.site_mut(site),
                tests,
                strategy,
                &span,
                deadline_us,
                |test_index, e| {
                    if matches!(
                        e.status,
                        TripStatus::Quarantined {
                            reason: QuarantineReason::TimedOut
                        }
                    ) {
                        watchdog_skipped += 1;
                    }
                    entries.push(WaferEntry {
                        die: die_id,
                        test: test_index as u32,
                        trip_point: e.trip_point,
                        status: e.status,
                    });
                },
            );
            if watchdog_skipped > 0 {
                span.emit_with(|| TraceEvent::WatchdogFired {
                    site: site as u64,
                    touchdown: touchdown as u64,
                    budget_ms: self.config.chunk_timeout_ms.unwrap_or(0),
                    skipped_tests: watchdog_skipped,
                });
            }
            span.mark_done();
            spans.push(span);
        }

        let ledgers = touchdown_ate
            .into_sessions()
            .iter()
            .map(|s| *s.ledger())
            .collect();
        TouchdownOutcome {
            entries,
            ledgers,
            contact_faults,
            spans,
        }
    }

    /// The shared touchdown strobe: every site measures the first test at
    /// the parameter's pass edge in one batch (one stress-breakdown hoist
    /// across all sites). Returns how many sites answered with no verdict.
    fn contact_check(&self, touchdown_ate: &mut MultiSiteAte, test: &Test) -> u64 {
        let param = self.runner.param();
        let range = param.generous_range();
        let edge = match param.region_order() {
            RegionOrder::PassBelowFail => range.start(),
            RegionOrder::PassAboveFail => range.end(),
        };
        let pattern = test.pattern();
        let features = PatternFeatures::extract(&pattern);
        let mut forces = param.relax_forces().to_vec();
        forces.push((param.kind(), edge));
        let verdicts =
            touchdown_ate.measure_sites(&features, pattern.len() as u64, test, &forces);
        verdicts.iter().filter(|v| !v.is_valid()).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cichar_ate::{DriftModel, NoiseModel, TesterFaultModel};
    use cichar_dut::Lot;
    use cichar_patterns::{random, TestConditions};
    use cichar_search::RetryPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::path::Path;

    fn harsh_config() -> AteConfig {
        AteConfig {
            noise: NoiseModel::new(0.03, 0.05, 0.005),
            drift: DriftModel::new(20.0, 1e5),
            faults: TesterFaultModel::transient(0.01, 0.02),
            seed: 0xD1E5,
        }
    }

    fn wafer(dies: usize, tests: usize) -> (Vec<Die>, Vec<Test>) {
        let mut rng = StdRng::seed_from_u64(0x57AF);
        let dies = Lot::default().sample_dies(&mut rng, dies);
        let tests = (0..tests)
            .map(|_| random::random_test_at(&mut rng, TestConditions::nominal()))
            .collect();
        (dies, tests)
    }

    fn runner(sites: usize, chunk: usize) -> WaferRunner {
        WaferRunner::new(MeasuredParam::DataValidTime)
            .with_recovery(RetryPolicy::new(3, 50.0))
            .with_config(WaferConfig {
                sites,
                chunk_touchdowns: chunk,
                sketch_buckets: 128,
                contact_check: true,
                ..WaferConfig::default()
            })
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cichar_wafer_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    #[test]
    fn reports_are_bit_identical_across_thread_counts() {
        let (dies, tests) = wafer(12, 5);
        let r = runner(4, 2);
        let serial = r
            .run(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::serial())
            .expect("no spill");
        for threads in [2, 8] {
            let parallel = r
                .run(
                    &harsh_config(),
                    &dies,
                    &tests,
                    SearchStrategy::SearchUntilTrip,
                    ExecPolicy::with_threads(threads),
                )
                .expect("no spill");
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn reports_are_invariant_under_chunk_size() {
        let (dies, tests) = wafer(10, 4);
        let base = runner(2, 1)
            .run(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::with_threads(4))
            .expect("no spill");
        for chunk in [3, 64] {
            let other = runner(2, chunk)
                .run(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::with_threads(4))
                .expect("no spill");
            assert_eq!(base, other, "chunk={chunk}");
        }
    }

    #[test]
    fn site_grouping_never_changes_results() {
        // sites=1 vs sites=4: different touchdown shapes, same per-die
        // streams — entries, aggregate, ledger and contact accounting all
        // agree.
        let (dies, tests) = wafer(8, 4);
        let spill_a = tmp_dir("sites1");
        let spill_b = tmp_dir("sites4");
        let run = |sites: usize, dir: &Path| {
            let mut r = runner(sites, 2);
            r.config.spill_dir = Some(dir.to_path_buf());
            r.run(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::with_threads(4))
                .expect("spill dir writable")
        };
        let (one, ledger_one) = run(1, &spill_a);
        let (four, ledger_four) = run(4, &spill_b);

        assert_eq!(one.aggregate, four.aggregate);
        assert_eq!(one.contact_faults, four.contact_faults);
        assert_eq!(ledger_one, ledger_four);
        assert_eq!(
            one.per_site_quarantined.iter().sum::<u64>(),
            four.per_site_quarantined.iter().sum::<u64>()
        );
        let entries_one: Vec<WaferEntry> =
            db::load_jsonl(spill_a.join("wafer_entries.jsonl")).expect("compacted spill");
        let entries_four: Vec<WaferEntry> =
            db::load_jsonl(spill_b.join("wafer_entries.jsonl")).expect("compacted spill");
        assert_eq!(entries_one, entries_four);
        for dir in [&spill_a, &spill_b] {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn per_site_accounting_reconciles_with_merged_ledger() {
        let (dies, tests) = wafer(9, 4);
        // Heavier faults so quarantines actually occur.
        let config = AteConfig {
            faults: TesterFaultModel::transient(0.02, 0.25),
            ..harsh_config()
        };
        let r = WaferRunner::new(MeasuredParam::DataValidTime).with_config(WaferConfig {
            sites: 3,
            chunk_touchdowns: 2,
            ..WaferConfig::default()
        });
        let (report, ledger) = r
            .run(&config, &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::serial())
            .expect("no spill");
        assert!(report.aggregate.quarantined > 0, "fault rate high enough to quarantine");
        assert_eq!(
            report.per_site_quarantined.iter().sum::<u64>(),
            report.aggregate.quarantined,
            "per-site quarantines sum to the aggregate"
        );
        assert_eq!(ledger.quarantined(), report.aggregate.quarantined);
        assert_eq!(ledger.measurements(), report.total_measurements);
        assert_eq!(report.aggregate.entries, report.dies * report.tests);
    }

    #[test]
    fn wafer_entries_match_independent_per_die_runs() {
        // With the contact check off, each die's wafer stream is exactly
        // an independent MultiTripRunner campaign on a session seeded by
        // its global die index.
        let (dies, tests) = wafer(6, 4);
        let config = harsh_config();
        let mut r = runner(3, 2);
        r.config.contact_check = false;
        let (report, _) = r
            .run(&config, &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::with_threads(4))
            .expect("no spill");
        assert_eq!(report.aggregate.entries, 6 * 4);

        let mut reference = TripAggregate::new(
            MeasuredParam::DataValidTime.generous_range().start(),
            MeasuredParam::DataValidTime.generous_range().end(),
            128,
        );
        let per_die = MultiTripRunner::new(MeasuredParam::DataValidTime)
            .with_recovery(RetryPolicy::new(3, 50.0));
        for (die_index, die) in dies.iter().enumerate() {
            let mut session = Ate::with_config(
                MemoryDevice::new(*die),
                AteConfig {
                    seed: cichar_exec::derive_seed(config.seed, die_index as u64),
                    ..config.clone()
                },
            );
            let report = per_die.run(&mut session, &tests, SearchStrategy::SearchUntilTrip);
            for e in &report.entries {
                reference.observe(e.trip_point, &e.status);
            }
        }
        assert_eq!(report.aggregate, reference);
    }

    #[test]
    fn spill_compacts_chunks_and_writes_summary() {
        let (dies, tests) = wafer(6, 3);
        let dir = tmp_dir("spill");
        let mut r = runner(2, 1);
        r.config.spill_dir = Some(dir.clone());
        let (report, _) = r
            .run(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::serial())
            .expect("spill dir writable");

        let spill = report.spill.as_ref().expect("spill manifest");
        assert_eq!(spill.chunks, 3, "three chunks of one touchdown each");
        assert_eq!(spill.entries, 6 * 3);
        let entries: Vec<WaferEntry> = db::load_jsonl(&spill.path).expect("compacted artifact");
        assert_eq!(entries.len(), 18);
        // Chunk files are gone after compaction; the summary artifact parses.
        assert!(!dir.join("wafer_chunk_00000.jsonl").exists());
        let summary: WaferReport =
            db::load_artifact(dir.join("wafer_summary.json")).expect("summary");
        assert_eq!(summary, report);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journaling_never_changes_results() {
        let (dies, tests) = wafer(8, 3);
        let plain = runner(2, 2)
            .run(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::serial())
            .expect("no spill");

        let dir = tmp_dir("journal_noop");
        let mut r = runner(2, 2);
        r.config.journal_dir = Some(dir.clone());
        let journaled = r
            .run(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::serial())
            .expect("journal dir writable");
        assert_eq!(plain, journaled);

        // Every chunk committed, and the summary landed in the journal
        // directory for post-crash byte comparison.
        let meta: JournalMeta = db::load_artifact(dir.join("journal_meta.json")).expect("meta");
        let journal = CampaignJournal::open(&dir, &meta).expect("own meta");
        assert_eq!(journal.committed_chunks().expect("scan"), 2, "4 touchdowns / 2 per chunk");
        let summary: WaferReport = db::load_artifact(dir.join("wafer_summary.json")).expect("summary");
        assert_eq!(summary, journaled.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_after_interrupt_is_bit_identical() {
        let (dies, tests) = wafer(10, 3);
        let uninterrupted = runner(2, 1)
            .run(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::serial())
            .expect("no spill");

        for kill_after in [0usize, 2, 4] {
            let dir = tmp_dir(&format!("resume_{kill_after}"));
            let mut r = runner(2, 1);
            r.config.journal_dir = Some(dir.clone());
            let committed = r
                .run_prefix(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::serial(), kill_after)
                .expect("journal dir writable");
            assert_eq!(committed, kill_after as u64);
            assert!(!dir.join("wafer_summary.json").exists(), "no finalize on interrupt");

            let (report, ledger, stats) = r
                .resume(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::with_threads(4))
                .expect("journal readable");
            assert_eq!((report, ledger), uninterrupted, "kill_after={kill_after}");
            assert_eq!(stats.chunks_replayed, kill_after as u64);
            assert_eq!(stats.chunks_total, 5, "10 dies / 2 sites / 1 td per chunk");
            assert_eq!(
                stats.entries_replayed,
                (kill_after * 2 * 3) as u64,
                "2 dies × 3 tests per replayed chunk"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn resume_rebuilds_spill_artifacts() {
        let (dies, tests) = wafer(8, 3);
        let ref_dir = tmp_dir("respill_ref");
        let mut reference = runner(2, 2);
        reference.config.spill_dir = Some(ref_dir.clone());
        let (ref_report, _) = reference
            .run(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::serial())
            .expect("spill dir writable");

        let dir = tmp_dir("respill");
        let mut r = runner(2, 2);
        r.config.spill_dir = Some(dir.clone());
        r.config.journal_dir = Some(dir.clone());
        r.run_prefix(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::serial(), 1)
            .expect("journal dir writable");
        let (report, _, _) = r
            .resume(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::serial())
            .expect("resume");

        // Same aggregate and the same compacted entry stream, replayed
        // chunk included.
        assert_eq!(report.aggregate, ref_report.aggregate);
        let entries: Vec<WaferEntry> =
            db::load_jsonl(dir.join("wafer_entries.jsonl")).expect("compacted");
        let ref_entries: Vec<WaferEntry> =
            db::load_jsonl(ref_dir.join("wafer_entries.jsonl")).expect("compacted");
        assert_eq!(entries, ref_entries);
        for d in [&ref_dir, &dir] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    #[test]
    fn resume_rejects_a_different_campaign() {
        let (dies, tests) = wafer(6, 2);
        let dir = tmp_dir("foreign");
        let mut r = runner(2, 1);
        r.config.journal_dir = Some(dir.clone());
        r.run_prefix(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::serial(), 1)
            .expect("journal dir writable");

        // A different seed is a different campaign: the fingerprint must
        // refuse the journal rather than splice foreign chunks.
        let other = AteConfig { seed: 0xBAD, ..harsh_config() };
        let err = r
            .resume(&other, &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::serial())
            .expect_err("fingerprint mismatch");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // And resuming without a journal configured is an input error.
        let bare = runner(2, 1);
        let err = bare
            .resume(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::serial())
            .expect_err("no journal dir");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watchdog_times_out_over_budget_sessions() {
        let (dies, tests) = wafer(6, 4);
        // A zero budget expires the moment the contact strobe lands: every
        // search is abandoned deterministically.
        let mut r = runner(2, 2);
        r.config.chunk_timeout_ms = Some(0);
        let (report, ledger) = r
            .run(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::with_threads(2))
            .expect("no spill");
        assert_eq!(report.timeouts, 6 * 4, "every test timed out");
        assert_eq!(report.aggregate.quarantined, 6 * 4);
        assert_eq!(report.aggregate.entries, 6 * 4);
        assert_eq!(ledger.timeouts(), report.timeouts);
        assert_eq!(ledger.quarantined(), report.aggregate.quarantined);
        assert_eq!(
            report.per_site_quarantined.iter().sum::<u64>(),
            report.aggregate.quarantined
        );

        // A generous budget never fires: identical to the unguarded run.
        let mut generous = runner(2, 2);
        generous.config.chunk_timeout_ms = Some(u64::MAX / 2_000);
        let guarded = generous
            .run(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::with_threads(2))
            .expect("no spill");
        let unguarded = runner(2, 2)
            .run(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::with_threads(2))
            .expect("no spill");
        assert_eq!(guarded.0.timeouts, 0);
        assert_eq!(guarded, unguarded);
    }

    #[test]
    fn breaker_quarantines_a_stuck_site_with_full_accounting() {
        let (dies, tests) = wafer(16, 4);
        // Site 1's channel is broken: stalls on most strobes plus heavy
        // dropouts. The watchdog converts the stalls into timeouts, the
        // breaker converts the rolling fault rate into a latched-open
        // site, and later touchdowns skip it entirely.
        let mut r = runner(2, 2);
        r.config.chunk_timeout_ms = Some(50);
        r.config.site_fault_threshold = Some(0.25);
        r.config.site_faults = vec![(
            1,
            TesterFaultModel::transient(0.10, 0.10).with_stalls(0.8, 40_000.0),
        )];
        let (report, ledger) = r
            .run(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::with_threads(4))
            .expect("no spill");

        assert_eq!(report.quarantined_sites, vec![1], "site 1 latched open");
        assert!(report.timeouts > 0, "stalls blew the watchdog budget");
        assert!(
            report.per_site_quarantined[1] > report.per_site_quarantined[0],
            "quarantines concentrate on the broken site"
        );
        // Accounting reconciles across all three ledgers of record.
        assert_eq!(report.aggregate.entries, 16 * 4);
        assert_eq!(
            report.per_site_quarantined.iter().sum::<u64>(),
            report.aggregate.quarantined
        );
        assert_eq!(ledger.quarantined(), report.aggregate.quarantined);
        assert_eq!(ledger.timeouts(), report.timeouts);
        assert_eq!(ledger.measurements(), report.total_measurements);

        // The same campaign journaled, interrupted and resumed replays
        // the breaker trip bit-identically.
        let dir = tmp_dir("breaker_resume");
        r.config.journal_dir = Some(dir.clone());
        r.run_prefix(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::serial(), 2)
            .expect("journal dir writable");
        let (resumed, resumed_ledger, stats) = r
            .resume(&harsh_config(), &dies, &tests, SearchStrategy::SearchUntilTrip, ExecPolicy::with_threads(4))
            .expect("resume");
        assert_eq!(resumed, report);
        assert_eq!(resumed_ledger, ledger);
        assert_eq!(stats.chunks_replayed, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
