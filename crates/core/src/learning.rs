//! The fig. 4 learning scheme: intelligent device characterization
//! learning with the (simulated) industrial ATE.
//!
//! The loop of fig. 4, step by step:
//!
//! 1. the random test generator presents tests to the ATE and the neural
//!    modules continuously;
//! 2. each test's trip point is measured — the first through eq. (2), the
//!    rest through eqs. (3)/(4) (search-until-trip-point);
//! 3. the trip point is coded — fuzzy set data or simple numerical coding
//!    (§5 step 3) — and the committee learns under ATE supervision;
//! 4. learnability and generalization are checked; on failure the loop
//!    returns to step 1 and gathers more measured tests;
//! 5. the resulting weight file (here: the [`LearnedModel`]) feeds the
//!    optimization phase's test generator.

use crate::dsv::{MultiTripRunner, SearchStrategy};
use crate::encode::{TestEncoder, INPUT_WIDTH};
use crate::wcr::CharacterizationObjective;
use cichar_ate::{Ate, MeasuredParam};
use cichar_fuzzy::coding::{CodingScheme, TripPointCoder};
use cichar_neural::{Committee, Dataset, MinMaxScaler, TrainConfig};
use cichar_patterns::{random, ConditionSpace, Test};
use cichar_search::TripPrediction;
use cichar_trace::{TraceEvent, Tracer};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of the learning scheme.
///
/// The paper's full run applied 50 000 patterns on the ATE; the default
/// here is laptop-sized (see `DESIGN.md` §6 — same code path, scaled
/// budget).
#[derive(Debug, Clone, PartialEq)]
pub struct LearningConfig {
    /// Random tests measured on the ATE per gathering round.
    pub tests_per_round: usize,
    /// Maximum gathering rounds before giving up on the checks.
    pub max_rounds: usize,
    /// Committee size (fig. 4's "multiple NNs").
    pub committee_size: usize,
    /// Hidden-layer widths of each member.
    pub hidden: Vec<usize>,
    /// Trip-point coding (§5 step 3).
    pub coding: CodingScheme,
    /// The characterized parameter.
    pub param: MeasuredParam,
    /// The drift objective defining WCR.
    pub objective: CharacterizationObjective,
    /// Condition space for test randomization and input normalization.
    pub space: ConditionSpace,
    /// Whether random tests also randomize conditions (fig. 8 needs it)
    /// or stay at nominal (Table 1's fixed Vdd = 1.8 V).
    pub vary_conditions: bool,
    /// Backprop hyper-parameters.
    pub train: TrainConfig,
}

impl Default for LearningConfig {
    fn default() -> Self {
        Self {
            tests_per_round: 150,
            max_rounds: 3,
            committee_size: 5,
            hidden: vec![16, 8],
            coding: CodingScheme::Numeric,
            param: MeasuredParam::DataValidTime,
            objective: CharacterizationObjective::drift_to_minimum(20.0),
            space: ConditionSpace::default(),
            vary_conditions: false,
            train: TrainConfig::default(),
        }
    }
}

/// The learning scheme's product: the trained committee plus everything
/// the optimization phase needs to use it (fig. 4's "NN weight file").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearnedModel {
    /// The trained voting committee.
    pub committee: Committee,
    /// The trip-point coder (defines the target vectors and severity).
    pub coder: TripPointCoder,
    /// Target normalization for numeric coding: WCR values observed in
    /// training span only a sliver of the unit interval, so they are
    /// min-max stretched to give backpropagation a usable gradient.
    pub wcr_scaler: MinMaxScaler,
    /// The input encoder.
    pub encoder: TestEncoder,
    /// The WCR objective used for labelling.
    pub objective: CharacterizationObjective,
    /// The reference trip point established by the first full search.
    pub reference_trip_point: f64,
    /// ATE-measured training samples gathered.
    pub dataset_size: usize,
    /// Total ATE measurements spent on learning.
    pub measurements_used: u64,
    /// Gathering rounds run.
    pub rounds: usize,
    /// Whether the final committee passed both checks.
    pub accepted: bool,
}

impl LearnedModel {
    /// Writes the model as pretty JSON — fig. 4's "a NN weight file is
    /// generated. This file will be used in classification task of worst
    /// case test based on only software computation".
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization errors.
    pub fn save_weight_file(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Loads a weight file written by [`Self::save_weight_file`].
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialization errors.
    pub fn load_weight_file(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Predicts a test's severity and the vote's confidence — pure
    /// software, no measurement, as fig. 4 step (5) requires.
    ///
    /// Severity is monotone in predicted WCR but scheme-relative: numeric
    /// codings report the scaler-normalized WCR, fuzzy codings the coder's
    /// band-weighted severity. Both rank candidates identically well;
    /// only rankings (not absolute severities) cross scheme boundaries.
    pub fn predict_severity(&self, test: &Test) -> (f64, f64) {
        let x = self.encoder.encode(test);
        let vote = self.committee.vote(&x);
        let severity = match self.coder.scheme() {
            CodingScheme::Numeric => vote.mean.first().copied().unwrap_or(0.0),
            CodingScheme::Fuzzy => self.coder.severity(&vote.mean),
        };
        (severity, vote.confidence())
    }

    /// Inverts the committee's vote back into a predicted trip point for
    /// one test — pure software, no measurement — so a warm-started STP
    /// walk can seed its window from the test's *own* predicted trip
    /// instead of the shared reference.
    ///
    /// The inversion chain for numeric coding: vote mean (scaler space) →
    /// [`MinMaxScaler::inverse`] → WCR →
    /// [`CharacterizationObjective::value_for_wcr`] → trip point. The
    /// committee's vote spread rides along the same chain (evaluated at
    /// mean ± one standard deviation) so the planner's trust band works in
    /// parameter units.
    ///
    /// Returns `None` when the committee failed its acceptance checks
    /// (fig. 4 sends such a model back for more data, not into
    /// production) or when the coding is fuzzy — band memberships rank
    /// severity but do not locate a point value.
    pub fn predict_trip(&self, test: &Test) -> Option<TripPrediction> {
        if !self.accepted || self.coder.scheme() != CodingScheme::Numeric {
            return None;
        }
        let x = self.encoder.encode(test);
        let vote = self.committee.vote(&x);
        let z = *vote.mean.first()?;
        let dz = vote.std_dev.first().copied().unwrap_or(0.0);
        let trip = self.objective.value_for_wcr(self.wcr_scaler.inverse(z));
        // The chain is monotone, so mean ± σ brackets the spread; the
        // half-width is the uncertainty in parameter units. A vote
        // straddling WCR = 0 under eq. 6 turns the spread infinite, which
        // the planner correctly distrusts.
        let lo = self.objective.value_for_wcr(self.wcr_scaler.inverse(z - dz));
        let hi = self.objective.value_for_wcr(self.wcr_scaler.inverse(z + dz));
        Some(TripPrediction {
            trip_point: trip,
            spread: 0.5 * (hi - lo).abs(),
        })
    }
}

impl fmt::Display for LearnedModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "learned model: {} members, {} samples, {} measurements, accepted={}",
            self.committee.size(),
            self.dataset_size,
            self.measurements_used,
            self.accepted
        )
    }
}

/// Runs the fig. 4 scheme.
///
/// # Examples
///
/// See [`crate::compare`] for the end-to-end pipeline; unit-scale runs
/// live in this module's tests.
#[derive(Debug, Clone, PartialEq)]
pub struct LearningScheme {
    config: LearningConfig,
}

impl LearningScheme {
    /// Creates the scheme.
    ///
    /// # Panics
    ///
    /// Panics on a zero test budget or zero committee.
    pub fn new(config: LearningConfig) -> Self {
        assert!(config.tests_per_round >= 4, "needs tests to learn from");
        assert!(config.committee_size >= 1, "needs at least one network");
        assert!(config.max_rounds >= 1, "needs at least one round");
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &LearningConfig {
        &self.config
    }

    /// Runs learning against the tester.
    ///
    /// # Panics
    ///
    /// Panics if no trip point converges at all (a mis-ranged setup).
    pub fn run<R: Rng + ?Sized>(&self, ate: &mut Ate, rng: &mut R) -> LearnedModel {
        self.run_traced(ate, rng, &Tracer::disabled())
    }

    /// [`run`](Self::run) with per-test measurement spans and one
    /// [`TraceEvent::CommitteeEpochFinished`] campaign event per training
    /// round recorded into `tracer`.
    ///
    /// # Panics
    ///
    /// Panics if no trip point converges at all (a mis-ranged setup).
    pub fn run_traced<R: Rng + ?Sized>(
        &self,
        ate: &mut Ate,
        rng: &mut R,
        tracer: &Tracer,
    ) -> LearnedModel {
        let c = &self.config;
        let coder = TripPointCoder::new(c.coding);
        let encoder = TestEncoder::new(c.space.clone());
        let runner = MultiTripRunner::new(c.param);
        let start_ledger = *ate.ledger();

        let mut inputs: Vec<Vec<f64>> = Vec::new();
        let mut wcrs: Vec<f64> = Vec::new();
        let mut rtp: Option<f64> = None;
        let mut committee: Option<Committee> = None;
        let mut scaler = MinMaxScaler::with_bounds(0.0, 1.5);
        let mut rounds = 0;

        for _ in 0..c.max_rounds {
            rounds += 1;
            // Step 1: present random tests to ATE and network continuously.
            let tests: Vec<Test> = (0..c.tests_per_round)
                .map(|_| {
                    if c.vary_conditions {
                        random::random_test(rng, &c.space)
                    } else {
                        random::random_test_at(rng, cichar_patterns::TestConditions::nominal())
                    }
                })
                .collect();
            // Step 2: measure trip points (eq. 2 first, then eqs. 3/4).
            let report = runner.run_traced(ate, &tests, SearchStrategy::SearchUntilTrip, tracer);
            if rtp.is_none() {
                rtp = report.reference_trip_point;
            }
            // Step 3: code the trip points and grow the dataset.
            for (test, entry) in tests.iter().zip(&report.entries) {
                let Some(tp) = entry.trip_point else {
                    continue;
                };
                inputs.push(encoder.encode(test));
                wcrs.push(c.objective.wcr(tp));
            }
            if inputs.len() < 8 {
                continue;
            }
            // Numeric targets are min-max stretched over the observed WCR
            // band; fuzzy targets go through the band coder unchanged.
            scaler = MinMaxScaler::fit(wcrs.iter().copied());
            let targets: Vec<Vec<f64>> = wcrs
                .iter()
                .map(|&w| match c.coding {
                    CodingScheme::Numeric => vec![scaler.transform(w)],
                    CodingScheme::Fuzzy => coder.encode_wcr(w),
                })
                .collect();
            // Steps 1+4: train the voting committee; check learnability
            // and generalization; loop back for more data if rejected.
            let dataset =
                Dataset::new(inputs.clone(), targets).expect("aligned rows by construction");
            let mut topology = vec![INPUT_WIDTH];
            topology.extend_from_slice(&c.hidden);
            topology.push(coder.target_width());
            let trained = Committee::train(&topology, c.committee_size, &c.train, &dataset, rng)
                .expect("validated topology");
            let accepted = trained.accepted();
            tracer.emit_campaign(TraceEvent::CommitteeEpochFinished {
                epoch: rounds as u64 - 1,
                members: trained.size() as u64,
                train_error: trained.mean_validation_error(),
            });
            committee = Some(trained);
            if accepted {
                break;
            }
        }

        let committee = committee.expect("at least one round trains");
        let accepted = committee.accepted();
        LearnedModel {
            committee,
            coder,
            wcr_scaler: scaler,
            encoder,
            objective: c.objective,
            reference_trip_point: rtp.expect("at least one trip point must converge"),
            dataset_size: inputs.len(),
            measurements_used: ate.ledger().measurements_since(&start_ledger),
            rounds,
            accepted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cichar_dut::MemoryDevice;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_config(coding: CodingScheme) -> LearningConfig {
        LearningConfig {
            tests_per_round: 60,
            max_rounds: 2,
            committee_size: 3,
            hidden: vec![12],
            coding,
            train: TrainConfig {
                epochs: 150,
                ..TrainConfig::default()
            },
            ..LearningConfig::default()
        }
    }

    fn learn(coding: CodingScheme, seed: u64) -> LearnedModel {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let mut rng = StdRng::seed_from_u64(seed);
        LearningScheme::new(tiny_config(coding)).run(&mut ate, &mut rng)
    }

    #[test]
    fn numeric_learning_is_accepted() {
        let model = learn(CodingScheme::Numeric, 1);
        assert!(model.accepted, "{model}");
        assert!(model.dataset_size >= 50);
        assert!(model.measurements_used > 0);
    }

    #[test]
    fn reference_trip_point_is_physical() {
        let model = learn(CodingScheme::Numeric, 2);
        assert!(
            (20.0..36.0).contains(&model.reference_trip_point),
            "rtp = {}",
            model.reference_trip_point
        );
    }

    #[test]
    fn severity_prediction_ranks_stress() {
        use cichar_patterns::{march, Test, TestVector};
        let model = learn(CodingScheme::Numeric, 3);
        let benign = Test::deterministic("march", march::march_c_minus(64));
        // An SSO storm: write then read alternating words in resonant bursts.
        let mut v = Vec::new();
        for i in 0..200u16 {
            let w = if i % 2 == 0 { 0x5555 } else { 0xAAAA };
            v.push(TestVector::write(i, w));
        }
        let mut i = 0u16;
        while v.len() < 990 {
            v.push(TestVector::write(200, 0));
            for _ in 0..12 {
                let w = if i.is_multiple_of(2) { 0x5555 } else { 0xAAAA };
                v.push(TestVector::read(i % 200, w));
                i = i.wrapping_add(1);
            }
        }
        let storm = Test::deterministic("storm", cichar_patterns::Pattern::new_clamped(v));
        let (benign_sev, _) = model.predict_severity(&benign);
        let (storm_sev, _) = model.predict_severity(&storm);
        assert!(
            storm_sev > benign_sev,
            "storm {storm_sev} must out-rank benign {benign_sev}"
        );
    }

    #[test]
    fn predicted_trip_lands_near_the_reference() {
        let model = learn(CodingScheme::Numeric, 1);
        let t = Test::deterministic("m", cichar_patterns::march::march_x(96));
        let p = model.predict_trip(&t).expect("accepted numeric model");
        assert!(p.trip_point.is_finite());
        assert!(p.spread.is_finite() && p.spread >= 0.0);
        // Deterministic nominal-condition tests trip within a few ns of
        // each other (fig. 2's band); the prediction must land in it.
        assert!(
            (p.trip_point - model.reference_trip_point).abs() < 8.0,
            "predicted {} vs rtp {}",
            p.trip_point,
            model.reference_trip_point
        );
    }

    #[test]
    fn predicted_trip_is_the_inverted_severity() {
        let model = learn(CodingScheme::Numeric, 2);
        let t = Test::deterministic("m", cichar_patterns::march::march_y(96));
        let p = model.predict_trip(&t).expect("accepted numeric model");
        let (severity, _) = model.predict_severity(&t);
        let wcr = model.wcr_scaler.inverse(severity);
        assert!(
            (model.objective.wcr(p.trip_point) - wcr).abs() < 1e-9,
            "trip {} must score the predicted WCR {wcr}",
            p.trip_point
        );
    }

    #[test]
    fn rejected_or_fuzzy_models_predict_no_trip() {
        let t = Test::deterministic("m", cichar_patterns::march::march_x(96));
        let mut model = learn(CodingScheme::Numeric, 1);
        model.accepted = false;
        assert_eq!(model.predict_trip(&t), None, "unaccepted committee");
        let fuzzy = learn(CodingScheme::Fuzzy, 4);
        assert_eq!(fuzzy.predict_trip(&t), None, "bands rank, not locate");
    }

    #[test]
    fn fuzzy_coding_learns_too() {
        let model = learn(CodingScheme::Fuzzy, 4);
        assert_eq!(model.coder.scheme(), CodingScheme::Fuzzy);
        assert!(model.dataset_size >= 50);
        // Fuzzy committees output one neuron per band.
        assert_eq!(
            model.committee.members()[0].output_width(),
            model.coder.target_width()
        );
    }

    #[test]
    fn prediction_needs_no_measurements() {
        let model = learn(CodingScheme::Numeric, 5);
        let before = model.measurements_used;
        let t = Test::deterministic("m", cichar_patterns::march::march_x(96));
        let _ = model.predict_severity(&t);
        // `predict_severity` has no tester access at all; the field is a
        // snapshot and cannot change.
        assert_eq!(model.measurements_used, before);
    }

    #[test]
    fn weight_file_round_trip_preserves_predictions() {
        let model = learn(CodingScheme::Numeric, 6);
        let dir = std::env::temp_dir().join("cichar_weight_file");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("weights.json");
        model.save_weight_file(&path).expect("save");
        let loaded = LearnedModel::load_weight_file(&path).expect("load");
        assert_eq!(loaded.committee, model.committee);
        let t = Test::deterministic("m", cichar_patterns::march::march_y(96));
        assert_eq!(loaded.predict_severity(&t), model.predict_severity(&t));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn weight_file_load_rejects_garbage() {
        let dir = std::env::temp_dir().join("cichar_weight_file");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json at all").expect("write");
        assert!(LearnedModel::load_weight_file(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "needs tests to learn")]
    fn rejects_empty_budget() {
        let _ = LearningScheme::new(LearningConfig {
            tests_per_round: 0,
            ..LearningConfig::default()
        });
    }
}
