//! The fig. 5 optimization scheme: GA-refined worst-case test generation.
//!
//! Step by step:
//!
//! 1. GA populations are initialized by the fuzzy-neural generator's
//!    sub-optimal tests (see [`crate::generator`]);
//! 2. the characterization objective fixes the drift direction (eq. 5 or
//!    eq. 6 — [`CharacterizationObjective`]);
//! 3. the GA evolves two chromosome species — the test-sequence genes
//!    ([`SegmentProgram`]'s encoding) and the test-condition genes — with
//!    `fitness = WCR of the TPV measured on the ATE` via
//!    search-until-trip-point;
//! 4. stagnating islands restart with brand-new populations; the run ends
//!    at the generation budget or when the worst-case-ratio target trips;
//!    the surviving tests land in the [`WorstCaseDatabase`].

use crate::db::{WorstCaseDatabase, WorstCaseTest};
use crate::dsv::measure_with_recovery;
use crate::generator::Candidate;
use crate::wcr::CharacterizationObjective;
use cichar_ate::{Ate, MeasuredParam, MeasurementLedger, ParallelAte};
use cichar_exec::ExecPolicy;
use cichar_genetic::{
    FitnessEvaluator, GaConfig, GaEngine, GaResult, GenomeSpec, Individual, SpeciesLayout,
};
use cichar_patterns::{
    ConditionSpace, SegmentProgram, Stimulus, Test, TestConditions, TestSource,
};
use cichar_search::{
    Probe, RebracketingStp, RegionOrder, RetryPolicy, SearchUntilTrip, SuccessiveApproximation,
};
use cichar_trace::{Progress, SpanTrace, Telemetry, TraceEvent, Tracer};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of the optimization scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationConfig {
    /// GA hyper-parameters (fig. 5's step budget lives in
    /// `ga.generations`; the WCR-theorem stop in `ga.target_fitness`).
    pub ga: GaConfig,
    /// The characterized parameter.
    pub param: MeasuredParam,
    /// The drift objective (fitness = its WCR).
    pub objective: CharacterizationObjective,
    /// Condition space for the condition chromosome.
    pub space: ConditionSpace,
    /// Evolve the condition chromosome too (`true`, the paper's two
    /// species), or pin every individual to `pinned_conditions` (Table 1's
    /// fixed Vdd = 1.8 V corner).
    pub evolve_conditions: bool,
    /// Conditions used when `evolve_conditions` is `false`.
    pub pinned_conditions: TestConditions,
    /// Worst-case entries kept in the database.
    pub database_capacity: usize,
    /// Fault-tolerance policy for the ATE-measured fitness: when set,
    /// every strobe runs through the retry / backoff / voting ladder,
    /// failed STP walks re-bracket with a full-range search, and
    /// individuals whose measurement stays untrustworthy are scored
    /// unmeasurable (and quarantined in the ledger) instead of feeding a
    /// corrupted trip point to the GA.
    pub recovery: Option<RetryPolicy>,
}

impl Default for OptimizationConfig {
    fn default() -> Self {
        Self {
            ga: GaConfig {
                generations: 40,
                target_fitness: Some(1.0),
                ..GaConfig::default()
            },
            param: MeasuredParam::DataValidTime,
            objective: CharacterizationObjective::drift_to_minimum(20.0),
            space: ConditionSpace::default(),
            evolve_conditions: false,
            pinned_conditions: TestConditions::nominal(),
            database_capacity: 16,
            recovery: None,
        }
    }
}

/// The scheme's product.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizationOutcome {
    /// The database of worst-case tests (fig. 5's final box).
    pub database: WorstCaseDatabase,
    /// Raw GA statistics.
    pub ga: GaResult,
    /// ATE measurements consumed by the whole optimization.
    pub measurements_used: u64,
    /// The single worst test found.
    pub best: WorstCaseTest,
    /// The reference trip point the run ended with: the caller-provided
    /// one, or the first converged trip point discovered (eq. 2). Feeding
    /// it into a follow-up run skips that run's initial full search.
    pub reference_trip_point: Option<f64>,
}

impl fmt::Display for OptimizationOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "optimization: best {} | {} ATE measurements | GA {}",
            self.best, self.measurements_used, self.ga
        )
    }
}

/// Runs the fig. 5 scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationScheme {
    config: OptimizationConfig,
}

impl OptimizationScheme {
    /// Creates the scheme.
    pub fn new(config: OptimizationConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &OptimizationConfig {
        &self.config
    }

    /// The chromosome layout: sequence genes, plus condition genes when
    /// conditions evolve.
    pub fn layout(&self) -> SpeciesLayout {
        let mut specs = vec![GenomeSpec::new(SegmentProgram::gene_bounds())];
        if self.config.evolve_conditions {
            specs.push(GenomeSpec::new(self.config.space.gene_bounds()));
        }
        SpeciesLayout::new(specs)
    }

    /// Decodes a GA individual into a concrete test.
    ///
    /// # Panics
    ///
    /// Panics if the individual does not match [`Self::layout`] — the GA
    /// engine guarantees it does.
    pub fn decode(&self, individual: &Individual, name: impl Into<String>) -> Test {
        let program = SegmentProgram::from_genes(individual.chromosome(0))
            .expect("layout bounds make every chromosome decodable");
        let conditions = if self.config.evolve_conditions {
            self.config.space.from_genes(individual.chromosome(1))
        } else {
            self.config.pinned_conditions
        };
        Test::from_program(name, TestSource::NeuralGa, program, conditions)
    }

    /// Encodes a candidate test back into an individual, when its stimulus
    /// is a segment program (random and NN-generated tests are; raw
    /// deterministic patterns are not and yield `None`).
    pub fn encode_seed(&self, candidate: &Candidate) -> Option<Individual> {
        let Stimulus::Program(program) = candidate.test.stimulus() else {
            return None;
        };
        let mut chromosomes = vec![program.to_genes()];
        if self.config.evolve_conditions {
            chromosomes.push(self.config.space.to_genes(candidate.test.conditions()));
        }
        Some(Individual::new(chromosomes))
    }

    /// Runs the GA with ATE-measured fitness.
    ///
    /// `seeds` are the fuzzy-neural generator's sub-optimal tests (may be
    /// empty — fig. 5 degrades to a plain GA then). `reference_trip_point`
    /// usually comes from the learning phase; when `None`, the first
    /// evaluated individual establishes it with a full-range search.
    pub fn run<R: Rng + ?Sized>(
        &self,
        ate: &mut Ate,
        seeds: &[Candidate],
        reference_trip_point: Option<f64>,
        rng: &mut R,
    ) -> OptimizationOutcome {
        self.run_traced(ate, seeds, reference_trip_point, rng, &Tracer::disabled())
    }

    /// [`run`](Self::run) with per-evaluation spans and per-generation GA
    /// statistics recorded into `tracer`.
    ///
    /// Each fitness evaluation gets a span keyed by its 0-based global
    /// evaluation index — the same key the parallel variant uses — and
    /// [`TraceEvent::GaGenerationEvaluated`] campaign events are emitted
    /// from the GA history after the run, so sequential and parallel
    /// campaigns describe generations identically.
    pub fn run_traced<R: Rng + ?Sized>(
        &self,
        ate: &mut Ate,
        seeds: &[Candidate],
        reference_trip_point: Option<f64>,
        rng: &mut R,
        tracer: &Tracer,
    ) -> OptimizationOutcome {
        let c = &self.config;
        let param = c.param;
        let order = param.region_order();
        let stp = SearchUntilTrip::new(param.generous_range(), param.search_factor())
            .with_refinement(param.resolution());
        let full = SuccessiveApproximation::new(param.generous_range(), param.resolution());
        let rebracket = RebracketingStp::new(stp, full.clone());
        let start_ledger = *ate.ledger();

        let mut database = WorstCaseDatabase::new(c.database_capacity);
        let mut rtp = reference_trip_point;
        let mut counter = 0usize;

        let seed_individuals: Vec<Individual> = seeds
            .iter()
            .filter_map(|cand| self.encode_seed(cand))
            .collect();
        // Severity predictions, indexed by the seed's stimulus identity so
        // database records can carry them.
        let engine = GaEngine::new(c.ga, self.layout());

        let result = {
            let database = &mut database;
            let rtp = &mut rtp;
            let counter = &mut counter;
            engine.run_seeded(
                seed_individuals,
                |individual| {
                    *counter += 1;
                    // Span keyed by the 0-based evaluation index, matching
                    // the parallel variant's session index.
                    let span = tracer.span(*counter as u64 - 1);
                    let test = self.decode(individual, format!("ga_{:06}", *counter));
                    // GA fitness = TPV measurement via ATE (fig. 5 step 3),
                    // using eq. 2 (full search) only until a reference
                    // exists, then eqs. 3/4 (STP), through the shared
                    // fault-tolerant ladder.
                    let measured = measure_with_recovery(
                        ate, &test, param, *rtp, &full, &rebracket, c.recovery, &span,
                    );
                    let fitness = match measured.trip_point {
                        // Unmeasurable individuals are worthless, not worst.
                        None => f64::NEG_INFINITY,
                        Some(_)
                            if !Self::functionally_verified(
                                ate, &test, param, order, c.recovery, &span,
                            ) =>
                        {
                            f64::NEG_INFINITY
                        }
                        Some(tp) => {
                            if let Some(fresh) = measured.refreshed_reference {
                                // Re-bracketing paid for a full search;
                                // re-anchor on its fresh trip point.
                                *rtp = Some(fresh);
                            } else if rtp.is_none() {
                                *rtp = Some(tp);
                            }
                            let wcr = c.objective.wcr(tp);
                            database.insert(WorstCaseTest {
                                test,
                                trip_point: tp,
                                wcr,
                                class: c.objective.classify(tp),
                                predicted_severity: None,
                            });
                            wcr
                        }
                    };
                    span.mark_done();
                    tracer.absorb(span);
                    fitness
                },
                rng,
            )
        };
        emit_generations(tracer, &result);

        let best = database
            .entries()
            .first()
            .or_else(|| database.failures().first())
            .expect("at least one individual measured")
            .clone();
        OptimizationOutcome {
            database,
            ga: result,
            measurements_used: ate.ledger().measurements_since(&start_ledger),
            best,
            reference_trip_point: rtp,
        }
    }

    /// [`OptimizationScheme::run`] with per-evaluation tester sessions
    /// fanned out across worker threads.
    ///
    /// Each GA fitness evaluation runs on its own session from
    /// `blueprint`, seeded by the global evaluation index, and the
    /// worst-case database and ledger are merged **in evaluation order**.
    /// The outcome is therefore bit-identical for every thread count; for
    /// a noiseless, drift-free blueprint it also equals the sequential
    /// [`OptimizationScheme::run`] on a single shared session.
    ///
    /// When no `reference_trip_point` is given, evaluations proceed
    /// sequentially until one converges and survives functional
    /// verification (eq. 2 anchoring); only the anchored remainder of
    /// each generation's brood fans out.
    ///
    /// Returns the outcome plus the merged measurement ledger.
    pub fn run_parallel<R: Rng + ?Sized>(
        &self,
        blueprint: &ParallelAte,
        seeds: &[Candidate],
        reference_trip_point: Option<f64>,
        policy: ExecPolicy,
        rng: &mut R,
    ) -> (OptimizationOutcome, MeasurementLedger) {
        self.run_parallel_traced(
            blueprint,
            seeds,
            reference_trip_point,
            policy,
            rng,
            &Tracer::disabled(),
        )
    }

    /// [`run_parallel`](Self::run_parallel) with per-evaluation spans
    /// recorded into `tracer`.
    ///
    /// Workers fill each evaluation's span privately; the coordinator
    /// absorbs spans in evaluation order at the same merge point where
    /// ledgers and database inserts fold in, so the sequenced stream is
    /// identical for every thread count.
    pub fn run_parallel_traced<R: Rng + ?Sized>(
        &self,
        blueprint: &ParallelAte,
        seeds: &[Candidate],
        reference_trip_point: Option<f64>,
        policy: ExecPolicy,
        rng: &mut R,
        tracer: &Tracer,
    ) -> (OptimizationOutcome, MeasurementLedger) {
        self.run_parallel_observed(
            blueprint,
            seeds,
            reference_trip_point,
            policy,
            rng,
            tracer,
            &Telemetry::disabled(),
        )
    }

    /// [`run_parallel_traced`](Self::run_parallel_traced) with live
    /// telemetry: the evaluator offers a progress sample at every
    /// evaluation-order merge. Telemetry lives in a parameter — not a
    /// scheme field — because the wafer journal fingerprint embeds
    /// runner state via `Debug`, and this scheme derives `PartialEq`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_parallel_observed<R: Rng + ?Sized>(
        &self,
        blueprint: &ParallelAte,
        seeds: &[Candidate],
        reference_trip_point: Option<f64>,
        policy: ExecPolicy,
        rng: &mut R,
        tracer: &Tracer,
        telemetry: &Telemetry,
    ) -> (OptimizationOutcome, MeasurementLedger) {
        let c = &self.config;
        let seed_individuals: Vec<Individual> = seeds
            .iter()
            .filter_map(|cand| self.encode_seed(cand))
            .collect();
        let engine = GaEngine::new(c.ga, self.layout());
        let mut evaluator = WcrEvaluator {
            scheme: self,
            blueprint,
            policy,
            evaluated: 0,
            rtp: reference_trip_point,
            database: WorstCaseDatabase::new(c.database_capacity),
            ledger: MeasurementLedger::new(),
            tracer,
            telemetry,
        };
        let result = engine.run_seeded_with(seed_individuals, &mut evaluator, rng);
        emit_generations(tracer, &result);
        let best = evaluator
            .database
            .entries()
            .first()
            .or_else(|| evaluator.database.failures().first())
            .expect("at least one individual measured")
            .clone();
        (
            OptimizationOutcome {
                database: evaluator.database,
                ga: result,
                measurements_used: evaluator.ledger.measurements(),
                best,
                reference_trip_point: evaluator.rtp,
            },
            evaluator.ledger,
        )
    }

    /// One fitness evaluation on its own derived-seed session: the §4
    /// trip-point search, functional verification, and WCR scoring of
    /// [`OptimizationScheme::run`]'s fitness closure, made index-pure so
    /// it can run on any worker thread.
    fn evaluate_individual(
        &self,
        blueprint: &ParallelAte,
        index: usize,
        individual: &Individual,
        reference: Option<f64>,
        span: &SpanTrace,
    ) -> WcrEvaluation {
        let c = &self.config;
        let param = c.param;
        let order = param.region_order();
        let stp = SearchUntilTrip::new(param.generous_range(), param.search_factor())
            .with_refinement(param.resolution());
        let full = SuccessiveApproximation::new(param.generous_range(), param.resolution());
        let rebracket = RebracketingStp::new(stp, full.clone());

        let mut session = blueprint.session(index as u64);
        let test = self.decode(individual, format!("ga_{:06}", index + 1));
        let measured = measure_with_recovery(
            &mut session,
            &test,
            param,
            reference,
            &full,
            &rebracket,
            c.recovery,
            span,
        );
        let Some(tp) = measured.trip_point else {
            return WcrEvaluation {
                fitness: f64::NEG_INFINITY,
                entry: None,
                ledger: *session.ledger(),
            };
        };
        if !Self::functionally_verified(&mut session, &test, param, order, c.recovery, span) {
            return WcrEvaluation {
                fitness: f64::NEG_INFINITY,
                entry: None,
                ledger: *session.ledger(),
            };
        }
        let wcr = c.objective.wcr(tp);
        WcrEvaluation {
            fitness: wcr,
            entry: Some(WorstCaseTest {
                test,
                trip_point: tp,
                wcr,
                class: c.objective.classify(tp),
                predicted_severity: None,
            }),
            ledger: *session.ledger(),
        }
    }

    /// Functional verification: re-probe at the pass-region extreme, where
    /// only outright functional failure can reject. A test living on the
    /// edge of its functional envelope flickers under measurement noise
    /// and can fake a deep trip point (§4's "false convergence"); such
    /// candidates must not enter the database. With recovery enabled the
    /// verification strobes run through the same retry / voting ladder,
    /// so a single injected flip cannot disqualify a healthy candidate.
    ///
    /// Both confirmation strobes are issued as one [`BatchOracle`] batch:
    /// the verdicts are bit-identical to two sequential probes, but the
    /// tester amortizes condition setup and device evaluation over the
    /// pair instead of paying it per strobe.
    ///
    /// [`BatchOracle`]: cichar_search::BatchOracle
    fn functionally_verified(
        ate: &mut Ate,
        test: &Test,
        param: MeasuredParam,
        order: RegionOrder,
        recovery: Option<RetryPolicy>,
        span: &SpanTrace,
    ) -> bool {
        use cichar_search::BatchOracle;
        let extreme = match order {
            RegionOrder::PassBelowFail => param.generous_range().start(),
            RegionOrder::PassAboveFail => param.generous_range().end(),
        };
        // Verification strobes report into the evaluation's span (fault
        // and retry events), like the measurement they vet.
        ate.set_trace(span.clone());
        let verified = match recovery {
            None => ate
                .trip_oracle(test, param)
                .probe_batch(&[extreme, extreme])
                .iter()
                .all(|&p| p == Probe::Pass),
            Some(policy) => {
                let mut oracle = ate.robust_oracle(test, param, policy);
                let verified = oracle
                    .probe_batch(&[extreme, extreme])
                    .iter()
                    .all(|&p| p == Probe::Pass);
                let stats = oracle.into_stats();
                ate.absorb_recovery(&stats);
                verified
            }
        };
        ate.set_trace(SpanTrace::disabled());
        verified
    }
}

/// Emits one [`TraceEvent::GaGenerationEvaluated`] campaign event per
/// generation of `result`'s history, after the evaluations themselves have
/// been absorbed.
fn emit_generations(tracer: &Tracer, result: &GaResult) {
    if !tracer.is_enabled() {
        return;
    }
    for stats in &result.history {
        tracer.emit_campaign(TraceEvent::GaGenerationEvaluated {
            generation: stats.generation as u64,
            best_so_far: stats.best_so_far,
            generation_best: stats.generation_best,
            mean: stats.mean,
        });
    }
}

/// The product of one parallel fitness evaluation, merged by index.
struct WcrEvaluation {
    fitness: f64,
    /// The database record when the search converged and survived
    /// functional verification (its trip point is the anchor candidate).
    entry: Option<WorstCaseTest>,
    ledger: MeasurementLedger,
}

/// The ATE-measured WCR fitness as a batch evaluator: anchors the
/// reference trip point sequentially, fans out anchored evaluations, and
/// folds ledgers and database inserts back **in evaluation order**.
struct WcrEvaluator<'a> {
    scheme: &'a OptimizationScheme,
    blueprint: &'a ParallelAte,
    policy: ExecPolicy,
    evaluated: usize,
    rtp: Option<f64>,
    database: WorstCaseDatabase,
    ledger: MeasurementLedger,
    tracer: &'a Tracer,
    telemetry: &'a Telemetry,
}

impl FitnessEvaluator for WcrEvaluator<'_> {
    fn evaluate(&mut self, individual: &Individual) -> f64 {
        self.evaluate_batch(std::slice::from_ref(individual))[0]
    }

    fn evaluate_batch(&mut self, batch: &[Individual]) -> Vec<f64> {
        let base = self.evaluated;
        self.evaluated += batch.len();
        let mut records: Vec<(WcrEvaluation, SpanTrace)> = Vec::with_capacity(batch.len());
        // Eq. 2 anchoring is a data dependence: run sequentially until a
        // verified trip point exists.
        let mut cursor = 0;
        while cursor < batch.len() && self.rtp.is_none() {
            let span = self.tracer.span((base + cursor) as u64);
            let record = self.scheme.evaluate_individual(
                self.blueprint,
                base + cursor,
                &batch[cursor],
                None,
                &span,
            );
            self.rtp = record.entry.as_ref().map(|e| e.trip_point);
            span.mark_done();
            records.push((record, span));
            cursor += 1;
        }
        let reference = self.rtp;
        let (scheme, blueprint, tracer) = (self.scheme, self.blueprint, self.tracer);
        records.extend(cichar_exec::par_map_ref(
            self.policy,
            &batch[cursor..],
            |i, individual| {
                let span = tracer.span((base + cursor + i) as u64);
                let record = scheme.evaluate_individual(
                    blueprint,
                    base + cursor + i,
                    individual,
                    reference,
                    &span,
                );
                span.mark_done();
                (record, span)
            },
        ));
        records
            .into_iter()
            .enumerate()
            .map(|(i, (record, span))| {
                self.ledger.merge(&record.ledger);
                self.tracer.absorb(span);
                if let Some(entry) = record.entry {
                    self.database.insert(entry);
                }
                // Evaluation-order merge = the GA's deterministic fold
                // point. The total evaluation count is unknown up front
                // (early stop, stagnation restarts), so it reads as 0.
                self.telemetry.tick(|| {
                    Progress::units(
                        "ga",
                        (self.ledger.test_time_ms() * 1000.0) as u64,
                        (base + i + 1) as u64,
                        0,
                    )
                });
                record.fitness
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsv::{MultiTripRunner, SearchStrategy};
    use crate::wcr::WcrClass;
    use cichar_dut::MemoryDevice;
    use cichar_patterns::random;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> OptimizationConfig {
        OptimizationConfig {
            ga: GaConfig {
                population_size: 16,
                islands: 2,
                generations: 12,
                stagnation_restart: 8,
                target_fitness: Some(1.0),
                ..GaConfig::default()
            },
            ..OptimizationConfig::default()
        }
    }

    #[test]
    fn ga_finds_worse_tests_than_random_sampling() {
        let scheme = OptimizationScheme::new(small_config());
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let mut rng = StdRng::seed_from_u64(41);
        let outcome = scheme.run(&mut ate, &[], None, &mut rng);

        // Random baseline with the same measurement style.
        let runner = MultiTripRunner::new(MeasuredParam::DataValidTime);
        let mut rng2 = StdRng::seed_from_u64(42);
        let randoms: Vec<Test> = (0..60)
            .map(|_| random::random_test_at(&mut rng2, TestConditions::nominal()))
            .collect();
        let mut ate2 = Ate::noiseless(MemoryDevice::nominal());
        let report = runner.run(&mut ate2, &randoms, SearchStrategy::SearchUntilTrip);
        let random_best = report.min().expect("converged");

        assert!(
            outcome.best.trip_point < random_best,
            "GA best {} should beat 60 random tests' best {random_best}",
            outcome.best.trip_point
        );
    }

    #[test]
    fn database_is_populated_and_sorted() {
        let scheme = OptimizationScheme::new(small_config());
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let mut rng = StdRng::seed_from_u64(43);
        let outcome = scheme.run(&mut ate, &[], None, &mut rng);
        assert!(!outcome.database.is_empty());
        let wcrs: Vec<f64> = outcome.database.entries().iter().map(|e| e.wcr).collect();
        for pair in wcrs.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
        assert_eq!(outcome.best.wcr, wcrs[0].max(outcome.best.wcr));
    }

    #[test]
    fn measurements_are_accounted() {
        let scheme = OptimizationScheme::new(small_config());
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let mut rng = StdRng::seed_from_u64(44);
        let outcome = scheme.run(&mut ate, &[], None, &mut rng);
        assert_eq!(outcome.measurements_used, ate.ledger().measurements());
        assert!(outcome.measurements_used > outcome.ga.evaluations as u64);
    }

    #[test]
    fn known_reference_skips_full_searches() {
        let scheme = OptimizationScheme::new(small_config());
        let mut rng = StdRng::seed_from_u64(45);
        let mut ate_b = Ate::noiseless(MemoryDevice::nominal());
        let without_ref = scheme.run(&mut ate_b, &[], None, &mut rng);
        // Replay the identical campaign, but hand it the reference the
        // first run had to pay a full search (eq. 2) to discover. Same GA
        // trajectory (same seeds, same reference), one full search less.
        let mut rng = StdRng::seed_from_u64(45);
        let mut ate_a = Ate::noiseless(MemoryDevice::nominal());
        let with_ref = scheme.run(&mut ate_a, &[], without_ref.reference_trip_point, &mut rng);
        assert!(without_ref.reference_trip_point.is_some());
        assert_eq!(with_ref.reference_trip_point, without_ref.reference_trip_point);
        assert!(with_ref.measurements_used <= without_ref.measurements_used);
    }

    #[test]
    fn decode_respects_pinned_conditions() {
        let scheme = OptimizationScheme::new(small_config());
        let mut rng = StdRng::seed_from_u64(46);
        let ind = scheme.layout().random(&mut rng);
        let test = scheme.decode(&ind, "t");
        assert_eq!(*test.conditions(), TestConditions::nominal());
        assert_eq!(test.source(), TestSource::NeuralGa);
    }

    #[test]
    fn two_species_layout_when_conditions_evolve() {
        let scheme = OptimizationScheme::new(OptimizationConfig {
            evolve_conditions: true,
            ..small_config()
        });
        assert_eq!(scheme.layout().chromosome_count(), 2);
        let mut rng = StdRng::seed_from_u64(47);
        let ind = scheme.layout().random(&mut rng);
        let test = scheme.decode(&ind, "t");
        assert!(scheme.config().space.validate(test.conditions()).is_ok());
    }

    #[test]
    fn evolved_conditions_find_harsher_corners() {
        // With the condition species active the GA should discover that
        // low Vdd / high temperature / fast clock shrink the window.
        let scheme = OptimizationScheme::new(OptimizationConfig {
            evolve_conditions: true,
            ga: GaConfig {
                population_size: 16,
                islands: 2,
                generations: 30,
                target_fitness: None,
                ..GaConfig::default()
            },
            ..OptimizationConfig::default()
        });
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let mut rng = StdRng::seed_from_u64(48);
        let outcome = scheme.run(&mut ate, &[], None, &mut rng);
        let best_vdd = outcome.best.test.conditions().vdd.value();
        assert!(
            best_vdd < 1.7,
            "GA should starve the supply, got {best_vdd} V"
        );
        assert!(outcome.best.trip_point < 24.0, "{}", outcome.best);
    }

    #[test]
    fn seeds_are_encoded_and_used() {
        let scheme = OptimizationScheme::new(small_config());
        let mut rng = StdRng::seed_from_u64(49);
        let seed_test = random::random_test_at(&mut rng, TestConditions::nominal());
        let candidate = Candidate {
            test: seed_test,
            predicted_severity: 0.9,
            confidence: 0.8,
        };
        let encoded = scheme.encode_seed(&candidate).expect("program stimulus");
        assert_eq!(encoded.chromosomes.len(), 1);
        assert!(scheme.layout().validate(&encoded));
        // Raw-pattern tests cannot seed.
        let raw = Candidate {
            test: Test::deterministic("m", cichar_patterns::march::march_x(96)),
            predicted_severity: 0.5,
            confidence: 0.5,
        };
        assert!(scheme.encode_seed(&raw).is_none());
    }

    #[test]
    fn wcr_target_stops_early_when_reachable() {
        // An absurdly low WCR target: the very first generation satisfies
        // it, so the run must stop far short of the generation budget.
        let scheme = OptimizationScheme::new(OptimizationConfig {
            ga: GaConfig {
                population_size: 12,
                islands: 1,
                generations: 50,
                target_fitness: Some(0.55),
                ..GaConfig::default()
            },
            ..OptimizationConfig::default()
        });
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let mut rng = StdRng::seed_from_u64(50);
        let outcome = scheme.run(&mut ate, &[], None, &mut rng);
        assert!(
            outcome.ga.history.len() < 50,
            "stopped after {} generations",
            outcome.ga.history.len()
        );
        assert!(outcome.best.wcr >= 0.55);
    }

    #[test]
    fn parallel_run_matches_sequential_on_noiseless_sessions() {
        use cichar_ate::{AteConfig, DriftModel, NoiseModel};
        let scheme = OptimizationScheme::new(small_config());
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let sequential = scheme.run(&mut ate, &[], None, &mut StdRng::seed_from_u64(52));
        let blueprint = ParallelAte::new(
            MemoryDevice::nominal(),
            AteConfig {
                noise: NoiseModel::noiseless(),
                drift: DriftModel::none(),
                seed: 0,
                ..AteConfig::default()
            },
        );
        let (parallel, ledger) = scheme.run_parallel(
            &blueprint,
            &[],
            None,
            ExecPolicy::with_threads(4),
            &mut StdRng::seed_from_u64(52),
        );
        assert_eq!(parallel, sequential);
        assert_eq!(ledger.measurements(), sequential.measurements_used);
    }

    #[test]
    fn parallel_run_is_thread_count_invariant_even_with_noise() {
        use cichar_ate::AteConfig;
        let scheme = OptimizationScheme::new(small_config());
        // Default config is noisy: per-evaluation derived seeds keep the
        // GA trajectory schedule independent anyway.
        let blueprint = ParallelAte::new(MemoryDevice::nominal(), AteConfig::default());
        let run = |threads: usize| {
            scheme.run_parallel(
                &blueprint,
                &[],
                None,
                ExecPolicy::with_threads(threads),
                &mut StdRng::seed_from_u64(53),
            )
        };
        let (serial_outcome, serial_ledger) = run(1);
        let (wide_outcome, wide_ledger) = run(8);
        assert_eq!(wide_outcome, serial_outcome);
        assert_eq!(wide_ledger, serial_ledger);
    }

    #[test]
    fn faulty_fitness_with_recovery_is_thread_count_invariant() {
        use cichar_ate::{AteConfig, TesterFaultModel};
        let scheme = OptimizationScheme::new(OptimizationConfig {
            recovery: Some(RetryPolicy::new(3, 100.0).with_vote(2, 3)),
            ..small_config()
        });
        let blueprint = ParallelAte::new(
            MemoryDevice::nominal(),
            AteConfig {
                faults: TesterFaultModel::transient(0.02, 0.01),
                seed: 7,
                ..AteConfig::default()
            },
        );
        let run = |threads: usize| {
            scheme.run_parallel(
                &blueprint,
                &[],
                None,
                ExecPolicy::with_threads(threads),
                &mut StdRng::seed_from_u64(54),
            )
        };
        let (serial_outcome, serial_ledger) = run(1);
        let (wide_outcome, wide_ledger) = run(8);
        assert_eq!(wide_outcome, serial_outcome);
        assert_eq!(wide_ledger, serial_ledger);
        // The injected faults and their recovery show up in the ledger.
        assert!(serial_ledger.injected_faults() > 0);
        assert!(serial_ledger.retries() > 0);
        // And the campaign still produced a plausible worst case.
        assert!(serial_outcome.best.trip_point.is_finite());
    }

    #[test]
    fn functional_verification_spends_exactly_two_batched_strobes() {
        use cichar_ate::{AteConfig, NoiseModel};
        let test = Test::deterministic("m", cichar_patterns::march::march_x(96));
        let param = MeasuredParam::DataValidTime;
        let order = param.region_order();
        let span = SpanTrace::disabled();
        // Probe-count regression: the batched pair must cost the same two
        // measurements the scalar loop always did — amortization, not
        // extra strobes.
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        assert!(OptimizationScheme::functionally_verified(
            &mut ate, &test, param, order, None, &span
        ));
        assert_eq!(ate.ledger().measurements(), 2);
        // And the batch changes no physics: on a noisy twin session the
        // two batched strobes see exactly the noise draws two sequential
        // measurements would have.
        let config = AteConfig {
            noise: NoiseModel::new(0.05, 0.1, 0.01),
            seed: 23,
            ..AteConfig::default()
        };
        let mut batched = Ate::with_config(MemoryDevice::nominal(), config.clone());
        let verified = OptimizationScheme::functionally_verified(
            &mut batched,
            &test,
            param,
            order,
            None,
            &span,
        );
        let mut scalar = Ate::with_config(MemoryDevice::nominal(), config);
        let extreme = param.generous_range().start();
        let sequential =
            (0..2).all(|_| scalar.measure(&test, param, extreme) == Probe::Pass);
        assert_eq!(verified, sequential);
        assert_eq!(*batched.ledger(), *scalar.ledger());
    }

    #[test]
    fn outcome_display_mentions_cost() {
        let scheme = OptimizationScheme::new(small_config());
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let mut rng = StdRng::seed_from_u64(51);
        let outcome = scheme.run(&mut ate, &[], None, &mut rng);
        assert!(outcome.to_string().contains("ATE measurements"));
        assert_ne!(outcome.best.class, WcrClass::Fail, "device is healthy");
    }
}
