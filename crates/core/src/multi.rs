//! Multi-parameter characterization campaigns.
//!
//! §5: "It is very complicated to model a NN with multiple output
//! classification ability. Thus we propose to pre-select a set of DC or AC
//! critical parameters; and generate NNs individually for each parameter
//! or each characterization analysis task." And fig. 5's closing: "at the
//! end of the complete iterative analysis, a final set of worst case tests
//! is identified, covering all considered fitness variables."
//!
//! [`MultiParamCampaign`] runs the full learning + optimization pipeline
//! once per parameter — one committee, one GA, one database each — and
//! merges the results into a cross-parameter worst-case suite.

use crate::db::WorstCaseTest;
use crate::generator::NeuralTestGenerator;
use crate::learning::{LearnedModel, LearningConfig, LearningScheme};
use crate::optimization::{OptimizationConfig, OptimizationOutcome, OptimizationScheme};
use crate::wcr::CharacterizationObjective;
use cichar_ate::{Ate, MeasuredParam, MeasurementLedger, ParallelAte};
use cichar_exec::ExecPolicy;
use cichar_patterns::TestConditions;
use cichar_search::RetryPolicy;
use cichar_trace::Tracer;
use rand::Rng;
use std::fmt;

/// One parameter's analysis task: which parameter, which drift objective.
///
/// The objectives mirror the device's data sheet: `T_DQ` and `f_max` are
/// minimum-limited for the reading below... more precisely `T_DQ` is
/// minimum-limited (eq. 6), `f_max` maximum-referenced against the
/// operating point, `Vdd_min` maximum-limited (a rising `vdd_min` is the
/// drift direction that hurts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalysisTask {
    /// The measured parameter.
    pub param: MeasuredParam,
    /// Its WCR objective.
    pub objective: CharacterizationObjective,
}

impl AnalysisTask {
    /// The default data-sheet task set:
    ///
    /// * `T_DQ` ≥ 20 ns (eq. 6, §6's experiment),
    /// * `f_max` must stay above the 100 MHz operating point (eq. 6 on a
    ///   minimum-limited reading of the spec),
    /// * `Vdd_min` must stay below 1.62 V, the minimum supported supply
    ///   rail minus margin (eq. 5).
    pub fn data_sheet() -> Vec<AnalysisTask> {
        vec![
            AnalysisTask {
                param: MeasuredParam::DataValidTime,
                objective: CharacterizationObjective::drift_to_minimum(20.0),
            },
            AnalysisTask {
                param: MeasuredParam::MaxFrequency,
                objective: CharacterizationObjective::drift_to_minimum(100.0),
            },
            AnalysisTask {
                param: MeasuredParam::MinVoltage,
                objective: CharacterizationObjective::drift_to_maximum(1.62),
            },
        ]
    }
}

/// One parameter's campaign result.
#[derive(Debug, Clone)]
pub struct TaskOutcome {
    /// The analysis task.
    pub task: AnalysisTask,
    /// The trained per-parameter model (fig. 4's "generate NNs
    /// individually for each parameter").
    pub model: LearnedModel,
    /// The optimization result with its database.
    pub optimization: OptimizationOutcome,
}

/// The merged multi-parameter result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-task outcomes, in task order.
    pub tasks: Vec<TaskOutcome>,
    /// Total ATE measurements across the campaign.
    pub total_measurements: u64,
    /// The campaign-scoped measurement ledger: cost, fault, and recovery
    /// accounting for exactly this campaign's tester activity (parallel
    /// worker-session ledgers merged in). Every injected fault the tester
    /// reported during the campaign shows up here, whether it was retried
    /// away, voted down, or ended in a quarantined point.
    pub ledger: MeasurementLedger,
}

impl CampaignReport {
    /// The final cross-parameter worst-case suite: each task's worst test,
    /// labelled with its parameter — "covering all considered fitness
    /// variables".
    pub fn worst_case_suite(&self) -> Vec<(MeasuredParam, WorstCaseTest)> {
        self.tasks
            .iter()
            .map(|t| (t.task.param, t.optimization.best.clone()))
            .collect()
    }

    /// Whether any parameter's worst case crossed into fig. 6's weakness
    /// or fail band.
    pub fn has_findings(&self) -> bool {
        self.tasks.iter().any(|t| t.optimization.best.wcr > 0.8)
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "multi-parameter campaign: {} tasks, {} measurements",
            self.tasks.len(),
            self.total_measurements
        )?;
        if self.ledger.injected_faults() > 0 || self.ledger.quarantined() > 0 {
            writeln!(
                f,
                "  tester faults: {} dropouts, {} flips, {} stuck, {} aborts → {} retries, {} quarantined",
                self.ledger.dropouts(),
                self.ledger.flips(),
                self.ledger.stuck_probes(),
                self.ledger.aborts(),
                self.ledger.retries(),
                self.ledger.quarantined()
            )?;
        }
        for t in &self.tasks {
            writeln!(
                f,
                "  {}: worst {} (WCR {:.3}, {})",
                t.task.param,
                t.optimization.best.test.name(),
                t.optimization.best.wcr,
                t.optimization.best.class
            )?;
        }
        Ok(())
    }
}

/// Runs the figs. 4+5 pipeline once per analysis task.
#[derive(Debug, Clone)]
pub struct MultiParamCampaign {
    tasks: Vec<AnalysisTask>,
    learning: LearningConfig,
    optimization: OptimizationConfig,
    nn_candidates: usize,
    nn_seeds: usize,
    conditions: TestConditions,
}

impl MultiParamCampaign {
    /// Creates a campaign over the given tasks with shared phase budgets.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty.
    pub fn new(
        tasks: Vec<AnalysisTask>,
        learning: LearningConfig,
        optimization: OptimizationConfig,
    ) -> Self {
        assert!(!tasks.is_empty(), "campaign needs at least one task");
        Self {
            tasks,
            learning,
            optimization,
            nn_candidates: 600,
            nn_seeds: 16,
            conditions: TestConditions::nominal(),
        }
    }

    /// Sets the fuzzy-neural screening budget.
    pub fn with_screening(mut self, candidates: usize, seeds: usize) -> Self {
        self.nn_candidates = candidates;
        self.nn_seeds = seeds;
        self
    }

    /// Applies a fault-recovery policy to every task's measured fitness
    /// evaluations (see [`OptimizationConfig::recovery`]). The learning
    /// rounds tolerate tester faults without it — unconverged trip points
    /// are simply excluded from the training set.
    pub fn with_recovery(mut self, policy: RetryPolicy) -> Self {
        self.optimization.recovery = Some(policy);
        self
    }

    /// The campaign's tasks.
    pub fn tasks(&self) -> &[AnalysisTask] {
        &self.tasks
    }

    /// Runs every task against the tester.
    pub fn run<R: Rng + ?Sized>(&self, ate: &mut Ate, rng: &mut R) -> CampaignReport {
        self.run_traced(ate, rng, &Tracer::disabled())
    }

    /// [`run`](Self::run) with the campaign recorded into `tracer`: a
    /// phase-change event opens each task (named after its parameter), and
    /// the learning and optimization stages record their per-measurement
    /// spans through their traced sub-runs.
    pub fn run_traced<R: Rng + ?Sized>(
        &self,
        ate: &mut Ate,
        rng: &mut R,
        tracer: &Tracer,
    ) -> CampaignReport {
        let start = *ate.ledger();
        let mut outcomes = Vec::with_capacity(self.tasks.len());
        for task in &self.tasks {
            tracer.phase(&task.param.to_string());
            let learning = LearningConfig {
                param: task.param,
                objective: task.objective,
                ..self.learning.clone()
            };
            let model = LearningScheme::new(learning).run_traced(ate, rng, tracer);
            let generator = NeuralTestGenerator::new(&model);
            let seeds =
                generator.propose(self.nn_candidates, self.nn_seeds, Some(self.conditions), rng);
            let optimization = OptimizationConfig {
                param: task.param,
                objective: task.objective,
                pinned_conditions: self.conditions,
                ..self.optimization.clone()
            };
            let outcome = OptimizationScheme::new(optimization).run_traced(
                ate,
                &seeds,
                Some(model.reference_trip_point),
                rng,
                tracer,
            );
            outcomes.push(TaskOutcome {
                task: *task,
                model,
                optimization: outcome,
            });
        }
        let ledger = ate.ledger().since(&start);
        CampaignReport {
            tasks: outcomes,
            total_measurements: ledger.measurements(),
            ledger,
        }
    }

    /// [`run`](Self::run) with each task's GA fitness evaluation fanned
    /// out across the thread policy. The learning rounds stay on the
    /// shared session (they are data-dependent by design); the
    /// optimization stage clones the tester into per-individual
    /// derived-seed sessions.
    ///
    /// Bit-identical to [`run`](Self::run) on a noiseless, drift-free
    /// tester, and bit-identical across thread counts always.
    pub fn run_parallel<R: Rng + ?Sized>(
        &self,
        ate: &mut Ate,
        policy: ExecPolicy,
        rng: &mut R,
    ) -> CampaignReport {
        self.run_parallel_traced(ate, policy, rng, &Tracer::disabled())
    }

    /// [`run_parallel`](Self::run_parallel) with the campaign recorded
    /// into `tracer` — see [`run_traced`](Self::run_traced) for the event
    /// layout. Spans from parallel fitness evaluations are absorbed in
    /// evaluation order, so the stream is identical for every thread
    /// count.
    pub fn run_parallel_traced<R: Rng + ?Sized>(
        &self,
        ate: &mut Ate,
        policy: ExecPolicy,
        rng: &mut R,
        tracer: &Tracer,
    ) -> CampaignReport {
        let start = *ate.ledger();
        let mut parallel_ledger = MeasurementLedger::new();
        let mut outcomes = Vec::with_capacity(self.tasks.len());
        for task in &self.tasks {
            tracer.phase(&task.param.to_string());
            let learning = LearningConfig {
                param: task.param,
                objective: task.objective,
                ..self.learning.clone()
            };
            let model = LearningScheme::new(learning).run_traced(ate, rng, tracer);
            let generator = NeuralTestGenerator::new(&model);
            let seeds =
                generator.propose(self.nn_candidates, self.nn_seeds, Some(self.conditions), rng);
            let optimization = OptimizationConfig {
                param: task.param,
                objective: task.objective,
                pinned_conditions: self.conditions,
                ..self.optimization.clone()
            };
            let blueprint = ParallelAte::from_ate(ate);
            let (outcome, ledger) = OptimizationScheme::new(optimization).run_parallel_traced(
                &blueprint,
                &seeds,
                Some(model.reference_trip_point),
                policy,
                rng,
                tracer,
            );
            parallel_ledger.merge(&ledger);
            outcomes.push(TaskOutcome {
                task: *task,
                model,
                optimization: outcome,
            });
        }
        let mut ledger = ate.ledger().since(&start);
        ledger.merge(&parallel_ledger);
        CampaignReport {
            tasks: outcomes,
            total_measurements: ledger.measurements(),
            ledger,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cichar_dut::MemoryDevice;
    use cichar_fuzzy::coding::CodingScheme;
    use cichar_genetic::GaConfig;
    use cichar_neural::TrainConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_campaign() -> MultiParamCampaign {
        MultiParamCampaign::new(
            AnalysisTask::data_sheet(),
            LearningConfig {
                tests_per_round: 50,
                max_rounds: 1,
                committee_size: 2,
                hidden: vec![10],
                coding: CodingScheme::Numeric,
                train: TrainConfig {
                    epochs: 100,
                    ..TrainConfig::default()
                },
                ..LearningConfig::default()
            },
            OptimizationConfig {
                ga: GaConfig {
                    population_size: 14,
                    islands: 1,
                    generations: 8,
                    target_fitness: Some(1.0),
                    ..GaConfig::default()
                },
                database_capacity: 8,
                ..OptimizationConfig::default()
            },
        )
        .with_screening(200, 8)
    }

    #[test]
    fn campaign_covers_all_parameters() {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let mut rng = StdRng::seed_from_u64(31);
        let report = tiny_campaign().run(&mut ate, &mut rng);
        assert_eq!(report.tasks.len(), 3);
        let suite = report.worst_case_suite();
        let params: Vec<MeasuredParam> = suite.iter().map(|(p, _)| *p).collect();
        assert_eq!(
            params,
            vec![
                MeasuredParam::DataValidTime,
                MeasuredParam::MaxFrequency,
                MeasuredParam::MinVoltage
            ]
        );
    }

    #[test]
    fn per_parameter_models_are_independent() {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let mut rng = StdRng::seed_from_u64(32);
        let report = tiny_campaign().run(&mut ate, &mut rng);
        // Each task trained its own committee against its own objective.
        let rtps: Vec<f64> = report.tasks.iter().map(|t| t.model.reference_trip_point).collect();
        assert!(rtps[0] > 20.0 && rtps[0] < 36.0, "t_dq rtp {}", rtps[0]);
        assert!(rtps[1] > 90.0 && rtps[1] < 120.0, "f_max rtp {}", rtps[1]);
        assert!(rtps[2] > 1.3 && rtps[2] < 1.6, "vdd_min rtp {}", rtps[2]);
    }

    #[test]
    fn worst_cases_are_physically_ordered() {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let mut rng = StdRng::seed_from_u64(33);
        let report = tiny_campaign().run(&mut ate, &mut rng);
        // The t_dq worst case provokes a deeper window than the March
        // baseline (the GA found something), and the vdd_min worst case
        // pushed vdd_min up, not down.
        let t_dq = &report.tasks[0].optimization.best;
        assert!(t_dq.trip_point < 30.0, "{}", t_dq.trip_point);
        let vdd_min = &report.tasks[2].optimization.best;
        assert!(vdd_min.trip_point > 1.36, "{}", vdd_min.trip_point);
    }

    #[test]
    fn measurements_accumulate_across_tasks() {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let mut rng = StdRng::seed_from_u64(34);
        let report = tiny_campaign().run(&mut ate, &mut rng);
        assert_eq!(report.total_measurements, ate.ledger().measurements());
        let per_task: u64 = report
            .tasks
            .iter()
            .map(|t| t.model.measurements_used + t.optimization.measurements_used)
            .sum();
        assert_eq!(report.total_measurements, per_task);
    }

    #[test]
    fn parallel_campaign_reproduces_the_sequential_run() {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let mut rng = StdRng::seed_from_u64(31);
        let sequential = tiny_campaign().run(&mut ate, &mut rng);
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let mut rng = StdRng::seed_from_u64(31);
        let parallel =
            tiny_campaign().run_parallel(&mut ate, ExecPolicy::with_threads(8), &mut rng);
        assert_eq!(sequential.total_measurements, parallel.total_measurements);
        for (s, p) in sequential.tasks.iter().zip(&parallel.tasks) {
            assert_eq!(s.model.reference_trip_point, p.model.reference_trip_point);
            assert_eq!(s.optimization.best.trip_point, p.optimization.best.trip_point);
            assert_eq!(s.optimization.best.test, p.optimization.best.test);
            assert_eq!(
                s.optimization.measurements_used,
                p.optimization.measurements_used
            );
        }
    }

    #[test]
    fn display_names_every_parameter() {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let mut rng = StdRng::seed_from_u64(35);
        let report = tiny_campaign().run(&mut ate, &mut rng);
        let text = report.to_string();
        assert!(text.contains("T_DQ"), "{text}");
        assert!(text.contains("f_max"), "{text}");
        assert!(text.contains("Vdd_min"), "{text}");
    }

    #[test]
    fn faulty_campaign_accounts_faults_and_stays_thread_invariant() {
        use cichar_ate::{AteConfig, TesterFaultModel};
        use cichar_search::RetryPolicy;
        let config = AteConfig {
            faults: TesterFaultModel::transient(0.02, 0.01),
            seed: 41,
            ..AteConfig::default()
        };
        let campaign = tiny_campaign().with_recovery(RetryPolicy::new(3, 100.0).with_vote(2, 3));
        let run = |policy: ExecPolicy| {
            let mut ate = Ate::with_config(MemoryDevice::nominal(), config.clone());
            let mut rng = StdRng::seed_from_u64(41);
            campaign.run_parallel(&mut ate, policy, &mut rng)
        };
        let serial = run(ExecPolicy::serial());
        assert!(serial.ledger.injected_faults() > 0, "{}", serial.ledger);
        assert!(serial.ledger.retries() > 0, "{}", serial.ledger);
        assert_eq!(serial.total_measurements, serial.ledger.measurements());
        assert!(serial.to_string().contains("tester faults:"), "{serial}");
        let wide = run(ExecPolicy::with_threads(8));
        assert_eq!(wide.ledger, serial.ledger);
        for (s, w) in serial.tasks.iter().zip(&wide.tasks) {
            assert_eq!(s.optimization.best.trip_point, w.optimization.best.trip_point);
            assert_eq!(s.optimization.best.test, w.optimization.best.test);
        }
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn rejects_empty_task_list() {
        let _ = MultiParamCampaign::new(
            vec![],
            LearningConfig::default(),
            OptimizationConfig::default(),
        );
    }
}
