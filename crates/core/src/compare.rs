//! The Table 1 harness: deterministic vs random vs NN+GA.
//!
//! §6 compares three techniques for finding the worst-case `T_DQ` at
//! Vdd = 1.8 V against the 20 ns spec:
//!
//! | Test name   | Technique        | WCR   | T_DQ    |
//! |-------------|------------------|-------|---------|
//! | March Test  | Deterministic    | 0.619 | 32.3 ns |
//! | Random Test | Random           | 0.701 | 28.5 ns |
//! | NNGA Test   | Neural & Genetic | 0.904 | 22.1 ns |
//!
//! [`Comparison::run`] reproduces the three rows on the simulated device
//! with the same measurement machinery for each technique, and reports the
//! per-technique ATE cost alongside (the paper notes its method trades
//! test time for coverage).

use crate::dsv::{DsvReport, MultiTripRunner, SearchStrategy};
use crate::generator::NeuralTestGenerator;
use crate::learning::{LearnedModel, LearningConfig, LearningScheme};
use crate::optimization::{OptimizationConfig, OptimizationOutcome, OptimizationScheme};
use crate::wcr::{CharacterizationObjective, WcrClass};
use cichar_ate::{Ate, MeasuredParam, ParallelAte};
use cichar_exec::ExecPolicy;
use cichar_patterns::{march, random, Test, TestConditions};
use cichar_trace::{Telemetry, Tracer};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of the three-technique comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareConfig {
    /// The characterized parameter and WCR objective.
    pub param: MeasuredParam,
    /// WCR objective (Table 1 uses eq. 6 with vmin = 20 ns).
    pub objective: CharacterizationObjective,
    /// The fixed corner (Table 1: Vdd = 1.8 V).
    pub conditions: TestConditions,
    /// Random tests measured for the Random row (the paper overlays 1000).
    pub random_tests: usize,
    /// Learning-phase configuration for the NN+GA row.
    pub learning: LearningConfig,
    /// Candidates screened by the fuzzy-neural generator.
    pub nn_candidates: usize,
    /// Screened candidates seeding the GA.
    pub nn_seeds: usize,
    /// Optimization-phase configuration.
    pub optimization: OptimizationConfig,
}

impl Default for CompareConfig {
    /// A laptop-scale budget that preserves the Table 1 shape (see
    /// `DESIGN.md` §6). The paper's full budget is reached by raising
    /// `random_tests`, `learning.tests_per_round` and the GA generations.
    fn default() -> Self {
        Self {
            param: MeasuredParam::DataValidTime,
            objective: CharacterizationObjective::drift_to_minimum(20.0),
            conditions: TestConditions::nominal(),
            random_tests: 200,
            learning: LearningConfig::default(),
            nn_candidates: 1500,
            nn_seeds: 24,
            optimization: OptimizationConfig::default(),
        }
    }
}

/// One Table 1 row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Test name column.
    pub test_name: String,
    /// Technique column.
    pub technique: String,
    /// WCR column (eq. 6).
    pub wcr: f64,
    /// `T_DQ` column in nanoseconds.
    pub t_dq: f64,
    /// Fig. 6 class (not printed by the paper but implied by fig. 6).
    pub class: WcrClass,
    /// ATE measurements this technique consumed (cost context the paper
    /// discusses in §7).
    pub measurements: u64,
}

/// The reproduced Table 1 plus the artifacts each technique produced.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The three rows, in the paper's order.
    pub rows: Vec<Table1Row>,
    /// The random row's full DSV (feeds fig. 2 / fig. 8).
    pub random_report: DsvReport,
    /// The learned model (feeds fig. 8's NN-screened overlays).
    pub model: LearnedModel,
    /// The optimization outcome (worst-case database).
    pub optimization: OptimizationOutcome,
}

impl Comparison {
    /// Runs all three techniques on the given tester.
    ///
    /// # Panics
    ///
    /// Panics if any technique fails to measure a trip point — the default
    /// ranges bracket the simulated device by construction.
    pub fn run<R: Rng + ?Sized>(ate: &mut Ate, config: &CompareConfig, rng: &mut R) -> Self {
        let runner = MultiTripRunner::new(config.param);

        // Row 1 — deterministic March test, the production baseline.
        let march_test = Test::deterministic("March Test", march::march_c_minus(64))
            .with_conditions(config.conditions);
        let baseline = *ate.ledger();
        let march_report = runner.run(ate, &[march_test], SearchStrategy::FullRange);
        let march_tp = march_report.entries[0]
            .trip_point
            .expect("March trip point in generous range");
        let march_cost = ate.ledger().measurements_since(&baseline);

        // Row 2 — the refs-[9][10] random generator, best of N tests.
        let random_tests: Vec<Test> = (0..config.random_tests)
            .map(|_| random::random_test_at(rng, config.conditions))
            .collect();
        let baseline = *ate.ledger();
        let random_report = runner.run(ate, &random_tests, SearchStrategy::SearchUntilTrip);
        let random_tp = random_report.min().expect("random tests converge");
        let random_cost = ate.ledger().measurements_since(&baseline);

        // Row 3 — the paper's method: learn (fig. 4), screen, optimize
        // (fig. 5).
        let baseline = *ate.ledger();
        let model = LearningScheme::new(config.learning.clone()).run(ate, rng);
        let generator = NeuralTestGenerator::new(&model);
        let seeds = generator.propose(
            config.nn_candidates,
            config.nn_seeds,
            Some(config.conditions),
            rng,
        );
        let optimization = OptimizationScheme::new(config.optimization.clone()).run(
            ate,
            &seeds,
            Some(model.reference_trip_point),
            rng,
        );
        let nnga_cost = ate.ledger().measurements_since(&baseline);
        let nnga_tp = optimization.best.trip_point;

        let row = |name: &str, technique: &str, tp: f64, cost: u64| Table1Row {
            test_name: name.to_string(),
            technique: technique.to_string(),
            wcr: config.objective.wcr(tp),
            t_dq: tp,
            class: config.objective.classify(tp),
            measurements: cost,
        };
        Self {
            rows: vec![
                row("March Test", "Deterministic", march_tp, march_cost),
                row("Random Test", "Random", random_tp, random_cost),
                row("NNGA Test", "Neural & Genetic", nnga_tp, nnga_cost),
            ],
            random_report,
            model,
            optimization,
        }
    }

    /// [`run`](Self::run) with the measurement-heavy stages fanned out
    /// across the thread policy: the Random row's thousand-test DSV and
    /// the NN+GA row's population fitness evaluation. The March search
    /// (one test) and the learning rounds (data-dependent) stay on the
    /// shared session.
    ///
    /// On a noiseless, drift-free tester this reproduces [`run`](Self::run)
    /// bit-for-bit; with noise or drift the parallel stages use per-test
    /// derived-seed sessions, so the result is still bit-identical across
    /// thread counts (just not to the shared-session sequential run).
    pub fn run_parallel<R: Rng + ?Sized>(
        ate: &mut Ate,
        config: &CompareConfig,
        policy: ExecPolicy,
        rng: &mut R,
    ) -> Self {
        Self::run_parallel_traced(ate, config, policy, rng, &Tracer::disabled())
    }

    /// [`run_parallel`](Self::run_parallel) with the campaign recorded
    /// into `tracer`: a phase-change event opens each technique's row
    /// ("march", "random", "nnga"), and the measurement-heavy stages
    /// record per-test / per-evaluation spans through their traced
    /// sub-runs.
    pub fn run_parallel_traced<R: Rng + ?Sized>(
        ate: &mut Ate,
        config: &CompareConfig,
        policy: ExecPolicy,
        rng: &mut R,
        tracer: &Tracer,
    ) -> Self {
        Self::run_parallel_observed(ate, config, policy, rng, tracer, &Telemetry::disabled())
    }

    /// [`run_parallel_traced`](Self::run_parallel_traced) with live
    /// telemetry threaded into the measurement-heavy stages: the Random
    /// row's DSV sweep ticks per merged test, the NN+GA row's fitness
    /// fold ticks per merged evaluation. The March baseline and the
    /// learning rounds are too short to heartbeat.
    pub fn run_parallel_observed<R: Rng + ?Sized>(
        ate: &mut Ate,
        config: &CompareConfig,
        policy: ExecPolicy,
        rng: &mut R,
        tracer: &Tracer,
        telemetry: &Telemetry,
    ) -> Self {
        let runner = MultiTripRunner::new(config.param);

        // Row 1 — deterministic March test, the production baseline.
        tracer.phase("march");
        let march_test = Test::deterministic("March Test", march::march_c_minus(64))
            .with_conditions(config.conditions);
        let baseline = *ate.ledger();
        let march_report = runner.run_traced(ate, &[march_test], SearchStrategy::FullRange, tracer);
        let march_tp = march_report.entries[0]
            .trip_point
            .expect("March trip point in generous range");
        let march_cost = ate.ledger().measurements_since(&baseline);

        // Row 2 — the refs-[9][10] random generator, fanned out per test.
        tracer.phase("random");
        let random_tests: Vec<Test> = (0..config.random_tests)
            .map(|_| random::random_test_at(rng, config.conditions))
            .collect();
        let blueprint = ParallelAte::from_ate(ate);
        let (random_report, random_ledger) = runner.run_parallel_observed(
            &blueprint,
            &random_tests,
            SearchStrategy::SearchUntilTrip,
            policy,
            tracer,
            telemetry,
        );
        let random_tp = random_report.min().expect("random tests converge");
        let random_cost = random_ledger.measurements();

        // Row 3 — the paper's method with parallel GA fitness evaluation.
        tracer.phase("nnga");
        let baseline = *ate.ledger();
        let model = LearningScheme::new(config.learning.clone()).run_traced(ate, rng, tracer);
        let generator = NeuralTestGenerator::new(&model);
        let seeds = generator.propose(
            config.nn_candidates,
            config.nn_seeds,
            Some(config.conditions),
            rng,
        );
        let blueprint = ParallelAte::from_ate(ate);
        let (optimization, ga_ledger) = OptimizationScheme::new(config.optimization.clone())
            .run_parallel_observed(
                &blueprint,
                &seeds,
                Some(model.reference_trip_point),
                policy,
                rng,
                tracer,
                telemetry,
            );
        let nnga_cost = ate.ledger().measurements_since(&baseline) + ga_ledger.measurements();
        let nnga_tp = optimization.best.trip_point;

        let row = |name: &str, technique: &str, tp: f64, cost: u64| Table1Row {
            test_name: name.to_string(),
            technique: technique.to_string(),
            wcr: config.objective.wcr(tp),
            t_dq: tp,
            class: config.objective.classify(tp),
            measurements: cost,
        };
        Self {
            rows: vec![
                row("March Test", "Deterministic", march_tp, march_cost),
                row("Random Test", "Random", random_tp, random_cost),
                row("NNGA Test", "Neural & Genetic", nnga_tp, nnga_cost),
            ],
            random_report,
            model,
            optimization,
        }
    }

    /// The row with the largest WCR — Table 1's verdict.
    pub fn winner(&self) -> &Table1Row {
        self.rows
            .iter()
            .max_by(|a, b| a.wcr.total_cmp(&b.wcr))
            .expect("three rows")
    }

    /// Renders the table the way the paper prints it.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Table 1: Comparison of T_DQ with different approaches (Vdd 1.8 V)\n\
             Test Name    | Technique        |  WCR  | T_DQ (ns) | ATE measurements\n\
             -------------+------------------+-------+-----------+-----------------\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<12} | {:<16} | {:.3} | {:>9.1} | {:>16}\n",
                r.test_name, r.technique, r.wcr, r.t_dq, r.measurements
            ));
        }
        out
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// A laptop-sized configuration for tests and examples: the same pipeline
/// with budgets that run in seconds.
pub fn quick_config() -> CompareConfig {
    use cichar_genetic::GaConfig;
    use cichar_neural::TrainConfig;
    CompareConfig {
        random_tests: 80,
        learning: LearningConfig {
            tests_per_round: 80,
            max_rounds: 2,
            committee_size: 3,
            hidden: vec![12],
            train: TrainConfig {
                epochs: 150,
                ..TrainConfig::default()
            },
            ..LearningConfig::default()
        },
        nn_candidates: 600,
        nn_seeds: 16,
        optimization: OptimizationConfig {
            ga: GaConfig {
                population_size: 30,
                islands: 2,
                generations: 30,
                stagnation_restart: 10,
                target_fitness: Some(1.0),
                ..GaConfig::default()
            },
            ..OptimizationConfig::default()
        },
        ..CompareConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cichar_dut::MemoryDevice;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_quick(seed: u64) -> Comparison {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let mut rng = StdRng::seed_from_u64(seed);
        Comparison::run(&mut ate, &quick_config(), &mut rng)
    }

    #[test]
    fn table1_shape_reproduces() {
        let cmp = run_quick(7);
        let march = &cmp.rows[0];
        let random = &cmp.rows[1];
        let nnga = &cmp.rows[2];
        // The paper's ordering: deterministic < random < NN+GA in severity
        // (i.e. T_DQ ordering reversed).
        assert!(
            nnga.t_dq < random.t_dq && random.t_dq < march.t_dq,
            "\n{}",
            cmp.render()
        );
        assert!(nnga.wcr > random.wcr && random.wcr > march.wcr);
        // March lands near its Table 1 value on the calibrated surface.
        assert!((march.t_dq - 32.3).abs() < 0.7, "march = {}", march.t_dq);
        // The NN+GA test provokes a genuinely deep drift.
        assert!(nnga.t_dq < 26.0, "nnga = {}", nnga.t_dq);
        assert_eq!(cmp.winner().test_name, "NNGA Test");
    }

    #[test]
    fn nnga_wins_across_seeds() {
        for seed in [11, 23] {
            let cmp = run_quick(seed);
            assert_eq!(cmp.winner().test_name, "NNGA Test", "seed {seed}:\n{cmp}");
        }
    }

    #[test]
    fn render_contains_paper_vocabulary() {
        let cmp = run_quick(9);
        let text = cmp.render();
        assert!(text.contains("March Test"));
        assert!(text.contains("Neural & Genetic"));
        assert!(text.contains("WCR"));
        assert!(text.contains("Vdd 1.8 V"));
    }

    #[test]
    fn costs_are_reported_per_technique() {
        let cmp = run_quick(13);
        // §7: "the test time is longer than in a single trip-point method".
        assert!(cmp.rows[2].measurements > cmp.rows[0].measurements);
        assert!(cmp.rows.iter().all(|r| r.measurements > 0));
    }

    #[test]
    fn parallel_comparison_reproduces_the_sequential_table() {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let mut rng = StdRng::seed_from_u64(7);
        let sequential = Comparison::run(&mut ate, &quick_config(), &mut rng);
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let mut rng = StdRng::seed_from_u64(7);
        let parallel = Comparison::run_parallel(
            &mut ate,
            &quick_config(),
            ExecPolicy::with_threads(8),
            &mut rng,
        );
        assert_eq!(sequential.rows, parallel.rows);
        assert_eq!(sequential.random_report, parallel.random_report);
        assert_eq!(
            sequential.optimization.best.trip_point,
            parallel.optimization.best.trip_point
        );
        assert_eq!(
            sequential.optimization.measurements_used,
            parallel.optimization.measurements_used
        );
    }

    #[test]
    fn artifacts_are_exposed_for_figures() {
        let cmp = run_quick(17);
        assert!(cmp.random_report.spread().expect("converged") > 0.0);
        assert!(!cmp.optimization.database.is_empty());
        assert!(cmp.model.dataset_size > 0);
    }
}
