//! The worst-case test database (fig. 5's final artifact).
//!
//! "At last, final worst case tests are generated and stored in the
//! database. … Functional failure patterns (if any) are stored
//! separately."

use crate::wcr::WcrClass;
use cichar_patterns::Test;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// One database record: a test with its measured outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorstCaseTest {
    /// The test itself.
    pub test: Test,
    /// Measured trip point.
    pub trip_point: f64,
    /// Measured worst-case ratio.
    pub wcr: f64,
    /// Fig. 6 classification.
    pub class: WcrClass,
    /// The committee's pre-measurement severity prediction, when the test
    /// came through the fuzzy-neural generator.
    pub predicted_severity: Option<f64>,
}

impl fmt::Display for WorstCaseTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: trip {:.3}, WCR {:.3} ({})",
            self.test.name(),
            self.trip_point,
            self.wcr,
            self.class
        )
    }
}

/// A bounded, deduplicated, WCR-ordered store of worst-case tests, with
/// functional failures kept separately.
///
/// # Examples
///
/// ```
/// use cichar_core::db::{WorstCaseDatabase, WorstCaseTest};
/// use cichar_core::wcr::WcrClass;
/// use cichar_patterns::{march, Test};
///
/// let mut db = WorstCaseDatabase::new(8);
/// db.insert(WorstCaseTest {
///     test: Test::deterministic("m", march::march_c_minus(64)),
///     trip_point: 22.1,
///     wcr: 0.904,
///     class: WcrClass::Weakness,
///     predicted_severity: None,
/// });
/// assert_eq!(db.len(), 1);
/// assert_eq!(db.worst().expect("non-empty").wcr, 0.904);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorstCaseDatabase {
    capacity: usize,
    entries: Vec<WorstCaseTest>,
    failures: Vec<WorstCaseTest>,
    #[serde(skip)]
    seen: HashSet<u64>,
}

impl WorstCaseDatabase {
    /// Creates a database keeping at most `capacity` worst-case entries
    /// (functional failures are kept unbounded — each is a finding).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            entries: Vec::new(),
            failures: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// Inserts a record: failures go to the failure store, everything else
    /// competes for the WCR-ordered worst-case slots. Duplicate tests
    /// (same stimulus and conditions) are ignored.
    ///
    /// Returns `true` if the record was stored.
    pub fn insert(&mut self, record: WorstCaseTest) -> bool {
        let id = record.test.identity();
        if !self.seen.insert(id) {
            return false;
        }
        if record.class == WcrClass::Fail {
            self.failures.push(record);
            return true;
        }
        self.entries.push(record);
        self.entries.sort_by(|a, b| b.wcr.total_cmp(&a.wcr));
        if self.entries.len() > self.capacity {
            let evicted = self.entries.pop().expect("over capacity");
            self.seen.remove(&evicted.test.identity());
            // Report stored=false if the new record itself was evicted.
            return !self.seen.is_empty() && self.seen.contains(&id);
        }
        true
    }

    /// Worst-case entries, largest WCR first.
    pub fn entries(&self) -> &[WorstCaseTest] {
        &self.entries
    }

    /// Functional failures (WCR > 1), in insertion order.
    pub fn failures(&self) -> &[WorstCaseTest] {
        &self.failures
    }

    /// Number of (non-failure) worst-case entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the worst-case store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The single worst entry, if any.
    pub fn worst(&self) -> Option<&WorstCaseTest> {
        self.entries.first()
    }

    /// Serializes the database to pretty JSON at `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        save_artifact(self, path)
    }

    /// Loads a database saved by [`Self::save`], rebuilding the dedup
    /// index.
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialization errors.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let json = fs::read_to_string(path)?;
        let mut db: Self = serde_json::from_str(&json)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        db.seen = db
            .entries
            .iter()
            .chain(&db.failures)
            .map(|r| r.test.identity())
            .collect();
        Ok(db)
    }
}

/// Saves any serializable characterization artifact — a
/// [`DsvReport`](crate::dsv::DsvReport), a raw
/// [`SearchOutcome`](cichar_search::SearchOutcome), a ledger — as pretty
/// JSON at `path`. Robustness metadata (quarantine reasons, recovery
/// statuses, `Invalid` probes) round-trips with it, so a replayed
/// campaign can be audited offline.
///
/// # Errors
///
/// Propagates I/O and serialization errors.
pub fn save_artifact<T: Serialize>(artifact: &T, path: impl AsRef<Path>) -> io::Result<()> {
    let json = serde_json::to_string_pretty(artifact)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    // Write-then-rename: a crash (or a full disk) mid-write must never
    // leave a truncated artifact at the target path. The scratch file
    // lives next to the target so the rename stays on one filesystem.
    let path = path.as_ref();
    let mut scratch_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "artifact.json".into());
    scratch_name.push(".tmp");
    let scratch = path.with_file_name(scratch_name);
    if let Err(e) = fs::write(&scratch, json) {
        let _ = fs::remove_file(&scratch);
        return Err(e);
    }
    fs::rename(&scratch, path)
}

/// Loads an artifact saved by [`save_artifact`].
///
/// # Errors
///
/// Propagates I/O and deserialization errors.
pub fn load_artifact<T: Deserialize>(path: impl AsRef<Path>) -> io::Result<T> {
    let json = fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Saves a slice of serializable records as JSONL (one compact JSON value
/// per line) at `path`, through the same write-then-rename commit as
/// [`save_artifact`]. The wafer pipeline spills each chunk of streamed
/// entries this way, so a crash mid-campaign leaves only whole chunk
/// files behind, never a truncated line.
///
/// # Errors
///
/// Propagates I/O and serialization errors.
pub fn save_jsonl<T: Serialize>(records: &[T], path: impl AsRef<Path>) -> io::Result<()> {
    let mut body = String::new();
    for record in records {
        let line = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        body.push_str(&line);
        body.push('\n');
    }
    commit_atomically(body.as_bytes(), path.as_ref())
}

/// Loads every record of a JSONL file written by [`save_jsonl`]. Blank
/// lines are skipped.
///
/// Torn-write tolerance: [`save_jsonl`] always terminates the last record
/// with a newline, so a file whose final line lacks one was truncated
/// mid-write (a torn write on a non-atomic filesystem). The partial line
/// is dropped and every complete record is returned — use
/// [`load_jsonl_salvaged`] when the caller needs to know a tail was
/// dropped. A malformed line *before* the tail is still a hard error:
/// mid-file corruption is not a torn write.
///
/// # Errors
///
/// Propagates I/O and (non-tail) deserialization errors.
pub fn load_jsonl<T: Deserialize>(path: impl AsRef<Path>) -> io::Result<Vec<T>> {
    load_jsonl_salvaged(path).map(|salvaged| salvaged.records)
}

/// The outcome of a torn-write-tolerant JSONL load: every complete record,
/// plus whether a truncated trailing line had to be dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct Salvaged<T> {
    /// Every record with a complete (newline-terminated) line.
    pub records: Vec<T>,
    /// Whether the file ended in a truncated partial line that was
    /// dropped. When `true`, `records.len()` is the salvage count.
    pub torn: bool,
}

/// [`load_jsonl`] with explicit torn-write accounting: drops a truncated
/// trailing line (a file not ending in `\n` was torn mid-write — the
/// atomic [`save_jsonl`] path always newline-terminates) and reports how
/// many complete records were salvaged alongside.
///
/// # Errors
///
/// Propagates I/O errors, and deserialization errors for any *complete*
/// line — mid-file corruption is a hard error, not a torn write.
pub fn load_jsonl_salvaged<T: Deserialize>(path: impl AsRef<Path>) -> io::Result<Salvaged<T>> {
    let body = fs::read_to_string(path)?;
    let (complete, torn) = match body.rfind('\n') {
        Some(last) => (&body[..=last], last + 1 < body.len()),
        None => ("", !body.is_empty()),
    };
    let records = complete
        .lines()
        .filter(|line| !line.trim().is_empty())
        .map(|line| {
            serde_json::from_str(line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
        })
        .collect::<io::Result<Vec<T>>>()?;
    Ok(Salvaged { records, torn })
}

/// Compacts several JSONL spill files into one, atomically, preserving
/// source order — the wafer pipeline's end-of-run step that turns
/// per-chunk spill files into a single artifact. Sources are read one at
/// a time, so peak memory is one chunk, not the whole wafer.
///
/// A source with a truncated trailing line (torn write) contributes only
/// its complete records: the partial line is dropped rather than glued to
/// the next source's first record. Returns the total records compacted.
///
/// # Errors
///
/// Propagates I/O errors; no source is removed on failure.
pub fn compact_jsonl<P: AsRef<Path>>(sources: &[P], dest: impl AsRef<Path>) -> io::Result<u64> {
    compact_jsonl_inner(sources, None, dest.as_ref())
}

/// [`compact_jsonl`] with per-source record-count verification against a
/// journal (or any other authority that knows how many records each chunk
/// must hold). `expected[i]` is the record count source `i` must
/// contribute; a short or long chunk fails the whole compaction loudly
/// instead of silently merging a truncated spill file into the artifact.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on any count mismatch (naming the
/// offending source); otherwise as [`compact_jsonl`]. No source is
/// removed on failure.
pub fn compact_jsonl_verified<P: AsRef<Path>>(
    sources: &[P],
    expected: &[u64],
    dest: impl AsRef<Path>,
) -> io::Result<u64> {
    assert_eq!(
        sources.len(),
        expected.len(),
        "one expected record count per spill chunk"
    );
    compact_jsonl_inner(sources, Some(expected), dest.as_ref())
}

fn compact_jsonl_inner<P: AsRef<Path>>(
    sources: &[P],
    expected: Option<&[u64]>,
    dest: &Path,
) -> io::Result<u64> {
    let mut scratch_name = dest
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "artifact.jsonl".into());
    scratch_name.push(".tmp");
    let scratch = dest.with_file_name(scratch_name);
    let mut total = 0u64;
    let mut write_all = || -> io::Result<()> {
        use std::io::Write;
        let mut out = std::io::BufWriter::new(fs::File::create(&scratch)?);
        for (index, source) in sources.iter().enumerate() {
            let chunk = fs::read(source)?;
            // Keep only newline-terminated records: a torn tail must not
            // be glued onto the next chunk's first line.
            let complete = match chunk.iter().rposition(|&b| b == b'\n') {
                Some(last) => &chunk[..=last],
                None => &[][..],
            };
            let records = complete.iter().filter(|&&b| b == b'\n').count() as u64;
            if let Some(expected) = expected {
                if records != expected[index] {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "spill chunk {} holds {} records where the journal expects {} — \
                             refusing to compact a short chunk",
                            source.as_ref().display(),
                            records,
                            expected[index]
                        ),
                    ));
                }
            }
            total += records;
            out.write_all(complete)?;
        }
        out.into_inner().map_err(|e| e.into_error())?.sync_all()
    };
    if let Err(e) = write_all() {
        let _ = fs::remove_file(&scratch);
        return Err(e);
    }
    fs::rename(&scratch, dest)?;
    for source in sources {
        fs::remove_file(source)?;
    }
    Ok(total)
}

/// The shared write-then-rename commit: scratch file next to the target,
/// renamed into place only once fully written.
fn commit_atomically(bytes: &[u8], path: &Path) -> io::Result<()> {
    let mut scratch_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "artifact.json".into());
    scratch_name.push(".tmp");
    let scratch = path.with_file_name(scratch_name);
    if let Err(e) = fs::write(&scratch, bytes) {
        let _ = fs::remove_file(&scratch);
        return Err(e);
    }
    fs::rename(&scratch, path)
}

impl fmt::Display for WorstCaseDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "worst-case database: {} entries, {} functional failures",
            self.entries.len(),
            self.failures.len()
        )?;
        for e in &self.entries {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cichar_patterns::march;
    use cichar_units::Volts;

    fn record(name: &str, wcr: f64, vdd_mv: u32) -> WorstCaseTest {
        // Distinct conditions make distinct identities.
        let test = Test::deterministic(name, march::march_c_minus(64)).with_conditions(
            cichar_patterns::TestConditions::nominal()
                .with_vdd(Volts::new(f64::from(vdd_mv) / 1000.0)),
        );
        WorstCaseTest {
            test,
            trip_point: 20.0 / wcr,
            wcr,
            class: WcrClass::from_wcr(wcr),
            predicted_severity: None,
        }
    }

    #[test]
    fn keeps_entries_sorted_by_wcr() {
        let mut db = WorstCaseDatabase::new(10);
        db.insert(record("a", 0.6, 1700));
        db.insert(record("b", 0.9, 1710));
        db.insert(record("c", 0.7, 1720));
        let wcrs: Vec<f64> = db.entries().iter().map(|e| e.wcr).collect();
        assert_eq!(wcrs, vec![0.9, 0.7, 0.6]);
        assert_eq!(db.worst().expect("non-empty").test.name(), "b");
    }

    #[test]
    fn capacity_evicts_smallest_wcr() {
        let mut db = WorstCaseDatabase::new(2);
        db.insert(record("a", 0.6, 1700));
        db.insert(record("b", 0.9, 1710));
        db.insert(record("c", 0.7, 1720));
        assert_eq!(db.len(), 2);
        let names: Vec<&str> = db.entries().iter().map(|e| e.test.name()).collect();
        assert_eq!(names, vec!["b", "c"]);
    }

    #[test]
    fn duplicates_are_rejected() {
        let mut db = WorstCaseDatabase::new(10);
        assert!(db.insert(record("a", 0.6, 1700)));
        assert!(!db.insert(record("a_again", 0.6, 1700)), "same identity");
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn failures_stored_separately_and_unbounded() {
        let mut db = WorstCaseDatabase::new(1);
        db.insert(record("w", 0.9, 1700));
        db.insert(record("f1", 1.1, 1710));
        db.insert(record("f2", 1.3, 1720));
        assert_eq!(db.len(), 1);
        assert_eq!(db.failures().len(), 2);
    }

    #[test]
    fn evicted_entry_can_reenter_later() {
        let mut db = WorstCaseDatabase::new(1);
        db.insert(record("small", 0.5, 1700));
        db.insert(record("big", 0.9, 1710));
        // `small` was evicted; its identity must be free again.
        assert!(db.insert(record("small", 0.5, 1700)) || db.len() == 1);
        assert_eq!(db.worst().expect("non-empty").wcr, 0.9);
    }

    #[test]
    fn save_load_round_trip() {
        let mut db = WorstCaseDatabase::new(4);
        db.insert(record("a", 0.85, 1700));
        db.insert(record("f", 1.2, 1710));
        let dir = std::env::temp_dir().join("cichar_db_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("wc.json");
        db.save(&path).expect("save");
        let loaded = WorstCaseDatabase::load(&path).expect("load");
        assert_eq!(loaded.entries(), db.entries());
        assert_eq!(loaded.failures(), db.failures());
        // Dedup index was rebuilt.
        let mut loaded = loaded;
        assert!(!loaded.insert(record("a", 0.85, 1700)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = WorstCaseDatabase::new(0);
    }

    #[test]
    fn torn_jsonl_tail_is_dropped_and_reported() {
        let dir = std::env::temp_dir().join("cichar_db_torn_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("torn.jsonl");
        save_jsonl(&[10u64, 20, 30], &path).expect("save");

        // A complete file salvages everything and reports no tear.
        let whole: Salvaged<u64> = load_jsonl_salvaged(&path).expect("load");
        assert_eq!(whole.records, vec![10, 20, 30]);
        assert!(!whole.torn);

        // Truncate into the middle of the last record: torn write.
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 2]).expect("truncate");
        let salvaged: Salvaged<u64> = load_jsonl_salvaged(&path).expect("salvage");
        assert_eq!(salvaged.records, vec![10, 20], "partial line dropped");
        assert!(salvaged.torn);
        let lenient: Vec<u64> = load_jsonl(&path).expect("load_jsonl salvages too");
        assert_eq!(lenient, vec![10, 20]);

        // Mid-file corruption stays a hard error — it is not a torn tail.
        std::fs::write(&path, b"10\nnot json\n30\n").expect("write");
        let err = load_jsonl::<u64>(&path).expect_err("mid-file corruption");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_salvages_torn_sources_and_counts_records() {
        let dir = std::env::temp_dir().join("cichar_db_compact_salvage_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let a = dir.join("a.jsonl");
        let b = dir.join("b.jsonl");
        save_jsonl(&[1u64, 2], &a).expect("save a");
        save_jsonl(&[3u64, 4], &b).expect("save b");
        // Tear chunk a mid-record: its partial line must not be glued to
        // chunk b's first record.
        let bytes = std::fs::read(&a).expect("read");
        std::fs::write(&a, &bytes[..bytes.len() - 1]).expect("truncate");
        let dest = dir.join("merged.jsonl");
        let total = compact_jsonl(&[&a, &b], &dest).expect("compact");
        assert_eq!(total, 3, "one record lost to the tear");
        let merged: Vec<u64> = load_jsonl(&dest).expect("load");
        assert_eq!(merged, vec![1, 3, 4]);
        std::fs::remove_file(&dest).ok();
    }

    #[test]
    fn verified_compaction_fails_loudly_on_a_short_chunk() {
        let dir = std::env::temp_dir().join("cichar_db_compact_verify_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let a = dir.join("a.jsonl");
        let b = dir.join("b.jsonl");
        save_jsonl(&[1u64, 2, 3], &a).expect("save a");
        save_jsonl(&[4u64], &b).expect("save b");
        let dest = dir.join("merged.jsonl");

        // Matching counts: compacts and removes sources.
        let total = compact_jsonl_verified(&[&a, &b], &[3, 1], &dest).expect("compact");
        assert_eq!(total, 4);
        assert!(!a.exists() && !b.exists(), "sources consumed");

        // A short chunk (torn spill) must fail loudly, not merge silently.
        save_jsonl(&[1u64, 2, 3], &a).expect("save a");
        save_jsonl(&[4u64], &b).expect("save b");
        let bytes = std::fs::read(&a).expect("read");
        std::fs::write(&a, &bytes[..bytes.len() - 2]).expect("truncate");
        let err = compact_jsonl_verified(&[&a, &b], &[3, 1], &dest)
            .expect_err("short chunk must be rejected");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("expects 3"), "{err}");
        assert!(a.exists() && b.exists(), "no source removed on failure");
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
        std::fs::remove_file(&dest).ok();
    }

    #[test]
    fn search_outcome_with_invalid_probes_round_trips_as_artifact() {
        use cichar_search::{Probe, SearchOutcome};
        let outcome = SearchOutcome {
            trip_point: None,
            converged: false,
            trace: vec![
                (31.0, Probe::Pass),
                (26.0, Probe::Invalid),
                (28.5, Probe::Fail),
            ],
        };
        let dir = std::env::temp_dir().join("cichar_db_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("outcome.json");
        save_artifact(&outcome, &path).expect("save");
        let loaded: SearchOutcome = load_artifact(&path).expect("load");
        assert_eq!(loaded, outcome);
        assert_eq!(loaded.trace[1].1, Probe::Invalid, "Invalid survives serde");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dsv_report_with_quarantine_statuses_round_trips_as_artifact() {
        use crate::dsv::{DsvEntry, DsvReport, QuarantineReason, SearchStrategy, TripStatus};
        use cichar_ate::MeasuredParam;
        let report = DsvReport {
            param: MeasuredParam::DataValidTime,
            strategy: SearchStrategy::SearchUntilTrip,
            entries: vec![
                DsvEntry {
                    test_name: String::from("clean"),
                    trip_point: Some(31.5),
                    measurements: 7,
                    status: TripStatus::Clean,
                },
                DsvEntry {
                    test_name: String::from("retried"),
                    trip_point: Some(30.9),
                    measurements: 11,
                    status: TripStatus::Recovered {
                        retries: 3,
                        rebracketed: true,
                    },
                },
                DsvEntry {
                    test_name: String::from("lost"),
                    trip_point: None,
                    measurements: 15,
                    status: TripStatus::Quarantined {
                        reason: QuarantineReason::InconsistentTrace,
                    },
                },
            ],
            reference_trip_point: Some(31.5),
            total_measurements: 33,
        };
        let dir = std::env::temp_dir().join("cichar_db_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("dsv.json");
        save_artifact(&report, &path).expect("save");
        let loaded: DsvReport = load_artifact(&path).expect("load");
        assert_eq!(loaded, report);
        assert_eq!(loaded.quarantined(), 1);
        assert_eq!(loaded.recovered(), 1);
        assert_eq!(
            loaded.quarantined_entries()[0].status,
            TripStatus::Quarantined {
                reason: QuarantineReason::InconsistentTrace
            }
        );
        std::fs::remove_file(&path).ok();
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn arbitrary_inserts_keep_invariants(
                capacity in 1usize..6,
                wcrs in proptest::collection::vec(0.3f64..1.3, 1..24),
            ) {
                let mut db = WorstCaseDatabase::new(capacity);
                for (i, wcr) in wcrs.iter().enumerate() {
                    db.insert(record(&format!("t{i}"), *wcr, 1500 + i as u32));
                }
                // Capacity bound holds.
                prop_assert!(db.len() <= capacity);
                // Entries stay sorted, all non-fail.
                for pair in db.entries().windows(2) {
                    prop_assert!(pair[0].wcr >= pair[1].wcr);
                }
                prop_assert!(db.entries().iter().all(|e| e.wcr <= 1.0));
                prop_assert!(db.failures().iter().all(|e| e.wcr > 1.0));
                // The database keeps exactly the top non-fail WCRs.
                let mut non_fail: Vec<f64> =
                    wcrs.iter().copied().filter(|w| *w <= 1.0).collect();
                non_fail.sort_by(|a, b| b.total_cmp(a));
                non_fail.truncate(capacity);
                let kept: Vec<f64> = db.entries().iter().map(|e| e.wcr).collect();
                prop_assert_eq!(kept.len(), non_fail.len());
                for (a, b) in kept.iter().zip(&non_fail) {
                    prop_assert!((a - b).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn display_lists_entries() {
        let mut db = WorstCaseDatabase::new(4);
        db.insert(record("a", 0.85, 1700));
        let s = db.to_string();
        assert!(s.contains("1 entries") && s.contains("a:"), "{s}");
    }
}
