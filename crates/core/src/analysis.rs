//! Fuzzy weakness analysis of a test — §5's closing recommendation made
//! executable.
//!
//! "We strongly recommend to use fuzzy variables to encode measurement
//! values as fuzzy logic can describe more than one analysis parameter;
//! such as *if A and B and C, then D is quite close to the limit of the
//! target device-spec*."
//!
//! [`WeaknessAnalyzer`] holds a Mamdani rule base over the pattern-stress
//! mechanisms (simultaneous switching, supply resonance, address activity)
//! and the supply condition, and produces a crisp *proximity-to-limit*
//! score plus a linguistic explanation — the engineer-facing half of
//! fig. 5's "analyze the potential design weaknesses" step.

use cichar_fuzzy::{LinguisticVariable, MembershipFunction, Rule, RuleSet};
use cichar_patterns::{PatternFeatures, Test};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The analyzer's verdict for one test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeaknessReport {
    /// Crisp proximity-to-limit in `[0, 1]` (centroid of the inferred
    /// fuzzy output; 0 = far from the spec limit, 1 = at/over it).
    pub proximity: f64,
    /// The linguistic term that best describes the proximity.
    pub verdict: String,
    /// Rule activations, `(rule description, firing strength)`, strongest
    /// first — the "why".
    pub activations: Vec<(String, f64)>,
}

impl WeaknessReport {
    /// The strongest firing rule, if any fired.
    pub fn dominant_cause(&self) -> Option<&str> {
        self.activations
            .first()
            .filter(|(_, a)| *a > 0.0)
            .map(|(d, _)| d.as_str())
    }
}

impl fmt::Display for WeaknessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "proximity to limit: {:.2} ({})",
            self.proximity, self.verdict
        )?;
        for (desc, act) in self.activations.iter().filter(|(_, a)| *a > 0.05) {
            writeln!(f, "  [{act:.2}] {desc}")?;
        }
        Ok(())
    }
}

/// The §5 fuzzy rule base over stress mechanisms and supply condition.
///
/// # Examples
///
/// ```
/// use cichar_core::analysis::WeaknessAnalyzer;
/// use cichar_patterns::{march, Test};
///
/// let analyzer = WeaknessAnalyzer::new();
/// let report = analyzer.analyze(&Test::deterministic(
///     "march_c-",
///     march::march_c_minus(64),
/// ));
/// // A benign production test sits far from the limit.
/// assert!(report.proximity < 0.4, "{report}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WeaknessAnalyzer {
    rules: RuleSet,
    descriptions: Vec<String>,
}

impl WeaknessAnalyzer {
    /// Builds the rule base.
    pub fn new() -> Self {
        let low_high = |name: &str| {
            let mut v = LinguisticVariable::new(name, 0.0, 1.0);
            v.add_term("low", MembershipFunction::trapezoidal(0.0, 0.0, 0.25, 0.55));
            v.add_term("high", MembershipFunction::trapezoidal(0.25, 0.55, 1.0, 1.0));
            v
        };
        let sso = low_high("sso");
        let resonance = low_high("resonance");
        let addr = low_high("addr");
        let mut vdd = LinguisticVariable::new("vdd", 1.5, 2.1);
        vdd.add_term(
            "starved",
            MembershipFunction::trapezoidal(1.5, 1.5, 1.62, 1.75),
        );
        vdd.add_term(
            "healthy",
            MembershipFunction::trapezoidal(1.62, 1.75, 2.1, 2.1),
        );

        let mut proximity = LinguisticVariable::new("proximity", 0.0, 1.0);
        proximity.add_term("far", MembershipFunction::triangular(0.0, 0.0, 0.45));
        proximity.add_term("approaching", MembershipFunction::triangular(0.25, 0.5, 0.75));
        proximity.add_term(
            "close_to_limit",
            MembershipFunction::triangular(0.55, 1.0, 1.0),
        );

        let mut rules = RuleSet::new(vec![sso, resonance, addr, vdd], proximity);
        let mut descriptions = Vec::new();
        let add = |rules: &mut RuleSet,
                       descriptions: &mut Vec<String>,
                       clauses: &[(&str, &str)],
                       consequent: &str,
                       text: &str| {
            rules
                .add_rule(Rule::new(
                    clauses.iter().map(|&(v, t)| (v, t)),
                    consequent,
                ))
                .expect("rule references validated terms");
            descriptions.push(text.to_string());
        };

        // §5's canonical three-clause shape: if A and B and C then D is
        // quite close to the limit.
        add(
            &mut rules,
            &mut descriptions,
            &[("sso", "high"), ("resonance", "high"), ("addr", "high")],
            "close_to_limit",
            "simultaneous switching AND supply resonance AND address activity \
             all high -> quite close to the limit of the target device-spec",
        );
        add(
            &mut rules,
            &mut descriptions,
            &[("sso", "high"), ("resonance", "high")],
            "approaching",
            "switching outputs pumping the supply at its resonant rhythm",
        );
        add(
            &mut rules,
            &mut descriptions,
            &[("sso", "high"), ("vdd", "starved")],
            "close_to_limit",
            "heavy output switching on a starved supply",
        );
        add(
            &mut rules,
            &mut descriptions,
            &[("resonance", "high"), ("vdd", "starved")],
            "close_to_limit",
            "supply resonance with no voltage margin to absorb it",
        );
        add(
            &mut rules,
            &mut descriptions,
            &[("sso", "high"), ("resonance", "low"), ("addr", "low")],
            "approaching",
            "raw switching stress alone, no coupling partners",
        );
        add(
            &mut rules,
            &mut descriptions,
            &[("sso", "low"), ("resonance", "low")],
            "far",
            "quiet bus: neither switching nor resonance stress",
        );
        add(
            &mut rules,
            &mut descriptions,
            &[("sso", "low"), ("addr", "high")],
            "far",
            "address activity alone is benign for the output window",
        );

        Self {
            rules,
            descriptions,
        }
    }

    /// Number of rules in the base.
    pub fn rule_count(&self) -> usize {
        self.descriptions.len()
    }

    /// Analyzes a complete test (features extracted internally).
    pub fn analyze(&self, test: &Test) -> WeaknessReport {
        let features = PatternFeatures::extract(&test.pattern());
        self.analyze_features(&features, test.conditions().vdd.value())
    }

    /// Analyzes pre-extracted features at a given supply.
    pub fn analyze_features(&self, features: &PatternFeatures, vdd: f64) -> WeaknessReport {
        let inputs = [
            ("sso", features.dq_sso_mean),
            ("resonance", features.burst_resonance),
            ("addr", features.addr_ham_mean),
            ("vdd", vdd),
        ];
        let proximity = self
            .rules
            .infer(&inputs)
            .expect("all rule inputs supplied");
        let raw = self
            .rules
            .rule_activations(&inputs)
            .expect("all rule inputs supplied");
        // The verdict is the consequent of the strongest-firing rule; ties
        // break toward the more severe term (the higher output peak). This
        // keeps the linguistic verdict stable even when the centroid sits
        // on a band boundary.
        let verdict = self
            .rules
            .rules()
            .iter()
            .zip(&raw)
            .filter(|(_, &a)| a > 0.0)
            .max_by(|(ra, &aa), (rb, &ab)| {
                aa.total_cmp(&ab).then_with(|| {
                    let peak = |r: &Rule| {
                        self.rules
                            .output()
                            .term(&r.consequent_term)
                            .expect("validated")
                            .peak()
                    };
                    peak(ra).total_cmp(&peak(rb))
                })
            })
            .map(|(r, _)| r.consequent_term.replace('_', " "))
            // No rule fired: the stress profile sits between every term's
            // support, so the base has nothing to say.
            .unwrap_or_else(|| "indeterminate".to_string());
        let mut activations: Vec<(String, f64)> = self
            .descriptions
            .iter()
            .cloned()
            .zip(raw)
            .collect();
        activations.sort_by(|a, b| b.1.total_cmp(&a.1));
        WeaknessReport {
            proximity,
            verdict,
            activations,
        }
    }
}

impl Default for WeaknessAnalyzer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cichar_patterns::{march, Pattern, TestVector};
    use cichar_units::Volts;

    /// Ping-pong storm: complementary data at complementary addresses,
    /// burst-read at the resonant rhythm — all three stress mechanisms at
    /// full intensity.
    fn storm_test(vdd: f64) -> Test {
        let mut v = Vec::new();
        v.push(TestVector::write(0x0000, 0x5555));
        v.push(TestVector::write(0xFFFF, 0xAAAA));
        while v.len() < 990 {
            v.push(TestVector::write(0x0000, 0x5555));
            for i in 0..12u16 {
                let (addr, w) = if i % 2 == 0 {
                    (0x0000, 0x5555)
                } else {
                    (0xFFFF, 0xAAAA)
                };
                v.push(TestVector::read(addr, w));
            }
        }
        Test::deterministic("storm", Pattern::new_clamped(v)).with_conditions(
            cichar_patterns::TestConditions::nominal().with_vdd(Volts::new(vdd)),
        )
    }

    #[test]
    fn benign_test_is_far_from_limit() {
        let analyzer = WeaknessAnalyzer::new();
        let report = analyzer.analyze(&Test::deterministic("m", march::march_c_minus(64)));
        assert!(report.proximity < 0.4, "{report}");
        assert_eq!(report.verdict, "far");
    }

    #[test]
    fn storm_on_starved_supply_is_close_to_limit() {
        let analyzer = WeaknessAnalyzer::new();
        let report = analyzer.analyze(&storm_test(1.55));
        assert!(report.proximity > 0.6, "{report}");
        assert_eq!(report.verdict, "close to limit");
    }

    /// A storm over *sequential* addresses: switching and resonance high,
    /// address activity low — the three-clause rule stays quiet, so the
    /// supply condition is what tips the verdict.
    fn seq_storm(vdd: f64) -> Test {
        let mut v = Vec::new();
        for i in 0..200u16 {
            let w = if i % 2 == 0 { 0x5555 } else { 0xAAAA };
            v.push(TestVector::write(i, w));
        }
        let mut i = 0u16;
        while v.len() < 990 {
            v.push(TestVector::write(200, 0));
            for _ in 0..12 {
                let w = if i.is_multiple_of(2) { 0x5555 } else { 0xAAAA };
                v.push(TestVector::read(i % 200, w));
                i = i.wrapping_add(1);
            }
        }
        Test::deterministic("seq_storm", Pattern::new_clamped(v)).with_conditions(
            cichar_patterns::TestConditions::nominal().with_vdd(Volts::new(vdd)),
        )
    }

    #[test]
    fn supply_level_modulates_the_verdict() {
        let analyzer = WeaknessAnalyzer::new();
        let starved = analyzer.analyze(&seq_storm(1.55)).proximity;
        let healthy = analyzer.analyze(&seq_storm(2.05)).proximity;
        assert!(starved > healthy, "{starved} vs {healthy}");
        // Even on a healthy supply the storm approaches the limit.
        assert!(healthy > 0.4, "storm is never 'far': {healthy}");
    }

    #[test]
    fn dominant_cause_names_the_three_clause_rule_for_the_storm() {
        let analyzer = WeaknessAnalyzer::new();
        let report = analyzer.analyze(&storm_test(1.8));
        let cause = report.dominant_cause().expect("rules fired");
        assert!(
            cause.contains("simultaneous switching")
                || cause.contains("resonant rhythm"),
            "{cause}"
        );
    }

    #[test]
    fn activations_are_sorted_and_complete() {
        let analyzer = WeaknessAnalyzer::new();
        let report = analyzer.analyze(&storm_test(1.7));
        assert_eq!(report.activations.len(), analyzer.rule_count());
        for pair in report.activations.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn display_lists_firing_rules() {
        let analyzer = WeaknessAnalyzer::new();
        let text = analyzer.analyze(&storm_test(1.55)).to_string();
        assert!(text.contains("proximity to limit"), "{text}");
        assert!(text.contains('['), "at least one activation shown: {text}");
    }

    #[test]
    fn proximity_is_always_in_unit_interval() {
        let analyzer = WeaknessAnalyzer::new();
        for (name, p) in march::standard_suite() {
            let report = analyzer.analyze(&Test::deterministic(name, p));
            assert!((0.0..=1.0).contains(&report.proximity), "{name}");
        }
    }
}
