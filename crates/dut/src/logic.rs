//! Pipelined logic-core backend.
//!
//! A scan-tested digital core: `depth` pipeline stages of `stage_ns`
//! latch-to-latch delay, flushed once per test vector. Its failure
//! physics are deliberately *different in kind* from both the memory
//! array and the combinational netlist:
//!
//! * IR droop grows **quadratically** with simultaneous-switching
//!   activity (`ir_gain · sso²`) — the package inductance mechanism —
//!   where the other backends are linear in SSO;
//! * resonance only matters when it coincides with bus turnaround
//!   (a product term), not on its own;
//! * the retention floor is set by the transistor threshold (`vth`), and
//!   its stress erosion saturates (`√stress`) instead of growing
//!   linearly.
//!
//! # Examples
//!
//! ```
//! use cichar_dut::{Device, LogicDevice};
//!
//! let device: Device = LogicDevice::default().into();
//! assert_eq!(device.name(), "logic");
//! assert_eq!(device.stress_axes(), &["ir_droop", "turnaround_resonance", "toggle"]);
//! ```

use crate::backend::{fnv1a, fnv1a_f64, Device, DeviceBackend, FNV_OFFSET};
use crate::device::Parametrics;
use crate::process::Die;
use cichar_patterns::{PatternFeatures, TestConditions};
use cichar_units::{Megahertz, Nanoseconds, Volts};

/// A pipelined logic core as a device under test.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicDevice {
    die: Die,
    depth: u32,
    stage_ns: f64,
    ir_gain: f64,
    vth: f64,
}

impl LogicDevice {
    /// Builds the core from its structural parameters on a given die:
    /// `depth` pipeline stages, `stage_ns` nominal latch-to-latch delay,
    /// `ir_gain` the quadratic IR-droop stress gain and `vth` the device
    /// threshold the retention floor sits on.
    pub fn new(die: Die, depth: u32, stage_ns: f64, ir_gain: f64, vth: f64) -> Self {
        Self {
            die,
            depth: depth.max(1),
            stage_ns: stage_ns.max(0.05),
            ir_gain,
            vth,
        }
    }

    /// The default 9-stage core on the nominal die, calibrated so all
    /// three measured parameters trip inside their characterization
    /// ranges.
    pub fn nominal() -> Self {
        Self::new(Die::nominal(), 9, 0.90, 2.4, 0.62)
    }

    /// The full pipeline-flush latency (ns) on a typical die at nominal
    /// conditions — what one scan vector costs.
    pub fn flush_ns(&self) -> f64 {
        f64::from(self.depth) * self.stage_ns
    }

    /// Supply/temperature derating of stage delay (no clock term, so
    /// `f_max` sweeps keep their single crossing). Gentle slopes keep
    /// `f_max` above the §4 relax clock across the whole condition box —
    /// see the matching comment on `NetlistDevice::delay_scale`.
    fn stage_scale(&self, c: &TestConditions) -> f64 {
        let dv = 1.8 - c.vdd.value();
        let dt = (c.temperature.value() - 25.0) / 100.0;
        (1.0 + 0.12 * dv + 0.035 * dt).max(0.5)
    }
}

impl Default for LogicDevice {
    fn default() -> Self {
        Self::nominal()
    }
}

impl DeviceBackend for LogicDevice {
    fn name(&self) -> &'static str {
        "logic"
    }

    fn params(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("depth", f64::from(self.depth)),
            ("stage_ns", self.stage_ns),
            ("ir_gain", self.ir_gain),
            ("vth", self.vth),
        ]
    }

    fn stress_axes(&self) -> &'static [&'static str] {
        &["ir_droop", "turnaround_resonance", "toggle"]
    }

    fn die(&self) -> &Die {
        &self.die
    }

    fn structural_key(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, self.name().as_bytes());
        for (_, v) in self.params() {
            h = fnv1a_f64(h, v);
        }
        h
    }

    fn for_die(&self, die: Die) -> Box<dyn DeviceBackend> {
        Box::new(Self { die, ..self.clone() })
    }

    fn stress_total(&self, f: &PatternFeatures) -> f64 {
        self.ir_gain * f.dq_sso_mean * f.dq_sso_mean
            + 1.8 * f.burst_resonance * f.turnaround_density
            + 0.7 * f.data_toggle_mean
    }

    fn evaluate_with_stress(&self, stress_total: f64, c: &TestConditions) -> Parametrics {
        let flush = self.flush_ns() / self.die.speed().max(0.1) * self.stage_scale(c);
        let droop = self.die.stress_sensitivity() * stress_total;
        // The capture window is what remains of a generous scan budget
        // after the flush and the droop-widened settling tail.
        let t_dq = (44.0 - flush - 1.3 * droop).max(1.0);
        // One vector per flush: f_max is the reciprocal of the flush plus
        // droop-added settling.
        let f_max = (1000.0 / (flush + 0.12 * droop).max(1.0)).max(10.0);
        // Threshold-referenced retention floor; erosion saturates.
        let dt = (c.temperature.value() - 25.0) / 100.0;
        let vdd_min = self.vth + 0.58
            + self.die.vdd_min_offset()
            + 0.03 * dt
            + 0.045 * self.die.stress_sensitivity() * stress_total.max(0.0).sqrt();
        Parametrics {
            t_dq: Nanoseconds::new(t_dq),
            f_max: Megahertz::new(f_max),
            vdd_min: Volts::new(vdd_min),
        }
    }
}

impl From<LogicDevice> for Device {
    fn from(device: LogicDevice) -> Self {
        Device::from_backend(Box::new(device))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cichar_patterns::march;

    #[test]
    fn nominal_parametrics_land_inside_characterization_ranges() {
        let device = LogicDevice::nominal();
        let f = PatternFeatures::extract(&march::march_c_minus(64));
        let p = device.evaluate_features(&f, &TestConditions::nominal());
        assert!(p.t_dq.value() > 5.0 && p.t_dq.value() < 40.0, "t_dq={}", p.t_dq);
        assert!(p.f_max.value() > 80.0 && p.f_max.value() < 130.0, "f_max={}", p.f_max);
        assert!(p.vdd_min.value() > 1.1 && p.vdd_min.value() < 2.1, "vdd_min={}", p.vdd_min);
    }

    #[test]
    fn ir_droop_is_quadratic_in_sso() {
        let device = LogicDevice::nominal();
        let mut low = PatternFeatures::extract(&march::march_c_minus(64));
        low.dq_sso_mean = 0.2;
        low.burst_resonance = 0.0;
        low.turnaround_density = 0.0;
        low.data_toggle_mean = 0.0;
        let mut high = low;
        high.dq_sso_mean = 0.4;
        // Doubling SSO quadruples the droop term.
        assert!((device.stress_total(&high) / device.stress_total(&low) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn structural_key_ignores_die_but_not_parameters() {
        let nominal = LogicDevice::nominal();
        let redied = LogicDevice::new(Die::at_corner(crate::ProcessCorner::Fast), 9, 0.90, 2.4, 0.62);
        assert_eq!(nominal.structural_key(), redied.structural_key());
        let deeper = LogicDevice::new(Die::nominal(), 10, 0.90, 2.4, 0.62);
        assert_ne!(nominal.structural_key(), deeper.structural_key());
    }
}
