//! The pluggable device abstraction behind every campaign layer.
//!
//! The paper's method is device-agnostic: STP, DSV, GA hunts and wafer
//! streaming only assume a DUT that maps (stimulus features, conditions)
//! to parametric values with a single pass/fail crossing per measured
//! parameter. [`DeviceBackend`] captures exactly that contract as an
//! object-safe trait, and [`Device`] is the cheap shared handle the ATE
//! layers hold. `cichar_dut::conformance` is the admission test: a
//! backend that passes the battery is characterizable by the whole
//! engine.
//!
//! # Examples
//!
//! ```
//! use cichar_dut::{Device, MemoryDevice};
//!
//! let device: Device = MemoryDevice::nominal().into();
//! assert_eq!(device.name(), "memory");
//! let die = device.sample_die(42, 7);
//! let per_die = device.for_die(die);
//! assert_eq!(per_die.die().id(), 7);
//! // Re-dieing never changes the structural identity of the backend.
//! assert_eq!(per_die.structural_key(), device.structural_key());
//! ```

use crate::device::{MemoryDevice, Parametrics};
use crate::faults::FunctionalOutcome;
use crate::process::{Die, Lot, ProcessCorner};
use cichar_patterns::{Pattern, PatternFeatures, Test, TestConditions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::sync::Arc;

/// FNV-1a over bytes; the stable structural-identity hash used by
/// [`DeviceBackend::structural_key`] implementations.
pub fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The FNV-1a offset basis — seed value for [`fnv1a`] chains.
pub const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Hashes an `f64` into a [`fnv1a`] chain by its exact bit pattern, so
/// two backends differing in any parameter get different keys.
pub fn fnv1a_f64(h: u64, v: f64) -> u64 {
    fnv1a(h, &v.to_bits().to_le_bytes())
}

/// One device under test, behind any registered backend.
///
/// The contract every implementation must honor (and that
/// [`crate::conformance`] checks) is the single-crossing property the
/// search layers rely on:
///
/// * `vdd_min` must not depend on the forced `vdd`, and `f_max` must not
///   depend on the forced `clock` — otherwise a shmoo sweep along that
///   axis could cross pass/fail more than once and bisection would lose
///   its bracket;
/// * stress depends only on the stimulus features — never the die or the
///   conditions — so one hoisted stress total serves a whole batch and
///   every site of a touchdown sharing the same structure;
/// * `evaluate_batch` element `i` is bit-identical to the scalar
///   `evaluate_features(features, &conditions[i])`.
pub trait DeviceBackend: fmt::Debug + Send + Sync {
    /// The backend's registry name (`"memory"`, `"netlist"`, …).
    fn name(&self) -> &'static str;

    /// Effective structural parameters, in schema order (empty when the
    /// backend has no tunables). These are the values that entered
    /// construction — defaults merged with overrides.
    fn params(&self) -> Vec<(&'static str, f64)>;

    /// The stress axes this backend's breakdown model distinguishes.
    fn stress_axes(&self) -> &'static [&'static str];

    /// The die this instance carries.
    fn die(&self) -> &Die;

    /// Hash of the backend's *structural* identity: name, parameters and
    /// response-surface constants — everything except the die. Two
    /// instances with equal keys share stress arithmetic, which is what
    /// gates the multi-site shared-stress hoist.
    fn structural_key(&self) -> u64;

    /// The same structure re-instantiated on a different die — the
    /// per-site/per-die construction used by wafer touchdowns.
    fn for_die(&self, die: Die) -> Box<dyn DeviceBackend>;

    /// The total stress contribution of a stimulus. Must depend only on
    /// the pattern features.
    fn stress_total(&self, features: &PatternFeatures) -> f64;

    /// Evaluates one condition point with a pre-hoisted stress total.
    fn evaluate_with_stress(&self, stress_total: f64, conditions: &TestConditions) -> Parametrics;

    /// Evaluates pre-extracted features at one condition point.
    fn evaluate_features(
        &self,
        features: &PatternFeatures,
        conditions: &TestConditions,
    ) -> Parametrics {
        self.evaluate_with_stress(self.stress_total(features), conditions)
    }

    /// Evaluates one stimulus at many condition points — the SoA fast
    /// path behind batched oracle probing. The default hoists the stress
    /// total once and runs the scalar per-condition arithmetic, which
    /// keeps element `i` bit-identical to the scalar call.
    fn evaluate_batch(
        &self,
        features: &PatternFeatures,
        conditions: &[TestConditions],
    ) -> Vec<Parametrics> {
        let stress_total = self.stress_total(features);
        conditions
            .iter()
            .map(|c| self.evaluate_with_stress(stress_total, c))
            .collect()
    }

    /// Functionally executes a pattern against the device's array. The
    /// default models a defect-free array: every cycle retires with no
    /// mismatches. Backends with a functional fault model (the memory
    /// array simulator) override this.
    fn execute_pattern(&self, pattern: &Pattern) -> FunctionalOutcome {
        FunctionalOutcome {
            mismatches: Vec::new(),
            cycles: pattern.len(),
        }
    }

    /// Samples die `index` of a lot seeded by `lot_seed`, using the
    /// backend's own process-variation model. The default salts the seed
    /// chain with the backend name before deriving the per-die stream, so
    /// two different backends given the same `(lot_seed, index)` draw
    /// *independent* (non-correlated) parameter streams while each stays
    /// individually reproducible and `derive_seed`-compatible.
    fn sample_die(&self, lot_seed: u64, index: u32) -> Die {
        let salt = fnv1a(FNV_OFFSET, self.name().as_bytes());
        let seed = cichar_exec::derive_seed(lot_seed ^ salt, u64::from(index));
        let mut rng = StdRng::seed_from_u64(seed);
        Lot::default().sample_die(&mut rng, index)
    }

    /// The deterministic die at a named process corner.
    fn corner_die(&self, corner: ProcessCorner) -> Die {
        Die::at_corner(corner)
    }
}

impl DeviceBackend for MemoryDevice {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn params(&self) -> Vec<(&'static str, f64)> {
        Vec::new()
    }

    fn stress_axes(&self) -> &'static [&'static str] {
        &[
            "turnaround",
            "sso",
            "address",
            "row",
            "resonance",
            "interaction",
        ]
    }

    fn die(&self) -> &Die {
        MemoryDevice::die(self)
    }

    fn structural_key(&self) -> u64 {
        let h = fnv1a(FNV_OFFSET, self.name().as_bytes());
        self.surface().structural_key(h)
    }

    fn for_die(&self, die: Die) -> Box<dyn DeviceBackend> {
        Box::new(
            MemoryDevice::with_surface(die, self.surface().clone())
                .with_faults(self.faults().clone()),
        )
    }

    fn stress_total(&self, features: &PatternFeatures) -> f64 {
        MemoryDevice::stress_total(self, features)
    }

    fn evaluate_with_stress(&self, stress_total: f64, conditions: &TestConditions) -> Parametrics {
        MemoryDevice::evaluate_with_stress(self, stress_total, conditions)
    }

    fn evaluate_features(
        &self,
        features: &PatternFeatures,
        conditions: &TestConditions,
    ) -> Parametrics {
        MemoryDevice::evaluate_features(self, features, conditions)
    }

    fn evaluate_batch(
        &self,
        features: &PatternFeatures,
        conditions: &[TestConditions],
    ) -> Vec<Parametrics> {
        MemoryDevice::evaluate_batch(self, features, conditions)
    }

    fn execute_pattern(&self, pattern: &Pattern) -> FunctionalOutcome {
        MemoryDevice::execute_pattern(self, pattern)
    }
}

/// A cheap, clonable handle to a [`DeviceBackend`] instance — what the
/// ATE layers hold. Cloning shares the backend (devices are immutable
/// after construction), so per-session device clones stay free even for
/// structurally large backends like the gate netlist.
#[derive(Clone)]
pub struct Device {
    inner: Arc<dyn DeviceBackend>,
}

impl Device {
    /// Wraps a freshly built backend.
    pub fn from_backend(backend: Box<dyn DeviceBackend>) -> Self {
        Self {
            inner: Arc::from(backend),
        }
    }

    /// The backend's registry name.
    pub fn name(&self) -> &'static str {
        self.inner.name()
    }

    /// Effective structural parameters, in schema order.
    pub fn params(&self) -> Vec<(&'static str, f64)> {
        self.inner.params()
    }

    /// The stress axes the backend's breakdown model distinguishes.
    pub fn stress_axes(&self) -> &'static [&'static str] {
        self.inner.stress_axes()
    }

    /// Canonical `name[:key=value,...]` string of the *effective*
    /// structure — what enters journal fingerprints and manifests.
    pub fn descriptor(&self) -> String {
        let params = self.params();
        if params.is_empty() {
            return self.name().to_string();
        }
        let kv: Vec<String> = params.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{}:{}", self.name(), kv.join(","))
    }

    /// The die this instance carries.
    pub fn die(&self) -> &Die {
        self.inner.die()
    }

    /// Hash of the backend's die-independent structural identity.
    pub fn structural_key(&self) -> u64 {
        self.inner.structural_key()
    }

    /// The same structure on a different die.
    pub fn for_die(&self, die: Die) -> Device {
        Device::from_backend(self.inner.for_die(die))
    }

    /// Samples die `index` of a lot seeded by `lot_seed` through the
    /// backend's process-variation model.
    pub fn sample_die(&self, lot_seed: u64, index: u32) -> Die {
        self.inner.sample_die(lot_seed, index)
    }

    /// Samples `count` dies of one lot (ids `0..count`).
    pub fn sample_dies(&self, lot_seed: u64, count: usize) -> Vec<Die> {
        (0..count).map(|i| self.sample_die(lot_seed, i as u32)).collect()
    }

    /// The deterministic die at a named process corner.
    pub fn corner_die(&self, corner: ProcessCorner) -> Die {
        self.inner.corner_die(corner)
    }

    /// The total stress contribution of a stimulus.
    pub fn stress_total(&self, features: &PatternFeatures) -> f64 {
        self.inner.stress_total(features)
    }

    /// Evaluates one condition point with a pre-hoisted stress total.
    pub fn evaluate_with_stress(
        &self,
        stress_total: f64,
        conditions: &TestConditions,
    ) -> Parametrics {
        self.inner.evaluate_with_stress(stress_total, conditions)
    }

    /// Evaluates pre-extracted features at one condition point.
    pub fn evaluate_features(
        &self,
        features: &PatternFeatures,
        conditions: &TestConditions,
    ) -> Parametrics {
        self.inner.evaluate_features(features, conditions)
    }

    /// Evaluates one stimulus at many condition points (SoA fast path).
    pub fn evaluate_batch(
        &self,
        features: &PatternFeatures,
        conditions: &[TestConditions],
    ) -> Vec<Parametrics> {
        self.inner.evaluate_batch(features, conditions)
    }

    /// Evaluates a complete test (stimulus at its own conditions).
    pub fn evaluate(&self, test: &Test) -> Parametrics {
        self.evaluate_at(test, test.conditions())
    }

    /// Evaluates a test's stimulus at overridden conditions.
    pub fn evaluate_at(&self, test: &Test, conditions: &TestConditions) -> Parametrics {
        let features = PatternFeatures::extract(&test.pattern());
        self.evaluate_features(&features, conditions)
    }

    /// Functionally executes a pattern against the device's array.
    pub fn execute_pattern(&self, pattern: &Pattern) -> FunctionalOutcome {
        self.inner.execute_pattern(pattern)
    }
}

impl PartialEq for Device {
    /// Structural equality: same backend structure (name, parameters,
    /// surface constants) on the same die. Two handles cloned from one
    /// device always compare equal.
    fn eq(&self, other: &Self) -> bool {
        self.structural_key() == other.structural_key() && self.die() == other.die()
    }
}

impl fmt::Debug for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Device").field(&self.descriptor()).finish()
    }
}

impl From<MemoryDevice> for Device {
    fn from(device: MemoryDevice) -> Self {
        Device::from_backend(Box::new(device))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cichar_patterns::march;

    fn march_features() -> PatternFeatures {
        PatternFeatures::extract(&march::march_c_minus(64))
    }

    #[test]
    fn memory_backend_matches_inherent_methods_bit_for_bit() {
        let inherent = MemoryDevice::nominal();
        let device: Device = inherent.clone().into();
        let f = march_features();
        let c = TestConditions::nominal();
        assert_eq!(device.evaluate_features(&f, &c), inherent.evaluate_features(&f, &c));
        assert_eq!(device.stress_total(&f), inherent.stress_total(&f));
        let batch = device.evaluate_batch(&f, &[c, c]);
        assert_eq!(batch, inherent.evaluate_batch(&f, &[c, c]));
    }

    #[test]
    fn for_die_preserves_structure_and_swaps_die() {
        let device: Device = MemoryDevice::nominal().into();
        let die = device.sample_die(9, 3);
        let redied = device.for_die(die);
        assert_eq!(redied.die().id(), 3);
        assert_eq!(redied.structural_key(), device.structural_key());
        // for_die on the nominal prototype is bit-identical to direct
        // construction — the wafer path depends on this.
        let direct = MemoryDevice::new(*redied.die());
        let f = march_features();
        let c = TestConditions::nominal();
        assert_eq!(redied.evaluate_features(&f, &c), direct.evaluate_features(&f, &c));
    }

    #[test]
    fn descriptor_of_parameterless_backend_is_bare_name() {
        let device: Device = MemoryDevice::nominal().into();
        assert_eq!(device.descriptor(), "memory");
        assert_eq!(format!("{device:?}"), "Device(\"memory\")");
    }

    #[test]
    fn sample_die_is_reproducible_and_index_sensitive() {
        let device: Device = MemoryDevice::nominal().into();
        assert_eq!(device.sample_die(7, 0), device.sample_die(7, 0));
        assert_ne!(device.sample_die(7, 0).speed(), device.sample_die(7, 1).speed());
        assert_ne!(device.sample_die(7, 0).speed(), device.sample_die(8, 0).speed());
    }
}
