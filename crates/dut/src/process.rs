//! Die-to-die process variation.
//!
//! Characterization runs over "a statistically significant sample of
//! devices" (§1). A [`Lot`] models the manufacturing distribution; each
//! sampled [`Die`] carries the multipliers the response surface applies.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A named process corner with deterministic die parameters.
///
/// Corners bracket the lot distribution: `Typical` is the distribution
/// center, `Fast`/`Slow` are the ±3σ speed extremes, and `Noisy` is a
/// typical-speed die with outlier stress sensitivity (the kind of die whose
/// worst-case test drifts furthest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessCorner {
    /// Center of the distribution.
    Typical,
    /// Fast silicon: shorter delays, wider `t_dq` window.
    Fast,
    /// Slow silicon: longer delays, narrower `t_dq` window.
    Slow,
    /// Typical speed, but unusually sensitive to pattern stress.
    Noisy,
}

impl fmt::Display for ProcessCorner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ProcessCorner::Typical => "TT",
            ProcessCorner::Fast => "FF",
            ProcessCorner::Slow => "SS",
            ProcessCorner::Noisy => "TN",
        })
    }
}

/// One manufactured die: the process parameters the response surface needs.
///
/// # Examples
///
/// ```
/// use cichar_dut::{Die, ProcessCorner};
///
/// let die = Die::at_corner(ProcessCorner::Slow);
/// assert!(die.speed() < 1.0, "slow silicon has speed factor below 1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Die {
    id: u32,
    speed: f64,
    stress_sensitivity: f64,
    vdd_min_offset: f64,
}

impl Die {
    /// Speed multiplier applied to every timing quantity (1.0 = typical;
    /// above 1.0 = faster silicon = wider valid window).
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Multiplier on how strongly pattern stress erodes margins
    /// (1.0 = typical).
    pub fn stress_sensitivity(&self) -> f64 {
        self.stress_sensitivity
    }

    /// Additive offset on the die's minimum operating voltage, in volts.
    pub fn vdd_min_offset(&self) -> f64 {
        self.vdd_min_offset
    }

    /// The die's serial number within its lot.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The deterministic die at a named process corner.
    pub fn at_corner(corner: ProcessCorner) -> Self {
        let (speed, sens, vmin) = match corner {
            ProcessCorner::Typical => (1.0, 1.0, 0.0),
            ProcessCorner::Fast => (1.06, 0.85, -0.03),
            ProcessCorner::Slow => (0.94, 1.15, 0.04),
            ProcessCorner::Noisy => (1.0, 1.35, 0.02),
        };
        Self {
            id: 0,
            speed,
            stress_sensitivity: sens,
            vdd_min_offset: vmin,
        }
    }

    /// The exact distribution center — the die Table 1 is reproduced on.
    pub fn nominal() -> Self {
        Self::at_corner(ProcessCorner::Typical)
    }
}

impl fmt::Display for Die {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "die#{} speed={:.3} sens={:.3}",
            self.id, self.speed, self.stress_sensitivity
        )
    }
}

/// The manufacturing distribution dies are drawn from.
///
/// Parameters are Gaussian with the spreads of a healthy 140 nm-class
/// process, truncated at ±3σ so no sample is unphysical.
///
/// # Examples
///
/// ```
/// use cichar_dut::Lot;
/// use rand::SeedableRng;
///
/// let lot = Lot::default();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let sample = lot.sample_dies(&mut rng, 25);
/// assert_eq!(sample.len(), 25);
/// assert!(sample.iter().all(|d| d.speed() > 0.9 && d.speed() < 1.1));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lot {
    speed_sigma: f64,
    sensitivity_sigma: f64,
    vdd_min_sigma: f64,
}

impl Lot {
    /// Creates a lot with explicit spreads.
    pub fn new(speed_sigma: f64, sensitivity_sigma: f64, vdd_min_sigma: f64) -> Self {
        Self {
            speed_sigma,
            sensitivity_sigma,
            vdd_min_sigma,
        }
    }

    /// Draws one die.
    pub fn sample_die<R: Rng + ?Sized>(&self, rng: &mut R, id: u32) -> Die {
        Die {
            id,
            speed: 1.0 + truncated_gauss(rng, self.speed_sigma),
            stress_sensitivity: (1.0 + truncated_gauss(rng, self.sensitivity_sigma)).max(0.2),
            vdd_min_offset: truncated_gauss(rng, self.vdd_min_sigma),
        }
    }

    /// Draws a characterization sample of `count` dies.
    pub fn sample_dies<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<Die> {
        (0..count as u32).map(|id| self.sample_die(rng, id)).collect()
    }
}

impl Default for Lot {
    /// A healthy process: σ_speed = 2 %, σ_sensitivity = 8 %,
    /// σ_vddmin = 15 mV.
    fn default() -> Self {
        Self::new(0.02, 0.08, 0.015)
    }
}

/// Zero-mean Gaussian via Box–Muller, truncated at ±3σ.
fn truncated_gauss<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    if sigma == 0.0 {
        return 0.0;
    }
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (z * sigma).clamp(-3.0 * sigma, 3.0 * sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nominal_die_is_distribution_center() {
        let d = Die::nominal();
        assert_eq!(d.speed(), 1.0);
        assert_eq!(d.stress_sensitivity(), 1.0);
        assert_eq!(d.vdd_min_offset(), 0.0);
    }

    #[test]
    fn corners_order_by_speed() {
        let fast = Die::at_corner(ProcessCorner::Fast);
        let slow = Die::at_corner(ProcessCorner::Slow);
        let typ = Die::at_corner(ProcessCorner::Typical);
        assert!(fast.speed() > typ.speed());
        assert!(slow.speed() < typ.speed());
    }

    #[test]
    fn noisy_corner_has_outlier_sensitivity() {
        let noisy = Die::at_corner(ProcessCorner::Noisy);
        assert!(noisy.stress_sensitivity() > 1.2);
        assert_eq!(noisy.speed(), 1.0);
    }

    #[test]
    fn samples_are_within_three_sigma() {
        let lot = Lot::default();
        let mut rng = StdRng::seed_from_u64(17);
        for die in lot.sample_dies(&mut rng, 500) {
            assert!((die.speed() - 1.0).abs() <= 0.06 + 1e-12);
            assert!((die.stress_sensitivity() - 1.0).abs() <= 0.24 + 1e-12);
            assert!(die.vdd_min_offset().abs() <= 0.045 + 1e-12);
        }
    }

    #[test]
    fn sample_mean_is_near_center() {
        let lot = Lot::default();
        let mut rng = StdRng::seed_from_u64(23);
        let dies = lot.sample_dies(&mut rng, 2000);
        let mean: f64 = dies.iter().map(Die::speed).sum::<f64>() / dies.len() as f64;
        assert!((mean - 1.0).abs() < 0.005, "mean speed {mean}");
    }

    #[test]
    fn sampling_is_seed_reproducible() {
        let lot = Lot::default();
        let a = lot.sample_dies(&mut StdRng::seed_from_u64(5), 10);
        let b = lot.sample_dies(&mut StdRng::seed_from_u64(5), 10);
        assert_eq!(a, b);
    }

    #[test]
    fn die_ids_are_sequential() {
        let lot = Lot::default();
        let dies = lot.sample_dies(&mut StdRng::seed_from_u64(5), 5);
        let ids: Vec<u32> = dies.iter().map(Die::id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_sigma_lot_yields_nominal_dies() {
        let lot = Lot::new(0.0, 0.0, 0.0);
        let die = lot.sample_die(&mut StdRng::seed_from_u64(1), 7);
        assert_eq!(die.speed(), 1.0);
        assert_eq!(die.stress_sensitivity(), 1.0);
    }

    #[test]
    fn corner_display_names() {
        assert_eq!(ProcessCorner::Typical.to_string(), "TT");
        assert_eq!(ProcessCorner::Noisy.to_string(), "TN");
    }
}
