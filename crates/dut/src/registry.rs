//! The device-backend registry: names, parameter schemas, and strict
//! `name[:key=val,...]` specs.
//!
//! Every backend registers a [`BackendSchema`] (parameter names with
//! defaults and declared ranges) plus a builder. [`Registry::create`]
//! validates overrides against the schema *before* construction, so a
//! typo'd parameter or an out-of-range value is rejected with the full
//! registry listing instead of silently producing a nonsense device.
//!
//! # Examples
//!
//! ```
//! use cichar_dut::{DeviceSpec, Registry};
//!
//! let registry = Registry::builtin();
//! let spec: DeviceSpec = "netlist:levels=16,jitter=0.2".parse().unwrap();
//! let device = registry.create_from_spec(&spec).unwrap();
//! assert_eq!(device.name(), "netlist");
//! assert!(device.descriptor().contains("levels=16"));
//!
//! // Unknown backends and out-of-range values are rejected.
//! assert!(registry.create("dram", &[]).is_err());
//! assert!(registry.create("netlist", &[("levels".into(), 0.0)]).is_err());
//! ```

use crate::backend::Device;
use crate::logic::LogicDevice;
use crate::netlist::NetlistDevice;
use crate::device::MemoryDevice;
use crate::process::Die;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// One tunable structural parameter of a backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSpec {
    /// The `key` accepted in `--device name:key=val`.
    pub name: String,
    /// Value used when the spec does not override it.
    pub default: f64,
    /// Smallest accepted value (inclusive).
    pub min: f64,
    /// Largest accepted value (inclusive).
    pub max: f64,
    /// One-line description for the registry listing.
    pub doc: String,
}

/// A backend's public contract: name, documentation, stress axes and
/// parameter schema. Serializable so characterization artifacts can
/// record exactly which device family produced them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendSchema {
    /// Registry name (`"memory"`, `"netlist"`, `"logic"`, …).
    pub name: String,
    /// One-line description for the registry listing.
    pub doc: String,
    /// The stress axes the backend's breakdown model distinguishes.
    pub stress_axes: Vec<String>,
    /// Tunable parameters in canonical order.
    pub params: Vec<ParamSpec>,
}

impl BackendSchema {
    /// Resolves overrides against the schema: every key must name a
    /// declared parameter and every value must sit inside its declared
    /// range. Returns the full effective parameter vector in schema
    /// order.
    pub fn resolve(&self, overrides: &[(String, f64)]) -> Result<Vec<f64>, String> {
        for (key, value) in overrides {
            let spec = self
                .params
                .iter()
                .find(|p| p.name == *key)
                .ok_or_else(|| {
                    format!("backend '{}' has no parameter '{key}'", self.name)
                })?;
            if !value.is_finite() || *value < spec.min || *value > spec.max {
                return Err(format!(
                    "parameter '{key}'={value} out of declared range [{}, {}] for backend '{}'",
                    spec.min, spec.max, self.name
                ));
            }
        }
        Ok(self
            .params
            .iter()
            .map(|p| {
                overrides
                    .iter()
                    .rev()
                    .find(|(k, _)| *k == p.name)
                    .map_or(p.default, |(_, v)| *v)
            })
            .collect())
    }
}

/// A parsed, not-yet-constructed device selection: backend name plus raw
/// `key=val` overrides, exactly as given on a command line.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Backend name.
    pub name: String,
    /// Overrides in the order written.
    pub overrides: Vec<(String, f64)>,
}

impl DeviceSpec {
    /// The default selection: the `memory` backend with no overrides.
    pub fn default_backend() -> Self {
        Self {
            name: "memory".to_string(),
            overrides: Vec::new(),
        }
    }

    /// Whether this is the default selection (so callers can keep
    /// byte-identical default artifacts by omitting device metadata).
    pub fn is_default(&self) -> bool {
        self.name == "memory" && self.overrides.is_empty()
    }
}

impl FromStr for DeviceSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (name, rest) = match s.split_once(':') {
            Some((name, rest)) => (name, Some(rest)),
            None => (s, None),
        };
        if name.is_empty() {
            return Err("device spec has an empty backend name".to_string());
        }
        let mut overrides = Vec::new();
        if let Some(rest) = rest {
            for pair in rest.split(',') {
                let (key, value) = pair.split_once('=').ok_or_else(|| {
                    format!("malformed device parameter '{pair}' (expected key=val)")
                })?;
                if key.is_empty() {
                    return Err(format!("malformed device parameter '{pair}' (empty key)"));
                }
                let value: f64 = value.parse().map_err(|_| {
                    format!("malformed device parameter '{pair}' (value is not a number)")
                })?;
                overrides.push((key.to_string(), value));
            }
        }
        Ok(Self {
            name: name.to_string(),
            overrides,
        })
    }
}

impl fmt::Display for DeviceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        for (i, (k, v)) in self.overrides.iter().enumerate() {
            write!(f, "{}{k}={v}", if i == 0 { ":" } else { "," })?;
        }
        Ok(())
    }
}

/// A registered backend: its schema plus a builder from resolved
/// parameter values (in schema order).
struct Entry {
    schema: BackendSchema,
    build: fn(&[f64]) -> Device,
}

/// The backend registry.
pub struct Registry {
    entries: Vec<Entry>,
}

fn spec(name: &str, default: f64, min: f64, max: f64, doc: &str) -> ParamSpec {
    ParamSpec {
        name: name.to_string(),
        default,
        min,
        max,
        doc: doc.to_string(),
    }
}

fn build_memory(_: &[f64]) -> Device {
    MemoryDevice::nominal().into()
}

fn build_netlist(p: &[f64]) -> Device {
    NetlistDevice::new(
        Die::nominal(),
        p[0].round() as u32,
        p[1].round() as u32,
        p[2].round() as u64,
        p[3],
        p[4],
    )
    .into()
}

fn build_logic(p: &[f64]) -> Device {
    LogicDevice::new(Die::nominal(), p[0].round() as u32, p[1], p[2], p[3]).into()
}

impl Registry {
    /// An empty registry (for tests that exercise registration itself).
    pub fn empty() -> Self {
        Self { entries: Vec::new() }
    }

    /// The registry with all built-in backends: `memory`, `netlist`,
    /// `logic`.
    pub fn builtin() -> Self {
        let mut registry = Self::empty();
        registry
            .register(
                BackendSchema {
                    name: "memory".to_string(),
                    doc: "calibrated 140 nm memory behavioral model (the paper's DUT)"
                        .to_string(),
                    stress_axes: vec![
                        "turnaround".to_string(),
                        "sso".to_string(),
                        "address".to_string(),
                        "row".to_string(),
                        "resonance".to_string(),
                        "interaction".to_string(),
                    ],
                    params: Vec::new(),
                },
                build_memory,
            )
            .expect("builtin memory registers once");
        registry
            .register(
                BackendSchema {
                    name: "netlist".to_string(),
                    doc: "gate-level timing netlist; pass/fail = strobe vs critical-path delay"
                        .to_string(),
                    stress_axes: vec![
                        "crosstalk".to_string(),
                        "turnaround".to_string(),
                        "resonance".to_string(),
                    ],
                    params: vec![
                        spec("levels", 12.0, 2.0, 64.0, "logic depth of the synthesized DAG"),
                        spec("width", 8.0, 1.0, 64.0, "gates per level"),
                        spec("seed", 7.0, 0.0, 4294967295.0, "synthesis seed"),
                        spec("jitter", 0.15, 0.0, 0.5, "fractional per-gate delay spread"),
                        spec("strobe_budget", 38.0, 10.0, 80.0, "capture window (ns)"),
                    ],
                },
                build_netlist,
            )
            .expect("builtin netlist registers once");
        registry
            .register(
                BackendSchema {
                    name: "logic".to_string(),
                    doc: "pipelined logic core; quadratic IR-droop stress, threshold vdd_min"
                        .to_string(),
                    stress_axes: vec![
                        "ir_droop".to_string(),
                        "turnaround_resonance".to_string(),
                        "toggle".to_string(),
                    ],
                    params: vec![
                        spec("depth", 9.0, 2.0, 40.0, "pipeline stages"),
                        spec("stage_ns", 0.90, 0.2, 5.0, "latch-to-latch delay (ns)"),
                        spec("ir_gain", 2.4, 0.0, 10.0, "quadratic IR-droop stress gain"),
                        spec("vth", 0.62, 0.3, 1.0, "device threshold (V)"),
                    ],
                },
                build_logic,
            )
            .expect("builtin logic registers once");
        registry
    }

    /// Registers a backend. Duplicate names are rejected: a registry with
    /// two owners for one name could silently change what a saved spec
    /// means.
    pub fn register(&mut self, schema: BackendSchema, build: fn(&[f64]) -> Device) -> Result<(), String> {
        if self.entries.iter().any(|e| e.schema.name == schema.name) {
            return Err(format!(
                "backend '{}' is already registered",
                schema.name
            ));
        }
        self.entries.push(Entry { schema, build });
        Ok(())
    }

    /// Registered backend names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.schema.name.as_str()).collect()
    }

    /// The schema of one backend.
    pub fn schema(&self, name: &str) -> Option<&BackendSchema> {
        self.entries
            .iter()
            .find(|e| e.schema.name == name)
            .map(|e| &e.schema)
    }

    /// All schemas, in registration order.
    pub fn schemas(&self) -> Vec<&BackendSchema> {
        self.entries.iter().map(|e| &e.schema).collect()
    }

    /// Creates a device: validates `overrides` against the backend's
    /// schema, then builds on the nominal die. Campaign layers re-die the
    /// prototype via [`Device::for_die`] / [`Device::sample_die`].
    pub fn create(&self, name: &str, overrides: &[(String, f64)]) -> Result<Device, String> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.schema.name == name)
            .ok_or_else(|| format!("unknown device backend '{name}'"))?;
        let resolved = entry.schema.resolve(overrides)?;
        Ok((entry.build)(&resolved))
    }

    /// [`Self::create`] from a parsed [`DeviceSpec`].
    pub fn create_from_spec(&self, spec: &DeviceSpec) -> Result<Device, String> {
        self.create(&spec.name, &spec.overrides)
    }

    /// A human-readable listing of every registered backend and its
    /// parameter schema — what strict CLI parsing prints on rejection.
    pub fn listing(&self) -> String {
        let mut out = String::from("registered device backends:\n");
        for entry in &self.entries {
            let schema = &entry.schema;
            out.push_str(&format!("  {} — {}\n", schema.name, schema.doc));
            out.push_str(&format!(
                "      stress axes: {}\n",
                schema.stress_axes.join(", ")
            ));
            if schema.params.is_empty() {
                out.push_str("      (no parameters)\n");
            }
            for p in &schema.params {
                out.push_str(&format!(
                    "      {} = {} in [{}, {}] — {}\n",
                    p.name, p.default, p.min, p.max, p.doc
                ));
            }
        }
        out
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::builtin()
    }
}

/// Parses an optional strict `--device NAME[:key=val,...]` (either
/// `--device spec` or `--device=spec`) from an argument list and builds
/// the selected prototype. Unrecognized arguments are ignored — callers
/// own the rest of their CLI. On a bad spec the error carries the full
/// registry listing. Shared by the examples, which don't link the bench
/// scaffolding.
pub fn device_from_args<I>(args: I) -> Result<Device, String>
where
    I: IntoIterator<Item = String>,
{
    let registry = Registry::builtin();
    let mut spec = DeviceSpec::default_backend();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let raw = if let Some(v) = arg.strip_prefix("--device=") {
            Some(v.to_string())
        } else if arg == "--device" {
            Some(args.next().ok_or("--device requires a value")?)
        } else {
            None
        };
        if let Some(raw) = raw {
            spec = raw
                .trim()
                .parse()
                .map_err(|err| format!("{err}\n{}", registry.listing()))?;
        }
    }
    registry
        .create_from_spec(&spec)
        .map_err(|err| format!("{err}\n{}", registry.listing()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registers_three_backends() {
        let registry = Registry::builtin();
        assert_eq!(registry.names(), vec!["memory", "netlist", "logic"]);
        for name in registry.names() {
            let device = registry.create(name, &[]).unwrap();
            assert_eq!(device.name(), name);
        }
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut registry = Registry::builtin();
        let err = registry
            .register(
                BackendSchema {
                    name: "memory".to_string(),
                    doc: String::new(),
                    stress_axes: Vec::new(),
                    params: Vec::new(),
                },
                build_memory,
            )
            .unwrap_err();
        assert!(err.contains("already registered"), "{err}");
    }

    #[test]
    fn unknown_backend_and_unknown_param_are_rejected() {
        let registry = Registry::builtin();
        assert!(registry.create("dram", &[]).unwrap_err().contains("unknown device backend"));
        let err = registry
            .create("netlist", &[("depth".to_string(), 3.0)])
            .unwrap_err();
        assert!(err.contains("no parameter 'depth'"), "{err}");
    }

    #[test]
    fn out_of_range_param_is_rejected_at_create() {
        let registry = Registry::builtin();
        for (name, key, value) in [
            ("netlist", "levels", 0.0),
            ("netlist", "jitter", 0.9),
            ("logic", "vth", 2.0),
            ("logic", "stage_ns", f64::NAN),
        ] {
            let err = registry
                .create(name, &[(key.to_string(), value)])
                .unwrap_err();
            assert!(err.contains("out of declared range"), "{name}:{key}={value}: {err}");
        }
    }

    #[test]
    fn overrides_change_the_built_device() {
        let registry = Registry::builtin();
        let default = registry.create("netlist", &[]).unwrap();
        let deep = registry
            .create("netlist", &[("levels".to_string(), 24.0)])
            .unwrap();
        assert_ne!(default.structural_key(), deep.structural_key());
        assert!(deep.descriptor().contains("levels=24"));
    }

    #[test]
    fn device_spec_parses_and_round_trips() {
        let spec: DeviceSpec = "netlist:levels=16,jitter=0.2".parse().unwrap();
        assert_eq!(spec.name, "netlist");
        assert_eq!(spec.overrides.len(), 2);
        assert_eq!(spec.to_string(), "netlist:levels=16,jitter=0.2");
        assert_eq!(spec.to_string().parse::<DeviceSpec>().unwrap(), spec);
        assert!("memory".parse::<DeviceSpec>().unwrap().is_default());
        assert!(!spec.is_default());
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in ["", ":levels=2", "netlist:levels", "netlist:=2", "netlist:levels=abc"] {
            assert!(bad.parse::<DeviceSpec>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn listing_names_every_backend_and_parameter() {
        let listing = Registry::builtin().listing();
        for needle in ["memory", "netlist", "logic", "levels", "strobe_budget", "ir_gain"] {
            assert!(listing.contains(needle), "listing missing {needle}:\n{listing}");
        }
    }
}
