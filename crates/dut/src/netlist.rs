//! Gate-level timing-netlist backend.
//!
//! Where the memory backend's response surface is a calibrated analytic
//! model, this backend actually *builds* a circuit: a deterministic
//! layered DAG of logic gates whose per-gate delays come from the gate
//! kind plus a seeded jitter draw, in the style of procedural CPU/ALU
//! circuit builders. The device's true `t_dq` is the strobe budget minus
//! the propagated critical-path delay, `f_max` is the reciprocal of that
//! propagation, and `vdd_min` is the retention floor of the deepest path
//! — so pass/fail is literally "did the strobe beat the propagation".
//!
//! The stress mechanisms are those of wide combinational logic rather
//! than a memory array: simultaneous-switching-output crosstalk, bus
//! turnaround contention and resonant burst alignment. Address/row terms
//! of the memory model do not exist here.
//!
//! # Examples
//!
//! ```
//! use cichar_dut::{Device, NetlistDevice};
//!
//! let device: Device = NetlistDevice::default().into();
//! assert_eq!(device.name(), "netlist");
//! assert!(device.descriptor().starts_with("netlist:levels=12"));
//! ```

use crate::backend::{fnv1a, fnv1a_f64, Device, DeviceBackend, FNV_OFFSET};
use crate::device::Parametrics;
use crate::process::Die;
use cichar_patterns::{PatternFeatures, TestConditions};
use cichar_units::{Megahertz, Nanoseconds, Volts};

/// The four gate kinds the builder draws from, with their base
/// propagation delays in nanoseconds (loaded 140 nm-class standard
/// cells; XOR trees are the slow ones).
const GATE_KINDS: [(&str, f64); 4] = [
    ("inv", 0.38),
    ("nand", 0.52),
    ("nor", 0.57),
    ("xor", 0.71),
];

/// splitmix64: the per-gate deterministic draw behind delay jitter.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from a gate's coordinates.
fn gate_draw(seed: u64, level: u32, col: u32) -> f64 {
    let state = seed
        .wrapping_mul(0x1000_0000_01B3)
        .wrapping_add(u64::from(level) << 32)
        .wrapping_add(u64::from(col));
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// A gate-level timing netlist as a device under test.
///
/// Construction synthesizes a `levels × width` layered DAG: each gate at
/// `(level, col)` takes the slower of two fan-in arrivals from the
/// previous level (its own column and a seeded cross-link), adds its own
/// jittered gate delay, and propagates. The critical path is the maximum
/// arrival at the output level.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistDevice {
    die: Die,
    levels: u32,
    width: u32,
    seed: u64,
    jitter: f64,
    strobe_budget: f64,
    /// Synthesized at construction: nominal critical-path delay (ns) on a
    /// typical die at nominal conditions.
    critical_path_ns: f64,
}

impl NetlistDevice {
    /// Builds the netlist from its structural parameters on a given die.
    ///
    /// `levels` is the logic depth, `width` the gates per level, `seed`
    /// the synthesis seed, `jitter` the fractional per-gate delay spread,
    /// and `strobe_budget` the capture window (ns) the critical path is
    /// strobed against.
    pub fn new(die: Die, levels: u32, width: u32, seed: u64, jitter: f64, strobe_budget: f64) -> Self {
        let levels = levels.max(1);
        let width = width.max(1);
        let mut arrivals = vec![0.0_f64; width as usize];
        for level in 0..levels {
            let prev = arrivals.clone();
            for col in 0..width {
                let draw = gate_draw(seed, level, col);
                let kind = (splitmix64(seed ^ (u64::from(level) << 17) ^ u64::from(col))
                    % GATE_KINDS.len() as u64) as usize;
                let base = GATE_KINDS[kind].1;
                let delay = base * (1.0 + jitter * (draw - 0.5));
                let cross = (col as usize
                    + 1
                    + (splitmix64(seed ^ u64::from(level * 31 + col)) % u64::from(width.max(2) - 1))
                        as usize)
                    % width as usize;
                let fan_in = prev[col as usize].max(prev[cross]);
                arrivals[col as usize] = fan_in + delay;
            }
        }
        let critical_path_ns = arrivals.iter().copied().fold(0.0_f64, f64::max);
        Self {
            die,
            levels,
            width,
            seed,
            jitter,
            strobe_budget,
            critical_path_ns,
        }
    }

    /// The default netlist (12 levels × 8 gates) on the nominal die,
    /// calibrated so all three measured parameters trip inside their
    /// characterization ranges.
    pub fn nominal() -> Self {
        Self::new(Die::nominal(), 12, 8, 7, 0.15, 38.0)
    }

    /// The nominal critical-path delay (ns) of the synthesized netlist on
    /// a typical die at nominal conditions.
    pub fn critical_path_ns(&self) -> f64 {
        self.critical_path_ns
    }

    /// Supply/temperature derating of gate delay (1.0 at nominal; no
    /// clock term — propagation does not depend on how fast you strobe,
    /// which is exactly the single-crossing property `f_max` sweeps
    /// need). The slopes are gentle enough that `f_max` keeps headroom
    /// above the §4 relax clock (100 MHz) over the whole characterization
    /// condition box — otherwise T_DQ searches at hot/low-Vdd corners
    /// fail through the frequency envelope and quarantine as unconverged,
    /// the paper's "false convergence" trap in its other orientation.
    fn delay_scale(&self, c: &TestConditions) -> f64 {
        let dv = 1.8 - c.vdd.value();
        let dt = (c.temperature.value() - 25.0) / 100.0;
        (1.0 + 0.12 * dv + 0.035 * dt).max(0.5)
    }

    /// Critical-path propagation (ns) on this die under given conditions
    /// and stress.
    fn propagation(&self, stress_total: f64, c: &TestConditions) -> f64 {
        let structural = self.critical_path_ns / self.die.speed().max(0.1);
        structural * self.delay_scale(c)
            + 0.30 * self.die.stress_sensitivity() * stress_total
    }
}

impl Default for NetlistDevice {
    fn default() -> Self {
        Self::nominal()
    }
}

impl DeviceBackend for NetlistDevice {
    fn name(&self) -> &'static str {
        "netlist"
    }

    fn params(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("levels", f64::from(self.levels)),
            ("width", f64::from(self.width)),
            ("seed", self.seed as f64),
            ("jitter", self.jitter),
            ("strobe_budget", self.strobe_budget),
        ]
    }

    fn stress_axes(&self) -> &'static [&'static str] {
        &["crosstalk", "turnaround", "resonance"]
    }

    fn die(&self) -> &Die {
        &self.die
    }

    fn structural_key(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, self.name().as_bytes());
        for (_, v) in self.params() {
            h = fnv1a_f64(h, v);
        }
        fnv1a_f64(h, self.critical_path_ns)
    }

    fn for_die(&self, die: Die) -> Box<dyn DeviceBackend> {
        Box::new(Self { die, ..self.clone() })
    }

    fn stress_total(&self, f: &PatternFeatures) -> f64 {
        // Wide-logic mechanisms: SSO crosstalk dominates, bus turnaround
        // contends for the output drivers, and resonant bursts align
        // aggressor edges with the victim's sampling window.
        2.2 * f.dq_sso_mean
            + 1.1 * f.turnaround_density
            + 2.6 * f.burst_resonance * f.dq_sso_mean
            + 0.8 * f.data_toggle_mean
    }

    fn evaluate_with_stress(&self, stress_total: f64, c: &TestConditions) -> Parametrics {
        let prop = self.propagation(stress_total, c);
        let t_dq = (self.strobe_budget - prop).max(1.0);
        // f_max strobes the same propagation, slightly less
        // stress-sensitive because the launch edge re-arms per cycle.
        let prop_f = self.critical_path_ns / self.die.speed().max(0.1)
            * self.delay_scale(c)
            + 0.06 * self.die.stress_sensitivity() * stress_total;
        let f_max = (1000.0 / prop_f.max(1.0)).max(10.0);
        // Retention floor of the deepest path: depends on temperature and
        // stress, never on the forced vdd (single-crossing along the
        // MinVoltage axis).
        let dt = (c.temperature.value() - 25.0) / 100.0;
        let vdd_min = 1.16
            + 0.024 * self.critical_path_ns
            + self.die.vdd_min_offset()
            + 0.025 * dt
            + 0.016 * self.die.stress_sensitivity() * stress_total;
        Parametrics {
            t_dq: Nanoseconds::new(t_dq),
            f_max: Megahertz::new(f_max),
            vdd_min: Volts::new(vdd_min),
        }
    }
}

impl From<NetlistDevice> for Device {
    fn from(device: NetlistDevice) -> Self {
        Device::from_backend(Box::new(device))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cichar_patterns::march;

    #[test]
    fn synthesis_is_deterministic() {
        assert_eq!(NetlistDevice::nominal(), NetlistDevice::nominal());
        let a = NetlistDevice::new(Die::nominal(), 12, 8, 7, 0.15, 38.0);
        let b = NetlistDevice::new(Die::nominal(), 12, 8, 8, 0.15, 38.0);
        assert_ne!(a.critical_path_ns(), b.critical_path_ns());
    }

    #[test]
    fn nominal_parametrics_land_inside_characterization_ranges() {
        let device = NetlistDevice::nominal();
        let f = PatternFeatures::extract(&march::march_c_minus(64));
        let p = device.evaluate_features(&f, &TestConditions::nominal());
        assert!(p.t_dq.value() > 5.0 && p.t_dq.value() < 40.0, "t_dq={}", p.t_dq);
        assert!(p.f_max.value() > 80.0 && p.f_max.value() < 130.0, "f_max={}", p.f_max);
        assert!(p.vdd_min.value() > 1.1 && p.vdd_min.value() < 2.1, "vdd_min={}", p.vdd_min);
    }

    #[test]
    fn deeper_netlists_are_slower() {
        let shallow = NetlistDevice::new(Die::nominal(), 6, 8, 7, 0.15, 38.0);
        let deep = NetlistDevice::new(Die::nominal(), 24, 8, 7, 0.15, 38.0);
        assert!(deep.critical_path_ns() > shallow.critical_path_ns());
    }

    #[test]
    fn structural_key_ignores_die_but_not_parameters() {
        let nominal = NetlistDevice::nominal();
        let redied = NetlistDevice::new(Die::at_corner(crate::ProcessCorner::Slow), 12, 8, 7, 0.15, 38.0);
        assert_eq!(nominal.structural_key(), redied.structural_key());
        let wider = NetlistDevice::new(Die::nominal(), 12, 9, 7, 0.15, 38.0);
        assert_ne!(nominal.structural_key(), wider.structural_key());
    }
}
