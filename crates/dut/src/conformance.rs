//! The backend admission test: device-level properties every registered
//! backend must satisfy for the search layers to characterize it.
//!
//! The workspace-level `tests/backend_conformance.rs` harness drives the
//! full battery (including ATE-level trip searches, a mini DSV and fault
//! recovery); this module holds the *device-level* half so backend
//! authors can run it from their own unit tests without pulling in the
//! tester crates.
//!
//! Every check returns `Result<(), String>` with a message naming the
//! violated property, so a failing backend reads as a contract report
//! rather than a panic backtrace.
//!
//! # Examples
//!
//! ```
//! use cichar_dut::{conformance, Registry};
//!
//! let device = Registry::builtin().create("netlist", &[]).unwrap();
//! conformance::verify_device(&device, &conformance::reference_patterns()).unwrap();
//! ```

use crate::backend::Device;
use cichar_patterns::{march, Pattern, PatternFeatures, TestConditions};
use cichar_units::{Megahertz, Volts};

/// The stimulus suite the battery sweeps: a benign march, a stressier
/// march and a hand-built worst-case-style toggle pattern, giving the
/// checks low-, mid- and high-stress operating points.
pub fn reference_patterns() -> Vec<Pattern> {
    vec![
        march::march_x(64),
        march::march_c_minus(64),
        march::march_c_minus(256),
    ]
}

/// Runs the full device-level battery against one backend instance.
pub fn verify_device(device: &Device, patterns: &[Pattern]) -> Result<(), String> {
    if patterns.is_empty() {
        return Err("conformance needs at least one stimulus pattern".to_string());
    }
    for pattern in patterns {
        let features = PatternFeatures::extract(pattern);
        check_physical_bounds(device, &features)?;
        check_single_crossing_axes(device, &features)?;
        check_monotone_supply_response(device, &features)?;
        check_stress_hoist_parity(device, &features)?;
        check_batch_parity(device, &features)?;
    }
    check_stress_is_die_and_condition_free(device, patterns)?;
    check_for_die_contract(device)?;
    check_seeded_die_sampling(device)?;
    check_corner_ordering(device)?;
    Ok(())
}

/// Parametrics must be finite and inside physically meaningful bounds at
/// every condition point of a coarse grid.
pub fn check_physical_bounds(device: &Device, features: &PatternFeatures) -> Result<(), String> {
    for c in condition_grid() {
        let p = device.evaluate_features(features, &c);
        let (t, f, v) = (p.t_dq.value(), p.f_max.value(), p.vdd_min.value());
        if !(t.is_finite() && f.is_finite() && v.is_finite()) {
            return Err(format!("non-finite parametrics at {c:?}: {p}"));
        }
        if !(t >= 1.0 && f >= 10.0 && (0.5..3.0).contains(&v)) {
            return Err(format!("parametrics outside physical bounds at {c:?}: {p}"));
        }
    }
    Ok(())
}

/// Single-crossing along the forced axes: raising the forced `vdd` must
/// never *raise* `vdd_min`, and raising the forced `clock` must never
/// *raise* `f_max`. Then `vdd - vdd_min(vdd)` and `clock - f_max(clock)`
/// are strictly increasing along their sweeps, so each axis crosses
/// pass/fail exactly once and bisection keeps its bracket.
pub fn check_single_crossing_axes(
    device: &Device,
    features: &PatternFeatures,
) -> Result<(), String> {
    let nominal = TestConditions::nominal();
    let mut prev: Option<(f64, f64)> = None;
    for step in 0..=40 {
        let vdd = 1.1 + 0.025 * f64::from(step);
        let p = device.evaluate_features(features, &nominal.with_vdd(Volts::new(vdd)));
        if let Some((pv, pm)) = prev {
            if p.vdd_min.value() > pm + 1e-12 {
                return Err(format!(
                    "vdd_min rises with forced vdd ({pm} V at {pv} V vs {} V at {vdd} V) — \
                     a MinVoltage sweep could cross pass/fail more than once",
                    p.vdd_min.value()
                ));
            }
        }
        prev = Some((vdd, p.vdd_min.value()));
    }
    let mut prev: Option<(f64, f64)> = None;
    for step in 0..=40 {
        let clock = 60.0 + 1.75 * f64::from(step);
        let p = device.evaluate_features(features, &nominal.with_clock(Megahertz::new(clock)));
        if let Some((pc, pf)) = prev {
            if p.f_max.value() > pf + 1e-12 {
                return Err(format!(
                    "f_max rises with forced clock ({pf} MHz at {pc} MHz vs {} MHz at {clock} MHz) — \
                     a MaxFrequency sweep could cross pass/fail more than once",
                    p.f_max.value()
                ));
            }
        }
        prev = Some((clock, p.f_max.value()));
    }
    Ok(())
}

/// Dropping the supply must never *improve* timing: `t_dq` and `f_max`
/// are weakly monotone in `vdd` across the characterization window, so a
/// fail region stays bracketed once found.
pub fn check_monotone_supply_response(
    device: &Device,
    features: &PatternFeatures,
) -> Result<(), String> {
    let nominal = TestConditions::nominal();
    let mut prev: Option<(f64, f64, f64)> = None;
    for step in 0..=40 {
        let vdd = 1.1 + 0.025 * f64::from(step);
        let p = device.evaluate_features(features, &nominal.with_vdd(Volts::new(vdd)));
        if let Some((pv, pt, pf)) = prev {
            if p.t_dq.value() + 1e-12 < pt {
                return Err(format!(
                    "t_dq not weakly increasing in vdd: {pt} ns at {pv} V but {} ns at {vdd} V",
                    p.t_dq.value()
                ));
            }
            if p.f_max.value() + 1e-12 < pf {
                return Err(format!(
                    "f_max not weakly increasing in vdd: {pf} MHz at {pv} V but {} MHz at {vdd} V",
                    p.f_max.value()
                ));
            }
        }
        prev = Some((vdd, p.t_dq.value(), p.f_max.value()));
    }
    Ok(())
}

/// `evaluate_with_stress(stress_total(f), c)` must be bit-identical to
/// `evaluate_features(f, c)` — the hoist the batched hot path performs.
pub fn check_stress_hoist_parity(
    device: &Device,
    features: &PatternFeatures,
) -> Result<(), String> {
    let stress = device.stress_total(features);
    for c in condition_grid() {
        let hoisted = device.evaluate_with_stress(stress, &c);
        let scalar = device.evaluate_features(features, &c);
        if hoisted != scalar {
            return Err(format!(
                "stress-hoisted evaluation diverges from scalar at {c:?}: {hoisted} vs {scalar}"
            ));
        }
    }
    Ok(())
}

/// Every element of `evaluate_batch` must be bit-identical to the
/// corresponding scalar call.
pub fn check_batch_parity(device: &Device, features: &PatternFeatures) -> Result<(), String> {
    let conditions = condition_grid();
    let batch = device.evaluate_batch(features, &conditions);
    if batch.len() != conditions.len() {
        return Err(format!(
            "evaluate_batch returned {} results for {} conditions",
            batch.len(),
            conditions.len()
        ));
    }
    for (c, got) in conditions.iter().zip(&batch) {
        let want = device.evaluate_features(features, c);
        if *got != want {
            return Err(format!(
                "batch element diverges from scalar at {c:?}: {got} vs {want}"
            ));
        }
    }
    Ok(())
}

/// The stress total is a function of the stimulus features alone: it
/// must be identical across dies of the same structure (conditions never
/// enter its signature at all).
pub fn check_stress_is_die_and_condition_free(
    device: &Device,
    patterns: &[Pattern],
) -> Result<(), String> {
    let other = device.for_die(device.sample_die(0xD1E5, 17));
    for pattern in patterns {
        let features = PatternFeatures::extract(pattern);
        let here = device.stress_total(&features);
        let there = other.stress_total(&features);
        if here.to_bits() != there.to_bits() {
            return Err(format!(
                "stress_total depends on the die ({here} vs {there}) — \
                 the multi-site shared hoist would be unsound"
            ));
        }
    }
    Ok(())
}

/// `for_die` must swap the die while preserving the structural key, so
/// touchdown sessions built from one prototype share stress arithmetic.
pub fn check_for_die_contract(device: &Device) -> Result<(), String> {
    let die = device.sample_die(0xA11CE, 5);
    let redied = device.for_die(die);
    if redied.die() != &die {
        return Err("for_die did not install the requested die".to_string());
    }
    if redied.structural_key() != device.structural_key() {
        return Err("for_die changed the structural key".to_string());
    }
    if redied.name() != device.name() {
        return Err("for_die changed the backend name".to_string());
    }
    Ok(())
}

/// Seeded die sampling must be reproducible, index-sensitive and
/// seed-sensitive — `derive_seed` compatibility for wafer determinism.
pub fn check_seeded_die_sampling(device: &Device) -> Result<(), String> {
    if device.sample_die(11, 4) != device.sample_die(11, 4) {
        return Err("sample_die is not reproducible for equal (seed, index)".to_string());
    }
    if device.sample_die(11, 4) == device.sample_die(11, 5) {
        return Err("sample_die ignores the die index".to_string());
    }
    if device.sample_die(11, 4).speed() == device.sample_die(12, 4).speed() {
        return Err("sample_die ignores the lot seed".to_string());
    }
    if device.sample_die(11, 4).id() != 4 {
        return Err("sample_die must stamp the die with its index as id".to_string());
    }
    Ok(())
}

/// Corner dies must order the way process corners do: fast silicon is
/// faster than slow silicon.
pub fn check_corner_ordering(device: &Device) -> Result<(), String> {
    use crate::process::ProcessCorner;
    let fast = device.corner_die(ProcessCorner::Fast);
    let slow = device.corner_die(ProcessCorner::Slow);
    if fast.speed() <= slow.speed() {
        return Err(format!(
            "corner dies out of order: fast speed {} <= slow speed {}",
            fast.speed(),
            slow.speed()
        ));
    }
    Ok(())
}

/// Two *different* backends given the same lot seed must draw
/// independent (non-correlated) die-parameter streams: per-backend
/// seed-salting keeps one backend's process model from aliasing
/// another's. Sameness is checked on the speed draw, the parameter every
/// backend uses.
pub fn check_draw_independence(a: &Device, b: &Device, lot_seed: u64, count: usize) -> Result<(), String> {
    if a.name() == b.name() {
        return Err("draw-independence check needs two different backends".to_string());
    }
    let draws_a: Vec<f64> = (0..count).map(|i| a.sample_die(lot_seed, i as u32).speed()).collect();
    let draws_b: Vec<f64> = (0..count).map(|i| b.sample_die(lot_seed, i as u32).speed()).collect();
    if draws_a == draws_b {
        return Err(format!(
            "backends '{}' and '{}' draw identical die streams for lot seed {lot_seed}",
            a.name(),
            b.name()
        ));
    }
    let corr = correlation(&draws_a, &draws_b);
    if corr.abs() > 0.5 {
        return Err(format!(
            "die draws of '{}' and '{}' are correlated (r={corr:.3}) for lot seed {lot_seed}",
            a.name(),
            b.name()
        ));
    }
    Ok(())
}

/// Pearson correlation of two equal-length samples (0.0 when degenerate).
fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len()) as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / n;
    let (ma, mb) = (mean(a), mean(b));
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let var = |xs: &[f64], m: f64| xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>();
    let denom = (var(a, ma) * var(b, mb)).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        cov / denom
    }
}

/// The coarse condition grid the parity and bounds checks sweep: the
/// cross of supply, temperature and clock points spanning the
/// characterization windows.
fn condition_grid() -> Vec<TestConditions> {
    let mut grid = Vec::new();
    for vdd in [1.2, 1.5, 1.8, 2.0] {
        for temp in [0.0, 25.0, 85.0] {
            for clock in [60.0, 100.0, 125.0] {
                grid.push(
                    TestConditions::nominal()
                        .with_vdd(Volts::new(vdd))
                        .with_temperature(cichar_units::Celsius::new(temp))
                        .with_clock(Megahertz::new(clock)),
                );
            }
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn every_builtin_backend_passes_the_device_battery() {
        let registry = Registry::builtin();
        let patterns = reference_patterns();
        for name in registry.names() {
            let device = registry.create(name, &[]).unwrap();
            verify_device(&device, &patterns)
                .unwrap_or_else(|err| panic!("backend '{name}' failed conformance: {err}"));
        }
    }

    #[test]
    fn builtin_backend_pairs_draw_independent_dies() {
        let registry = Registry::builtin();
        let devices: Vec<_> = registry
            .names()
            .iter()
            .map(|n| registry.create(n, &[]).unwrap())
            .collect();
        for i in 0..devices.len() {
            for j in (i + 1)..devices.len() {
                check_draw_independence(&devices[i], &devices[j], 0x5EED, 64)
                    .unwrap_or_else(|err| panic!("{err}"));
            }
        }
    }

    #[test]
    fn correlation_detects_identical_streams() {
        let xs: Vec<f64> = (0..32).map(f64::from).collect();
        assert!((correlation(&xs, &xs) - 1.0).abs() < 1e-12);
    }
}
