//! Behavioral model of the paper's 140 nm memory test chip.
//!
//! The original experiment interrogates proprietary silicon through an
//! industrial ATE. This crate substitutes a physically-motivated behavioral
//! model (see `DESIGN.md` §2 for the substitution argument): a
//! [`MemoryDevice`] carries per-die process variation ([`Die`], sampled
//! from a [`Lot`]) and maps any test — its stress features plus its
//! conditions — through a calibrated [`ResponseSurface`] to the device's
//! *true* parametric values ([`Parametrics`]):
//!
//! * `t_dq` — the data-output valid time of §6 (spec = 20 ns, smaller is
//!   worse),
//! * `f_max` — the §4 example's maximum operating frequency (pass region
//!   below the fail region, eq. 3's orientation),
//! * `vdd_min` — minimum operating voltage (pass region above the fail
//!   region, eq. 4's orientation).
//!
//! The ATE simulator (`cichar-ate`) adds measurement noise and drift on
//! top; this crate is deliberately noise-free so tests can assert exact
//! physics.
//!
//! # Examples
//!
//! ```
//! use cichar_dut::MemoryDevice;
//! use cichar_patterns::{march, Test};
//!
//! let device = MemoryDevice::nominal();
//! let test = Test::deterministic("march_c-", march::march_c_minus(64));
//! let p = device.evaluate(&test);
//! // A benign production test leaves a comfortable T_DQ margin…
//! assert!(p.t_dq.value() > 30.0);
//! // …far above the 20 ns specification.
//! assert!(p.t_dq.value() > cichar_dut::T_DQ_SPEC.value());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod conformance;
mod device;
mod faults;
mod logic;
mod netlist;
mod physics;
mod process;
pub mod registry;

pub use backend::{Device, DeviceBackend};
pub use device::{MemoryDevice, Parametrics};
pub use faults::{fault_coverage, Fault, FaultSet, FunctionalOutcome, MemorySim, Mismatch};
pub use logic::LogicDevice;
pub use netlist::NetlistDevice;
pub use physics::{ResponseSurface, StressBreakdown};
pub use process::{Die, Lot, ProcessCorner};
pub use registry::{device_from_args, BackendSchema, DeviceSpec, ParamSpec, Registry};

use cichar_units::Nanoseconds;

/// The data-output valid time specification of the paper's experiment:
/// `spec = 20 ns` (§6). A test whose measured `t_dq` falls below this is a
/// specification violation.
pub const T_DQ_SPEC: Nanoseconds = Nanoseconds::new(20.0);
