//! Memory fault models and functional pattern execution.
//!
//! The parametric response surface answers "how much margin does this test
//! leave"; this module answers the other half of §1's production question:
//! "does the device *function*". A [`FaultSet`] injects classic memory
//! defects — stuck-at, transition and coupling faults from the memory-test
//! taxonomy of the paper's ref. \[16\] — and [`MemorySim`] replays a
//! pattern cycle by cycle against the faulty array, reporting every read
//! mismatch.
//!
//! This is what gives the deterministic March suite its real job in the
//! simulation: March C- is *complete* for single stuck-at and transition
//! faults over the swept array, while a random pattern only catches them
//! probabilistically — the classic coverage argument.

use cichar_patterns::{power_up_word, MemOp, Pattern};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One injected defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// Cell bit reads a constant value; writes to it are lost.
    StuckAt {
        /// Faulty cell address.
        address: u16,
        /// Faulty bit position (0–15).
        bit: u8,
        /// The value the bit is stuck at.
        value: bool,
    },
    /// Cell bit cannot make one transition direction (a transition fault):
    /// `rising = true` means 0→1 fails, `false` means 1→0 fails.
    Transition {
        /// Faulty cell address.
        address: u16,
        /// Faulty bit position (0–15).
        bit: u8,
        /// Which transition fails.
        rising: bool,
    },
    /// Writing the aggressor cell such that bit `bit` *changes* flips the
    /// same bit of the victim cell (an inversion coupling fault).
    Coupling {
        /// The cell whose write disturbs.
        aggressor: u16,
        /// The cell that gets flipped.
        victim: u16,
        /// The coupled bit position (0–15).
        bit: u8,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Fault::StuckAt { address, bit, value } => {
                write!(f, "SAF @{address:04x}.{bit} = {}", u8::from(value))
            }
            Fault::Transition { address, bit, rising } => {
                write!(
                    f,
                    "TF @{address:04x}.{bit} ({} fails)",
                    if rising { "0->1" } else { "1->0" }
                )
            }
            Fault::Coupling { aggressor, victim, bit } => {
                write!(f, "CF {aggressor:04x}.{bit} -> {victim:04x}.{bit}")
            }
        }
    }
}

/// A set of injected defects.
///
/// # Examples
///
/// ```
/// use cichar_dut::{Fault, FaultSet};
///
/// let faults = FaultSet::new(vec![Fault::StuckAt {
///     address: 0x0010,
///     bit: 3,
///     value: false,
/// }]);
/// assert_eq!(faults.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSet {
    faults: Vec<Fault>,
}

impl FaultSet {
    /// Creates a fault set.
    pub fn new(faults: Vec<Fault>) -> Self {
        Self { faults }
    }

    /// A defect-free device.
    pub fn none() -> Self {
        Self::default()
    }

    /// The injected faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of injected faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the set is empty (a healthy array).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// One observed read mismatch during functional execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mismatch {
    /// Pattern cycle index of the failing read.
    pub cycle: usize,
    /// Address read.
    pub address: u16,
    /// The word the (ideal) pattern expected.
    pub expected: u16,
    /// The word the faulty array produced.
    pub actual: u16,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {}: @{:04x} expected {:04x}, got {:04x}",
            self.cycle, self.address, self.expected, self.actual
        )
    }
}

/// Result of functionally executing one pattern.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionalOutcome {
    /// All read mismatches, in cycle order.
    pub mismatches: Vec<Mismatch>,
    /// Cycles executed.
    pub cycles: usize,
}

impl FunctionalOutcome {
    /// Whether the pattern passed (no mismatches).
    pub fn pass(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// The first failing cycle, if any — where a production tester stops.
    pub fn first_fail(&self) -> Option<&Mismatch> {
        self.mismatches.first()
    }
}

/// Cycle-accurate memory array simulation with fault injection.
///
/// The array powers up in the same pseudo-random background the pattern
/// generators assume ([`power_up_word`]), so a fault-free simulation
/// reproduces every pattern's expected data exactly.
///
/// # Examples
///
/// ```
/// use cichar_dut::{Fault, FaultSet, MemorySim};
/// use cichar_patterns::march;
///
/// // A stuck-at fault inside the swept array: March C- must catch it.
/// let faults = FaultSet::new(vec![Fault::StuckAt { address: 5, bit: 0, value: true }]);
/// let outcome = MemorySim::new(faults).execute(&march::march_c_minus(64));
/// assert!(!outcome.pass());
/// ```
#[derive(Debug, Clone)]
pub struct MemorySim {
    image: Vec<u16>,
    faults: FaultSet,
}

impl MemorySim {
    /// Creates a simulation with the given faults, array at power-up state.
    pub fn new(faults: FaultSet) -> Self {
        Self {
            image: (0..=u16::MAX).map(power_up_word).collect(),
            faults,
        }
    }

    /// A healthy array.
    pub fn healthy() -> Self {
        Self::new(FaultSet::none())
    }

    /// Applies the fault-filtered effect of writing `data` to `address`.
    fn write(&mut self, address: u16, data: u16) {
        let old = self.image[usize::from(address)];
        let mut stored = data;
        for fault in self.faults.faults() {
            match *fault {
                Fault::StuckAt { address: a, bit, value } if a == address => {
                    let mask = 1u16 << bit;
                    if value {
                        stored |= mask;
                    } else {
                        stored &= !mask;
                    }
                }
                Fault::Transition { address: a, bit, rising } if a == address => {
                    let mask = 1u16 << bit;
                    let was_set = old & mask != 0;
                    let wants_set = stored & mask != 0;
                    let blocked = if rising { !was_set && wants_set } else { was_set && !wants_set };
                    if blocked {
                        // The cell keeps its old state.
                        stored = (stored & !mask) | (old & mask);
                    }
                }
                _ => {}
            }
        }
        self.image[usize::from(address)] = stored;
        // Coupling: a *changed* aggressor bit flips the victim's bit.
        let changed = old ^ stored;
        for fault in self.faults.faults() {
            if let Fault::Coupling { aggressor, victim, bit } = *fault {
                if aggressor == address && changed & (1 << bit) != 0 && victim != address {
                    self.image[usize::from(victim)] ^= 1 << bit;
                }
            }
        }
    }

    /// Reads `address` through the fault filter.
    fn read(&self, address: u16) -> u16 {
        let mut word = self.image[usize::from(address)];
        for fault in self.faults.faults() {
            if let Fault::StuckAt { address: a, bit, value } = *fault {
                if a == address {
                    let mask = 1u16 << bit;
                    if value {
                        word |= mask;
                    } else {
                        word &= !mask;
                    }
                }
            }
        }
        word
    }

    /// Replays a pattern cycle by cycle, comparing every read against the
    /// pattern's expected data.
    pub fn execute(&mut self, pattern: &Pattern) -> FunctionalOutcome {
        let mut mismatches = Vec::new();
        for (cycle, v) in pattern.iter().enumerate() {
            match v.op {
                MemOp::Write => self.write(v.address, v.data),
                MemOp::Read => {
                    let actual = self.read(v.address);
                    if actual != v.data {
                        mismatches.push(Mismatch {
                            cycle,
                            address: v.address,
                            expected: v.data,
                            actual,
                        });
                    }
                }
                MemOp::Nop => {}
            }
        }
        FunctionalOutcome {
            mismatches,
            cycles: pattern.len(),
        }
    }
}

/// Fraction of `faults` that `pattern` detects, each fault injected into a
/// fresh array — the classic fault-coverage metric of ref. \[16\].
pub fn fault_coverage(pattern: &Pattern, faults: &[Fault]) -> f64 {
    if faults.is_empty() {
        return 1.0;
    }
    let detected = faults
        .iter()
        .filter(|&&fault| {
            !MemorySim::new(FaultSet::new(vec![fault]))
                .execute(pattern)
                .pass()
        })
        .count();
    detected as f64 / faults.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cichar_patterns::{march, random, TestConditions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Every single stuck-at fault over the first `n` addresses and all
    /// 16 bits, both polarities.
    fn all_stuck_at(n: u16) -> Vec<Fault> {
        let mut faults = Vec::new();
        for address in 0..n {
            for bit in 0..16 {
                for value in [false, true] {
                    faults.push(Fault::StuckAt { address, bit, value });
                }
            }
        }
        faults
    }

    #[test]
    fn healthy_array_passes_every_deterministic_pattern() {
        for (name, p) in march::standard_suite() {
            let outcome = MemorySim::healthy().execute(&p);
            assert!(outcome.pass(), "{name}: {:?}", outcome.first_fail());
        }
    }

    #[test]
    fn healthy_array_passes_random_programs() {
        let mut rng = StdRng::seed_from_u64(61);
        for _ in 0..30 {
            let t = random::random_test_at(&mut rng, TestConditions::nominal());
            let outcome = MemorySim::healthy().execute(&t.pattern());
            assert!(outcome.pass(), "{}: {:?}", t.name(), outcome.first_fail());
        }
    }

    #[test]
    fn march_c_minus_has_complete_stuck_at_coverage() {
        // The textbook property: March C- detects every single stuck-at
        // fault in the swept array.
        let pattern = march::march_c_minus(64);
        let coverage = fault_coverage(&pattern, &all_stuck_at(64));
        assert_eq!(coverage, 1.0, "March C- SAF coverage must be 100%");
    }

    #[test]
    fn mats_plus_also_covers_stuck_at() {
        let pattern = march::mats_plus(64);
        let coverage = fault_coverage(&pattern, &all_stuck_at(64));
        assert_eq!(coverage, 1.0);
    }

    #[test]
    fn march_c_minus_covers_transition_faults() {
        let pattern = march::march_c_minus(64);
        let mut faults = Vec::new();
        for address in 0..64u16 {
            for bit in [0u8, 7, 15] {
                for rising in [false, true] {
                    faults.push(Fault::Transition { address, bit, rising });
                }
            }
        }
        let coverage = fault_coverage(&pattern, &faults);
        assert_eq!(coverage, 1.0, "March C- TF coverage must be 100%");
    }

    #[test]
    fn march_c_minus_covers_coupling_faults() {
        let pattern = march::march_c_minus(64);
        let mut faults = Vec::new();
        for victim in 0..32u16 {
            faults.push(Fault::Coupling {
                aggressor: victim + 1,
                victim,
                bit: 0,
            });
            faults.push(Fault::Coupling {
                aggressor: victim,
                victim: victim + 1,
                bit: 0,
            });
        }
        let coverage = fault_coverage(&pattern, &faults);
        assert!(coverage >= 0.95, "March C- CF coverage {coverage}");
    }

    #[test]
    fn random_patterns_have_inferior_stuck_at_coverage() {
        // The §1 trade-off from the other side: deterministic structural
        // tests beat random patterns at fault coverage (which is why
        // production keeps them), while random tests find parametric
        // corners March never will.
        let mut rng = StdRng::seed_from_u64(62);
        let faults = all_stuck_at(64);
        let mut best_random: f64 = 0.0;
        for _ in 0..5 {
            let t = random::random_test_at(&mut rng, TestConditions::nominal());
            best_random = best_random.max(fault_coverage(&t.pattern(), &faults));
        }
        assert!(
            best_random < 1.0,
            "a 100..1000-cycle random pattern should not reach full SAF coverage"
        );
    }

    #[test]
    fn stuck_at_semantics() {
        let mut sim = MemorySim::new(FaultSet::new(vec![Fault::StuckAt {
            address: 3,
            bit: 2,
            value: true,
        }]));
        sim.write(3, 0x0000);
        assert_eq!(sim.read(3), 0x0004, "bit 2 stuck high");
        sim.write(3, 0xFFFF);
        assert_eq!(sim.read(3), 0xFFFF);
    }

    #[test]
    fn transition_fault_semantics() {
        let mut sim = MemorySim::new(FaultSet::new(vec![Fault::Transition {
            address: 9,
            bit: 0,
            rising: true,
        }]));
        sim.write(9, 0x0000);
        assert_eq!(sim.read(9) & 1, 0);
        // 0→1 fails…
        sim.write(9, 0x0001);
        assert_eq!(sim.read(9) & 1, 0, "rising transition blocked");
        // …but the cell still accepts 1→0 and other bits.
        sim.write(9, 0xFFFE);
        assert_eq!(sim.read(9), 0xFFFE);
    }

    #[test]
    fn coupling_fault_semantics() {
        let mut sim = MemorySim::new(FaultSet::new(vec![Fault::Coupling {
            aggressor: 1,
            victim: 2,
            bit: 4,
        }]));
        // Settle both cells (the power-up background means the first
        // aggressor write may itself toggle the coupled bit).
        sim.write(2, 0x0000);
        sim.write(1, 0x0000);
        let settled = sim.read(2);
        // Toggling the aggressor's coupled bit flips exactly that victim bit.
        sim.write(1, 0x0010);
        assert_eq!(sim.read(2) ^ settled, 0x0010, "victim bit flipped");
        let after_flip = sim.read(2);
        // Writing the aggressor without changing bit 4 leaves victim alone.
        sim.write(1, 0x0011);
        assert_eq!(sim.read(2), after_flip);
    }

    #[test]
    fn self_coupling_is_ignored() {
        let mut sim = MemorySim::new(FaultSet::new(vec![Fault::Coupling {
            aggressor: 7,
            victim: 7,
            bit: 0,
        }]));
        sim.write(7, 0x0001);
        assert_eq!(sim.read(7), 0x0001, "no self-flip feedback");
    }

    #[test]
    fn first_fail_is_the_earliest_cycle() {
        let faults = FaultSet::new(vec![Fault::StuckAt {
            address: 0,
            bit: 0,
            value: true,
        }]);
        let outcome = MemorySim::new(faults).execute(&march::march_c_minus(64));
        let first = outcome.first_fail().expect("detected");
        assert!(outcome.mismatches.iter().all(|m| m.cycle >= first.cycle));
        // March C- element 2 starts reading at cycle 64; address 0's first
        // read-0 happens there and the stuck-high bit trips it.
        assert_eq!(first.cycle, 64);
    }

    #[test]
    fn displays_are_informative() {
        let f = Fault::StuckAt { address: 0x10, bit: 3, value: false };
        assert!(f.to_string().contains("SAF"));
        let m = Mismatch { cycle: 5, address: 1, expected: 2, actual: 3 };
        assert!(m.to_string().contains("cycle 5"));
    }
}
