//! The calibrated response surface: stress features × conditions × die →
//! true parametric values.
//!
//! # Model
//!
//! The data-output valid window shrinks when the pattern stresses the
//! output path and the power-delivery network:
//!
//! ```text
//! t_dq = speed(die) · cond_scale(vdd, temp, clock) · T0
//!        − sens(die) · stress_amp(vdd, temp, clock) · stress(features)
//! ```
//!
//! `stress` is a weighted sum of the [`PatternFeatures`] mechanisms plus an
//! *interaction* term (simultaneous switching × address activity × supply
//! resonance). The interaction is what makes the worst case hard to find:
//! no single mechanism pushed to its own maximum reaches the global worst
//! case, so deterministic single-mechanism tests (March) and undirected
//! random sampling both under-estimate the drift — exactly the premise of
//! the paper's §3.
//!
//! # Calibration
//!
//! Constants are calibrated so the *shape* of Table 1 reproduces on the
//! nominal die at nominal conditions (Vdd = 1.8 V):
//!
//! | test            | paper `T_DQ` | model target |
//! |-----------------|--------------|--------------|
//! | March (determ.) | 32.3 ns      | ≈ 32.3 ns    |
//! | best random     | 28.5 ns      | ≈ 28–29 ns   |
//! | NN + GA         | 22.1 ns      | ≈ 22 ns floor|

use crate::process::Die;
use cichar_patterns::{PatternFeatures, TestConditions};
use cichar_units::{Megahertz, Nanoseconds, Volts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-mechanism contribution to the total stress, in nanoseconds of
/// `t_dq` erosion at nominal conditions on the nominal die.
///
/// Exposed for analysis and for the ablation experiments: fig. 5's final
/// step re-analyzes worst-case tests "in detail"; the breakdown is this
/// model's equivalent of that wafer-probing step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StressBreakdown {
    /// Bus-turnaround contribution.
    pub turnaround: f64,
    /// Simultaneous-switching-output contribution.
    pub sso: f64,
    /// Address-bus activity contribution.
    pub address: f64,
    /// Row-switching contribution.
    pub row: f64,
    /// Supply-resonance contribution.
    pub resonance: f64,
    /// The three-way interaction term.
    pub interaction: f64,
}

impl StressBreakdown {
    /// Total stress in nanoseconds.
    pub fn total(&self) -> f64 {
        self.turnaround + self.sso + self.address + self.row + self.resonance + self.interaction
    }

    /// The mechanism with the largest contribution, as `(name, ns)`.
    pub fn dominant(&self) -> (&'static str, f64) {
        let entries = [
            ("turnaround", self.turnaround),
            ("sso", self.sso),
            ("address", self.address),
            ("row", self.row),
            ("resonance", self.resonance),
            ("interaction", self.interaction),
        ];
        entries
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("entries is non-empty")
    }
}

impl fmt::Display for StressBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stress {:.2} ns (turn {:.2}, sso {:.2}, addr {:.2}, row {:.2}, res {:.2}, x {:.2})",
            self.total(),
            self.turnaround,
            self.sso,
            self.address,
            self.row,
            self.resonance,
            self.interaction
        )
    }
}

/// The calibrated device response surface.
///
/// # Examples
///
/// ```
/// use cichar_dut::{Die, ResponseSurface};
/// use cichar_patterns::{march, PatternFeatures, TestConditions};
///
/// let surface = ResponseSurface::calibrated();
/// let features = PatternFeatures::extract(&march::march_c_minus(64));
/// let t_dq = surface.t_dq(&features, &TestConditions::nominal(), &Die::nominal());
/// assert!((t_dq.value() - 32.3).abs() < 0.5, "March lands near Table 1");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseSurface {
    /// Unstressed valid window on the nominal die at nominal conditions.
    t0: f64,
    /// Stress weights (ns at full feature intensity).
    w_turnaround: f64,
    w_sso: f64,
    w_address: f64,
    w_row: f64,
    w_resonance: f64,
    w_interaction: f64,
    /// Condition sensitivities of the unstressed window.
    kv_t0: f64,
    kt_t0: f64,
    kc_t0: f64,
    /// Condition amplification of stress.
    kv_stress: f64,
    kt_stress: f64,
    kc_stress: f64,
    /// f_max model.
    f0: f64,
    kv_f: f64,
    g_f: f64,
    /// vdd_min model.
    v0: f64,
    g_v: f64,
}

impl ResponseSurface {
    /// The constants calibrated against Table 1 (see module docs).
    pub fn calibrated() -> Self {
        Self {
            t0: 33.4,
            w_turnaround: 1.2,
            w_sso: 3.0,
            w_address: 1.5,
            w_row: 0.8,
            w_resonance: 3.0,
            w_interaction: 2.8,
            kv_t0: 0.25,
            kt_t0: 0.05,
            kc_t0: 0.08,
            kv_stress: 0.6,
            kt_stress: 0.1,
            kc_stress: 0.3,
            f0: 112.0,
            kv_f: 0.30,
            g_f: 0.6,
            v0: 1.35,
            g_v: 0.012,
        }
    }

    /// The unstressed `t_dq` window at nominal everything.
    pub fn t0(&self) -> Nanoseconds {
        Nanoseconds::new(self.t0)
    }

    /// Folds every surface constant into a structural-identity hash
    /// chain (see [`crate::backend::fnv1a_f64`]). Two surfaces with equal
    /// keys produce identical stress arithmetic, which is what the
    /// multi-site shared-stress hoist requires.
    pub fn structural_key(&self, h: u64) -> u64 {
        [
            self.t0,
            self.w_turnaround,
            self.w_sso,
            self.w_address,
            self.w_row,
            self.w_resonance,
            self.w_interaction,
            self.kv_t0,
            self.kt_t0,
            self.kc_t0,
            self.kv_stress,
            self.kt_stress,
            self.kc_stress,
            self.f0,
            self.kv_f,
            self.g_f,
            self.v0,
            self.g_v,
        ]
        .iter()
        .fold(h, |h, &v| crate::backend::fnv1a_f64(h, v))
    }

    /// Per-mechanism stress at nominal conditions on the nominal die.
    pub fn stress_breakdown(&self, f: &PatternFeatures) -> StressBreakdown {
        StressBreakdown {
            turnaround: self.w_turnaround * f.turnaround_density,
            sso: self.w_sso * f.dq_sso_mean,
            address: self.w_address * f.addr_ham_mean,
            row: self.w_row * f.row_switch_fraction,
            resonance: self.w_resonance * f.burst_resonance,
            interaction: self.w_interaction
                * f.dq_sso_mean
                * f.addr_ham_mean
                * f.burst_resonance,
        }
    }

    /// Condition scaling of the unstressed window (1.0 at nominal).
    fn window_scale(&self, c: &TestConditions) -> f64 {
        let dv = 1.8 - c.vdd.value();
        let dt = (c.temperature.value() - 25.0) / 100.0;
        let dc = (c.clock.value() - 100.0) / 100.0;
        (1.0 - self.kv_t0 * dv) * (1.0 - self.kt_t0 * dt) * (1.0 - self.kc_t0 * dc)
    }

    /// Condition amplification of stress (1.0 at nominal, larger when the
    /// supply is low, the die hot or the clock fast).
    fn stress_amplification(&self, c: &TestConditions) -> f64 {
        let dv = 1.8 - c.vdd.value();
        let dt = (c.temperature.value() - 25.0) / 100.0;
        let dc = (c.clock.value() - 100.0) / 100.0;
        (1.0 + self.kv_stress * dv + self.kt_stress * dt + self.kc_stress * dc).max(0.3)
    }

    /// True data-output valid time for a stimulus at given conditions on a
    /// given die. Never below a 1 ns physical floor.
    pub fn t_dq(&self, f: &PatternFeatures, c: &TestConditions, die: &Die) -> Nanoseconds {
        self.t_dq_with_stress(self.stress_breakdown(f).total(), c, die)
    }

    /// [`Self::t_dq`] with the stimulus's stress total already computed.
    /// The stress terms depend only on the pattern features, so a batch of
    /// probes of one stimulus hoists them out of the per-condition loop;
    /// the remaining arithmetic is unchanged, keeping the batch verdict
    /// bit-identical to the scalar one.
    pub(crate) fn t_dq_with_stress(&self, total: f64, c: &TestConditions, die: &Die) -> Nanoseconds {
        let window = die.speed() * self.window_scale(c) * self.t0;
        let stress = die.stress_sensitivity() * self.stress_amplification(c) * total;
        Nanoseconds::new((window - stress).max(1.0))
    }

    /// True maximum operating frequency (§4's example parameter).
    ///
    /// Pass region lies *below* the fail region: the device works at
    /// frequencies up to `f_max` and fails above it — eq. (3)'s
    /// orientation.
    pub fn f_max(&self, f: &PatternFeatures, c: &TestConditions, die: &Die) -> Megahertz {
        self.f_max_with_stress(self.stress_breakdown(f).total(), c, die)
    }

    /// [`Self::f_max`] with the stimulus's stress total already computed.
    pub(crate) fn f_max_with_stress(&self, total: f64, c: &TestConditions, die: &Die) -> Megahertz {
        let dv = c.vdd.value() - 1.8;
        let base = self.f0 * die.speed() * (1.0 + self.kv_f * dv);
        let erosion = self.g_f * die.stress_sensitivity() * self.stress_amplification(c) * total;
        Megahertz::new((base - erosion).max(10.0))
    }

    /// True minimum operating voltage.
    ///
    /// Pass region lies *above* the fail region: the device works at
    /// voltages down to `vdd_min` and fails below it — eq. (4)'s
    /// orientation.
    pub fn vdd_min(&self, f: &PatternFeatures, c: &TestConditions, die: &Die) -> Volts {
        self.vdd_min_with_stress(self.stress_breakdown(f).total(), c, die)
    }

    /// [`Self::vdd_min`] with the stimulus's stress total already computed.
    pub(crate) fn vdd_min_with_stress(&self, total: f64, c: &TestConditions, die: &Die) -> Volts {
        let dt = (c.temperature.value() - 25.0) / 100.0;
        let base = self.v0 + die.vdd_min_offset() + 0.02 * dt;
        let erosion = self.g_v * die.stress_sensitivity() * total;
        Volts::new(base + erosion)
    }
}

impl Default for ResponseSurface {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cichar_patterns::{march, Pattern, TestVector};
    use cichar_units::{Celsius, Megahertz as Mhz, Volts as V};

    fn nominal() -> (ResponseSurface, TestConditions, Die) {
        (
            ResponseSurface::calibrated(),
            TestConditions::nominal(),
            Die::nominal(),
        )
    }

    /// A hand-built near-worst-case pattern: pre-write complementary data
    /// to address pairs, then fire resonant-length toggle-read bursts.
    fn adversarial_pattern() -> Pattern {
        let mut v = Vec::new();
        let base = 0x0000u16;
        let mask = 0xFFFFu16;
        v.push(TestVector::write(base, 0x5555));
        v.push(TestVector::write(base ^ mask, 0xAAAA));
        while v.len() < 990 {
            v.push(TestVector::write(base, 0x5555));
            for i in 0..12u16 {
                let addr = if i % 2 == 0 { base } else { base ^ mask };
                let data = if i % 2 == 0 { 0x5555 } else { 0xAAAA };
                v.push(TestVector::read(addr, data));
            }
        }
        Pattern::new_clamped(v)
    }

    #[test]
    fn march_c_minus_matches_table1_row() {
        let (s, c, d) = nominal();
        let f = PatternFeatures::extract(&march::march_c_minus(64));
        let t = s.t_dq(&f, &c, &d).value();
        assert!((t - 32.3).abs() < 0.5, "March t_dq = {t}, want ≈ 32.3");
    }

    #[test]
    fn adversarial_pattern_approaches_ga_floor() {
        let (s, c, d) = nominal();
        let f = PatternFeatures::extract(&adversarial_pattern());
        let t = s.t_dq(&f, &c, &d).value();
        assert!(t < 24.5, "adversarial t_dq = {t}, want < 24.5");
        assert!(t > 20.5, "adversarial t_dq = {t}, should stay above spec");
    }

    #[test]
    fn adversarial_beats_every_deterministic_test() {
        let (s, c, d) = nominal();
        let adv = s.t_dq(&PatternFeatures::extract(&adversarial_pattern()), &c, &d);
        for (name, p) in march::standard_suite() {
            let det = s.t_dq(&PatternFeatures::extract(&p), &c, &d);
            assert!(adv < det, "{name}: det {det} should exceed adversarial {adv}");
        }
    }

    #[test]
    fn low_vdd_shrinks_the_window() {
        let (s, _, d) = nominal();
        let f = PatternFeatures::extract(&march::march_c_minus(64));
        let at = |vdd: f64| {
            s.t_dq(&f, &TestConditions::nominal().with_vdd(V::new(vdd)), &d)
                .value()
        };
        assert!(at(1.5) < at(1.8));
        assert!(at(1.8) < at(2.1));
    }

    #[test]
    fn heat_and_fast_clock_hurt() {
        let (s, c, d) = nominal();
        let f = PatternFeatures::extract(&march::march_c_minus(64));
        let hot = c.with_temperature(Celsius::new(125.0));
        let fast = c.with_clock(Mhz::new(133.0));
        let base = s.t_dq(&f, &c, &d);
        assert!(s.t_dq(&f, &hot, &d) < base);
        assert!(s.t_dq(&f, &fast, &d) < base);
    }

    #[test]
    fn low_vdd_amplifies_stress_differential() {
        // The same stress delta costs more window at low supply — the
        // fig. 8 shmoo's widening spread at the bottom.
        let (s, _, d) = nominal();
        let benign = PatternFeatures::extract(&march::march_c_minus(64));
        let harsh = PatternFeatures::extract(&adversarial_pattern());
        let spread = |vdd: f64| {
            let c = TestConditions::nominal().with_vdd(V::new(vdd));
            s.t_dq(&benign, &c, &d).value() - s.t_dq(&harsh, &c, &d).value()
        };
        assert!(spread(1.5) > spread(2.1), "{} vs {}", spread(1.5), spread(2.1));
    }

    #[test]
    fn slow_die_is_worse_fast_die_is_better() {
        let (s, c, _) = nominal();
        let f = PatternFeatures::extract(&march::march_c_minus(64));
        let fast = s.t_dq(&f, &c, &Die::at_corner(crate::ProcessCorner::Fast));
        let slow = s.t_dq(&f, &c, &Die::at_corner(crate::ProcessCorner::Slow));
        let typ = s.t_dq(&f, &c, &Die::nominal());
        assert!(fast > typ && typ > slow);
    }

    #[test]
    fn f_max_decreases_with_stress_and_low_vdd() {
        let (s, c, d) = nominal();
        let benign = PatternFeatures::extract(&march::march_c_minus(64));
        let harsh = PatternFeatures::extract(&adversarial_pattern());
        assert!(s.f_max(&harsh, &c, &d) < s.f_max(&benign, &c, &d));
        let low = c.with_vdd(V::new(1.5));
        assert!(s.f_max(&benign, &low, &d) < s.f_max(&benign, &c, &d));
    }

    #[test]
    fn f_max_nominal_matches_section4_story() {
        // §4: device specified at 100 MHz, fails above ≈110 MHz.
        let (s, c, d) = nominal();
        let f = PatternFeatures::extract(&march::march_c_minus(64));
        let fmax = s.f_max(&f, &c, &d).value();
        assert!((105.0..115.0).contains(&fmax), "f_max = {fmax}");
    }

    #[test]
    fn vdd_min_increases_with_stress() {
        let (s, c, d) = nominal();
        let benign = PatternFeatures::extract(&march::march_c_minus(64));
        let harsh = PatternFeatures::extract(&adversarial_pattern());
        assert!(s.vdd_min(&harsh, &c, &d) > s.vdd_min(&benign, &c, &d));
        let vmin = s.vdd_min(&benign, &c, &d).value();
        assert!((1.3..1.5).contains(&vmin), "vdd_min = {vmin}");
    }

    #[test]
    fn t_dq_never_below_physical_floor() {
        let (s, _, _) = nominal();
        let harsh = PatternFeatures::extract(&adversarial_pattern());
        let worst_case = TestConditions::nominal()
            .with_vdd(V::new(1.5))
            .with_temperature(Celsius::new(125.0))
            .with_clock(Mhz::new(133.0));
        let die = Die::at_corner(crate::ProcessCorner::Noisy);
        let t = s.t_dq(&harsh, &worst_case, &die);
        assert!(t.value() >= 1.0);
    }

    #[test]
    fn breakdown_total_matches_t_dq_erosion() {
        let (s, c, d) = nominal();
        let f = PatternFeatures::extract(&adversarial_pattern());
        let breakdown = s.stress_breakdown(&f);
        let expected = s.t0 - breakdown.total();
        let got = s.t_dq(&f, &c, &d).value();
        assert!((expected - got).abs() < 1e-9, "{expected} vs {got}");
    }

    #[test]
    fn interaction_is_the_dominant_worst_case_mechanism() {
        let (s, _, _) = nominal();
        let f = PatternFeatures::extract(&adversarial_pattern());
        let b = s.stress_breakdown(&f);
        // The adversary's power comes from the coupled mechanisms, not any
        // single one: the interaction term must contribute materially.
        assert!(b.interaction > 1.0, "{b}");
        let (name, _) = b.dominant();
        assert!(
            ["sso", "resonance", "interaction"].contains(&name),
            "dominant = {name}"
        );
    }

    #[test]
    fn breakdown_display_lists_all_terms() {
        let (s, _, _) = nominal();
        let f = PatternFeatures::extract(&march::march_x(96));
        let txt = s.stress_breakdown(&f).to_string();
        for key in ["turn", "sso", "addr", "row", "res"] {
            assert!(txt.contains(key), "{txt}");
        }
    }
}
