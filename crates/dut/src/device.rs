//! The device under test: a die plus the response surface.

use crate::faults::{FaultSet, FunctionalOutcome, MemorySim};
use crate::physics::ResponseSurface;
use crate::process::Die;
use cichar_patterns::{Pattern, PatternFeatures, Test, TestConditions};
use cichar_units::{Megahertz, Nanoseconds, Volts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The true (noise-free) parametric values a test provokes on a device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Parametrics {
    /// Data-output valid time (§6's headline parameter).
    pub t_dq: Nanoseconds,
    /// Maximum operating frequency (§4's example parameter).
    pub f_max: Megahertz,
    /// Minimum operating voltage.
    pub vdd_min: Volts,
}

impl fmt::Display for Parametrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t_dq={} f_max={} vdd_min={}",
            self.t_dq, self.f_max, self.vdd_min
        )
    }
}

/// A single device under test: one [`Die`] evaluated through one
/// [`ResponseSurface`].
///
/// The device is the *ground truth* of the simulation. The ATE simulator
/// wraps it with strobing, noise and drift; nothing else in the workspace
/// reads the true values directly (the searches would otherwise have
/// nothing to discover).
///
/// # Examples
///
/// ```
/// use cichar_dut::{Die, MemoryDevice, ProcessCorner};
/// use cichar_patterns::{march, Test};
///
/// let device = MemoryDevice::new(Die::at_corner(ProcessCorner::Slow));
/// let test = Test::deterministic("march_x", march::march_x(96));
/// let p = device.evaluate(&test);
/// assert!(p.f_max.value() > 50.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryDevice {
    die: Die,
    surface: ResponseSurface,
    faults: FaultSet,
}

impl MemoryDevice {
    /// Creates a device from a die, using the calibrated response surface.
    pub fn new(die: Die) -> Self {
        Self {
            die,
            surface: ResponseSurface::calibrated(),
            faults: FaultSet::none(),
        }
    }

    /// Creates a device with an explicit response surface (for ablations).
    pub fn with_surface(die: Die, surface: ResponseSurface) -> Self {
        Self {
            die,
            surface,
            faults: FaultSet::none(),
        }
    }

    /// Injects manufacturing defects into the device's array.
    pub fn with_faults(mut self, faults: FaultSet) -> Self {
        self.faults = faults;
        self
    }

    /// The injected defects (empty on a healthy device).
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Functionally executes a pattern against the (possibly faulty)
    /// array, starting from power-up state.
    pub fn execute_pattern(&self, pattern: &Pattern) -> FunctionalOutcome {
        MemorySim::new(self.faults.clone()).execute(pattern)
    }

    /// The nominal-die device Table 1 is reproduced on.
    pub fn nominal() -> Self {
        Self::new(Die::nominal())
    }

    /// The device's die.
    pub fn die(&self) -> &Die {
        &self.die
    }

    /// The device's response surface.
    pub fn surface(&self) -> &ResponseSurface {
        &self.surface
    }

    /// Evaluates a complete test (stimulus at its own conditions).
    pub fn evaluate(&self, test: &Test) -> Parametrics {
        self.evaluate_at(test, test.conditions())
    }

    /// Evaluates a test's stimulus at *overridden* conditions — the shmoo
    /// engine forces conditions along its axes while keeping the stimulus.
    pub fn evaluate_at(&self, test: &Test, conditions: &TestConditions) -> Parametrics {
        let features = PatternFeatures::extract(&test.pattern());
        self.evaluate_features(&features, conditions)
    }

    /// Evaluates pre-extracted features (hot path for search loops that
    /// re-measure the same stimulus at many parameter points).
    pub fn evaluate_features(
        &self,
        features: &PatternFeatures,
        conditions: &TestConditions,
    ) -> Parametrics {
        Parametrics {
            t_dq: self.surface.t_dq(features, conditions, &self.die),
            f_max: self.surface.f_max(features, conditions, &self.die),
            vdd_min: self.surface.vdd_min(features, conditions, &self.die),
        }
    }

    /// The total stress contribution of a stimulus, hoisted out of the
    /// per-condition arithmetic. Stress depends only on the pattern
    /// features — not on the die or the conditions — so one stress total
    /// can serve an entire batch of condition points *and* every site in
    /// a multi-site touchdown that shares the calibrated surface.
    pub fn stress_total(&self, features: &PatternFeatures) -> f64 {
        self.surface.stress_breakdown(features).total()
    }

    /// Evaluates one condition point with a pre-hoisted stress total (from
    /// [`Self::stress_total`]). Bit-identical to
    /// [`Self::evaluate_features`] when the stress total comes from the
    /// same features, because the per-condition terms go through exactly
    /// the same arithmetic.
    pub fn evaluate_with_stress(
        &self,
        stress_total: f64,
        conditions: &TestConditions,
    ) -> Parametrics {
        Parametrics {
            t_dq: self
                .surface
                .t_dq_with_stress(stress_total, conditions, &self.die),
            f_max: self
                .surface
                .f_max_with_stress(stress_total, conditions, &self.die),
            vdd_min: self
                .surface
                .vdd_min_with_stress(stress_total, conditions, &self.die),
        }
    }

    /// Evaluates one stimulus at many condition points in a single pass —
    /// the SoA fast path behind batched oracle probing.
    ///
    /// The stress terms depend only on the pattern features, so they are
    /// computed once for the whole batch instead of once per probe; every
    /// per-condition term then goes through exactly the same arithmetic as
    /// [`Self::evaluate_features`], making element `i` of the result
    /// bit-identical to `evaluate_features(features, &conditions[i])`.
    pub fn evaluate_batch(
        &self,
        features: &PatternFeatures,
        conditions: &[TestConditions],
    ) -> Vec<Parametrics> {
        let stress_total = self.stress_total(features);
        conditions
            .iter()
            .map(|c| self.evaluate_with_stress(stress_total, c))
            .collect()
    }

    /// Whether the device functions at all under the given test: the test's
    /// clock must not exceed `f_max`, its supply must not drop below
    /// `vdd_min`, and every read of its pattern must return the expected
    /// data through the fault model. This is the production-test pass/fail
    /// of §1.
    pub fn functional_pass(&self, test: &Test) -> bool {
        let p = self.evaluate(test);
        test.conditions().clock <= p.f_max
            && test.conditions().vdd >= p.vdd_min
            && self.execute_pattern(&test.pattern()).pass()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcessCorner;
    use cichar_patterns::march;
    use cichar_units::{Megahertz as Mhz, Volts as V};

    fn march_test() -> Test {
        Test::deterministic("march_c-", march::march_c_minus(64))
    }

    #[test]
    fn evaluate_uses_test_conditions() {
        let device = MemoryDevice::nominal();
        let t = march_test();
        let nominal = device.evaluate(&t);
        let starved = device.evaluate(&t.with_conditions(
            TestConditions::nominal().with_vdd(V::new(1.5)),
        ));
        assert!(starved.t_dq < nominal.t_dq);
    }

    #[test]
    fn evaluate_at_overrides_conditions() {
        let device = MemoryDevice::nominal();
        let t = march_test();
        let forced = device.evaluate_at(&t, &TestConditions::nominal().with_vdd(V::new(2.1)));
        assert!(forced.t_dq > device.evaluate(&t).t_dq);
    }

    #[test]
    fn evaluate_features_matches_evaluate() {
        let device = MemoryDevice::nominal();
        let t = march_test();
        let features = PatternFeatures::extract(&t.pattern());
        assert_eq!(
            device.evaluate_features(&features, t.conditions()),
            device.evaluate(&t)
        );
    }

    #[test]
    fn evaluate_batch_is_bit_identical_to_scalar_calls() {
        let device = MemoryDevice::nominal();
        let t = march_test();
        let features = PatternFeatures::extract(&t.pattern());
        let conditions: Vec<TestConditions> = (0..16)
            .map(|i| {
                TestConditions::nominal()
                    .with_vdd(V::new(1.5 + 0.04 * f64::from(i)))
                    .with_clock(Mhz::new(90.0 + 3.0 * f64::from(i)))
            })
            .collect();
        let batch = device.evaluate_batch(&features, &conditions);
        assert_eq!(batch.len(), conditions.len());
        for (c, got) in conditions.iter().zip(&batch) {
            assert_eq!(*got, device.evaluate_features(&features, c));
        }
    }

    #[test]
    fn functional_pass_at_nominal() {
        let device = MemoryDevice::nominal();
        assert!(device.functional_pass(&march_test()));
    }

    #[test]
    fn functional_fail_beyond_f_max() {
        let device = MemoryDevice::nominal();
        let t = march_test()
            .with_conditions(TestConditions::nominal().with_clock(Mhz::new(130.0)));
        assert!(!device.functional_pass(&t));
    }

    #[test]
    fn functional_fail_below_vdd_min() {
        let device = MemoryDevice::nominal();
        let t = march_test().with_conditions(TestConditions::nominal().with_vdd(V::new(1.3)));
        assert!(!device.functional_pass(&t));
    }

    #[test]
    fn corner_devices_order_t_dq() {
        let t = march_test();
        let fast = MemoryDevice::new(Die::at_corner(ProcessCorner::Fast)).evaluate(&t);
        let slow = MemoryDevice::new(Die::at_corner(ProcessCorner::Slow)).evaluate(&t);
        assert!(fast.t_dq > slow.t_dq);
        assert!(fast.f_max > slow.f_max);
        assert!(fast.vdd_min < slow.vdd_min);
    }

    #[test]
    fn parametrics_display_has_all_three() {
        let p = MemoryDevice::nominal().evaluate(&march_test());
        let s = p.to_string();
        assert!(s.contains("t_dq") && s.contains("f_max") && s.contains("vdd_min"));
    }
}
