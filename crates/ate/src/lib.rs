//! Automatic test equipment (ATE) simulator.
//!
//! The paper runs every measurement through industrial ATE (Teradyne,
//! Advantest, HP class — its refs [1–7]). This crate is the simulated
//! stand-in: an [`Ate`] loads a [`MemoryDevice`](cichar_dut::MemoryDevice),
//! executes tests with selected parameters *forced* to chosen values, and
//! returns pass/fail verdicts — never the device's true numbers. Everything
//! the characterization stack learns, it learns the way the paper's stack
//! does: one strobed measurement at a time.
//!
//! On top of the raw verdict channel the crate provides:
//!
//! * [`MeasuredParam`] — the three characterization parameters with their
//!   region orientation, generous default range and resolution;
//! * [`TripOracle`] — the adapter that lets any `cichar-search` algorithm
//!   drive the tester;
//! * [`MeasurementLedger`] — measurement and test-time accounting (the
//!   cost axis of fig. 3);
//! * noise and session drift injection ([`NoiseModel`], [`DriftModel`]) —
//!   the "specification parameter changes over time due to device heating"
//!   of §1;
//! * a [`shmoo`] engine that rasterizes pass/fail over two parameter axes
//!   and renders the fig. 8 plot;
//! * a [`ParallelAte`] blueprint that spawns deterministic per-work-item
//!   sessions (seeds derived from campaign seed × item index) so campaigns
//!   can fan out across threads and still merge bit-identical results.
//!
//! # Examples
//!
//! ```
//! use cichar_ate::{Ate, MeasuredParam};
//! use cichar_dut::MemoryDevice;
//! use cichar_patterns::{march, Test};
//! use cichar_search::{BinarySearch, PassFailOracle};
//!
//! let mut ate = Ate::new(MemoryDevice::nominal());
//! let test = Test::deterministic("march_c-", march::march_c_minus(64));
//!
//! // Search the T_DQ trip point the way fig. 1 does.
//! let param = MeasuredParam::DataValidTime;
//! let search = BinarySearch::new(param.generous_range(), param.resolution());
//! let outcome = search.run(param.region_order(), ate.trip_oracle(&test, param));
//! let trip = outcome.trip_point.expect("trip point in range");
//! assert!(trip > 30.0, "March leaves a wide valid window");
//! assert_eq!(ate.ledger().measurements(), outcome.measurements() as u64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod drift;
mod fault;
mod ledger;
mod multisite;
mod noise;
mod oracle;
mod parallel;
mod params;
pub mod shmoo;
mod tester;

pub use drift::DriftModel;
pub use fault::TesterFaultModel;
pub use ledger::MeasurementLedger;
pub use multisite::{MultiSiteAte, SiteHealthBreaker};
pub use noise::NoiseModel;
pub use oracle::TripOracle;
pub use parallel::ParallelAte;
pub use params::MeasuredParam;
pub use shmoo::{OverlayShmoo, ShmooPlot};
pub use tester::{Ate, AteConfig};
