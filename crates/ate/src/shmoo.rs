//! The shmoo engine: pass/fail rasterized over two parameter axes.
//!
//! Fig. 8 of the paper is a shmoo plot with the Vdd supply on the Y axis
//! and the `T_DQ` timing parameter on the X axis, with "1000 tests
//! overlapping in a single shmoo plot" to expose the per-test trip-point
//! spread. [`ShmooPlot`] captures one test's raster; [`OverlayShmoo`]
//! accumulates many and reports the worst-case parameter-variation band.

use crate::ledger::MeasurementLedger;
use crate::parallel::ParallelAte;
use crate::tester::Ate;
use cichar_exec::ExecPolicy;
use cichar_patterns::{PatternFeatures, Test};
use cichar_search::RegionOrder;
use cichar_units::Axis;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One test's pass/fail raster over an X and a Y axis.
///
/// # Examples
///
/// ```
/// use cichar_ate::{Ate, ShmooPlot};
/// use cichar_dut::MemoryDevice;
/// use cichar_patterns::{march, Test};
/// use cichar_units::{Axis, ParamKind};
///
/// let mut ate = Ate::noiseless(MemoryDevice::nominal());
/// let test = Test::deterministic("march_c-", march::march_c_minus(64));
/// let x = Axis::new(ParamKind::StrobeDelay, 18.0, 36.0, 19)?;
/// let y = Axis::new(ParamKind::SupplyVoltage, 1.5, 2.1, 7)?;
/// let plot = ShmooPlot::capture(&mut ate, &test, x, y);
/// // Low strobe delays pass everywhere; the boundary moves with Vdd.
/// assert!(plot.at(0, 6), "18 ns strobe at 2.1 V passes");
/// assert!(!plot.at(18, 0), "36 ns strobe at 1.5 V fails");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShmooPlot {
    x: Axis,
    y: Axis,
    /// Row-major `[y][x]`, `true` = pass.
    grid: Vec<bool>,
}

impl ShmooPlot {
    /// Rasterizes the test over the two axes, one measurement per cell.
    ///
    /// Pattern features are extracted once; each cell forces both axis
    /// parameters and strobes the device.
    pub fn capture(ate: &mut Ate, test: &Test, x: Axis, y: Axis) -> Self {
        let pattern = test.pattern();
        let features = PatternFeatures::extract(&pattern);
        let cycles = pattern.len() as u64;
        let mut grid = Vec::with_capacity(x.len() * y.len());
        for yi in 0..y.len() {
            for xi in 0..x.len() {
                let verdict = ate.measure_features(
                    &features,
                    cycles,
                    test,
                    &[(x.kind(), x.at(xi)), (y.kind(), y.at(yi))],
                );
                grid.push(verdict.is_pass());
            }
        }
        Self { x, y, grid }
    }

    /// Rasterizes the test with rows fanned out across worker threads,
    /// one deterministic session per Y row from `blueprint`.
    ///
    /// Row *yi* always runs on the session seeded by
    /// `derive_seed(campaign seed, yi)` and rows are reassembled in Y
    /// order, so the raster is bit-identical for every thread count. For
    /// a noiseless, drift-free blueprint it also equals
    /// [`ShmooPlot::capture`] on a single session (verdicts are then pure
    /// functions of the forced cell).
    ///
    /// Returns the plot plus the merged ledger (row ledgers folded in Y
    /// order).
    pub fn capture_parallel(
        blueprint: &ParallelAte,
        test: &Test,
        x: Axis,
        y: Axis,
        policy: ExecPolicy,
    ) -> (Self, MeasurementLedger) {
        let pattern = test.pattern();
        let features = PatternFeatures::extract(&pattern);
        let cycles = pattern.len() as u64;
        let rows = cichar_exec::par_map(policy, (0..y.len()).collect(), |_, yi| {
            let mut session = blueprint.session(yi as u64);
            let row: Vec<bool> = (0..x.len())
                .map(|xi| {
                    session
                        .measure_features(
                            &features,
                            cycles,
                            test,
                            &[(x.kind(), x.at(xi)), (y.kind(), y.at(yi))],
                        )
                        .is_pass()
                })
                .collect();
            (row, *session.ledger())
        });
        let mut grid = Vec::with_capacity(x.len() * y.len());
        let mut ledger = MeasurementLedger::new();
        for (row, row_ledger) in rows {
            grid.extend(row);
            ledger.merge(&row_ledger);
        }
        (Self { x, y, grid }, ledger)
    }

    /// The X axis.
    pub fn x_axis(&self) -> &Axis {
        &self.x
    }

    /// The Y axis.
    pub fn y_axis(&self) -> &Axis {
        &self.y
    }

    /// Pass/fail at grid cell `(xi, yi)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn at(&self, xi: usize, yi: usize) -> bool {
        assert!(xi < self.x.len() && yi < self.y.len(), "index out of grid");
        self.grid[yi * self.x.len() + xi]
    }

    /// Total passing cells.
    pub fn pass_count(&self) -> usize {
        self.grid.iter().filter(|&&p| p).count()
    }

    /// The X-axis trip point for row `yi`: the last passing X before the
    /// first failure, scanning from the pass side given by `order`.
    ///
    /// Returns `None` if the whole row shares one state.
    pub fn row_boundary(&self, yi: usize, order: RegionOrder) -> Option<f64> {
        let row: Vec<bool> = (0..self.x.len()).map(|xi| self.at(xi, yi)).collect();
        let indices: Vec<usize> = match order {
            RegionOrder::PassBelowFail => (0..self.x.len()).collect(),
            RegionOrder::PassAboveFail => (0..self.x.len()).rev().collect(),
        };
        let mut last_pass = None;
        for &i in &indices {
            if row[i] {
                last_pass = Some(self.x.at(i));
            } else {
                return last_pass;
            }
        }
        None // never failed — boundary outside the axis
    }

    /// ASCII rendering: highest Y row first, `*` pass, `.` fail — the
    /// classic tester shmoo output.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        for yi in (0..self.y.len()).rev() {
            out.push_str(&format!("{:8.3} |", self.y.at(yi)));
            for xi in 0..self.x.len() {
                out.push(if self.at(xi, yi) { '*' } else { '.' });
            }
            out.push('\n');
        }
        out.push_str(&axis_footer(&self.x));
        out
    }

    /// CSV rendering: `y,x,pass` triples with a header.
    pub fn to_csv(&self) -> String {
        let mut out = format!(
            "{}_{},{}_{},pass\n",
            self.y.kind().unit_symbol(),
            "y",
            self.x.kind().unit_symbol(),
            "x"
        );
        for yi in 0..self.y.len() {
            for xi in 0..self.x.len() {
                out.push_str(&format!(
                    "{:.4},{:.4},{}\n",
                    self.y.at(yi),
                    self.x.at(xi),
                    u8::from(self.at(xi, yi))
                ));
            }
        }
        out
    }
}

impl fmt::Display for ShmooPlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_ascii())
    }
}

/// Many tests' shmoos accumulated cell-wise — fig. 8's "1000 tests
/// overlapping in a single shmoo plot".
///
/// Each cell counts how many tests passed there; rows additionally track
/// the min/max X boundary across tests, which is the *worst case trip
/// point variation* band of fig. 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlayShmoo {
    x: Axis,
    y: Axis,
    counts: Vec<u32>,
    tests: u32,
    /// Per-row `(min, max)` boundary across added tests.
    row_spread: Vec<Option<(f64, f64)>>,
    order: RegionOrder,
}

impl OverlayShmoo {
    /// Creates an empty overlay for the given axes; `order` defines which
    /// side of the X axis passes.
    pub fn new(x: Axis, y: Axis, order: RegionOrder) -> Self {
        let cells = x.len() * y.len();
        let rows = y.len();
        Self {
            x,
            y,
            counts: vec![0; cells],
            tests: 0,
            row_spread: vec![None; rows],
            order,
        }
    }

    /// Captures every test's shmoo on its own deterministic session from
    /// `blueprint` across worker threads and accumulates them in test
    /// order — the fig. 8 "1000 tests overlapping in a single shmoo
    /// plot" hot path.
    ///
    /// Test *i* always runs on the session seeded by
    /// `derive_seed(campaign seed, i)` and plots are folded back in test
    /// order, so the overlay (and merged ledger) are bit-identical for
    /// every thread count.
    pub fn capture_overlay(
        blueprint: &ParallelAte,
        tests: &[Test],
        x: Axis,
        y: Axis,
        order: RegionOrder,
        policy: ExecPolicy,
    ) -> (Self, MeasurementLedger) {
        let plots = cichar_exec::par_map_ref(policy, tests, |i, test| {
            let mut session = blueprint.session(i as u64);
            let plot = ShmooPlot::capture(&mut session, test, x.clone(), y.clone());
            (plot, *session.ledger())
        });
        let mut overlay = Self::new(x, y, order);
        let mut ledger = MeasurementLedger::new();
        for (plot, plot_ledger) in plots {
            overlay.add(&plot);
            ledger.merge(&plot_ledger);
        }
        (overlay, ledger)
    }

    /// Accumulates one test's shmoo.
    ///
    /// # Panics
    ///
    /// Panics if the plot's axes differ from the overlay's.
    pub fn add(&mut self, plot: &ShmooPlot) {
        assert_eq!(plot.x_axis(), &self.x, "x axis mismatch");
        assert_eq!(plot.y_axis(), &self.y, "y axis mismatch");
        for (cell, &pass) in self.counts.iter_mut().zip(&plot.grid) {
            *cell += u32::from(pass);
        }
        for yi in 0..self.y.len() {
            if let Some(boundary) = plot.row_boundary(yi, self.order) {
                let entry = &mut self.row_spread[yi];
                *entry = Some(match *entry {
                    None => (boundary, boundary),
                    Some((lo, hi)) => (lo.min(boundary), hi.max(boundary)),
                });
            }
        }
        self.tests += 1;
    }

    /// Number of accumulated tests.
    pub fn tests(&self) -> u32 {
        self.tests
    }

    /// Fraction of tests passing at cell `(xi, yi)`.
    pub fn pass_fraction(&self, xi: usize, yi: usize) -> f64 {
        assert!(xi < self.x.len() && yi < self.y.len(), "index out of grid");
        if self.tests == 0 {
            return 0.0;
        }
        f64::from(self.counts[yi * self.x.len() + xi]) / f64::from(self.tests)
    }

    /// The `(min, max)` X-boundary across tests for row `yi` — the
    /// parameter-variation band fig. 8 annotates.
    pub fn row_spread(&self, yi: usize) -> Option<(f64, f64)> {
        self.row_spread[yi]
    }

    /// The widest row spread on the plot, as `(y, min_x, max_x)`.
    pub fn worst_spread(&self) -> Option<(f64, f64, f64)> {
        (0..self.y.len())
            .filter_map(|yi| self.row_spread[yi].map(|(lo, hi)| (self.y.at(yi), lo, hi)))
            .max_by(|a, b| (a.2 - a.1).total_cmp(&(b.2 - b.1)))
    }

    /// ASCII rendering with a density ramp: cells where *every* test passes
    /// print `*`, cells where none do print `.`, the boundary band in
    /// between prints digits for the passing-test decile (1–9).
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        for yi in (0..self.y.len()).rev() {
            out.push_str(&format!("{:8.3} |", self.y.at(yi)));
            for xi in 0..self.x.len() {
                let f = self.pass_fraction(xi, yi);
                out.push(if f >= 1.0 {
                    '*'
                } else if f <= 0.0 {
                    '.'
                } else {
                    char::from_digit(((f * 10.0) as u32).clamp(1, 9), 10)
                        .expect("decile is a digit")
                });
            }
            out.push('\n');
        }
        out.push_str(&axis_footer(&self.x));
        out
    }
}

impl fmt::Display for OverlayShmoo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_ascii())
    }
}

fn axis_footer(x: &Axis) -> String {
    let mut footer = format!("{:8} +{}\n", "", "-".repeat(x.len()));
    footer.push_str(&format!(
        "{:8}  {:<12.3}{:>width$.3} {}\n",
        "",
        x.at(0),
        x.at(x.len() - 1),
        x.kind().unit_symbol(),
        width = x.len().saturating_sub(12).max(1)
    ));
    footer
}

#[cfg(test)]
mod tests {
    use super::*;
    use cichar_dut::MemoryDevice;
    use cichar_patterns::march;
    use cichar_units::ParamKind;

    fn axes() -> (Axis, Axis) {
        (
            Axis::new(ParamKind::StrobeDelay, 18.0, 36.0, 19).expect("valid"),
            Axis::new(ParamKind::SupplyVoltage, 1.5, 2.1, 7).expect("valid"),
        )
    }

    fn capture_march() -> ShmooPlot {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let test = Test::deterministic("march_c-", march::march_c_minus(64));
        let (x, y) = axes();
        ShmooPlot::capture(&mut ate, &test, x, y)
    }

    #[test]
    fn grid_has_axis_dimensions() {
        let plot = capture_march();
        assert_eq!(plot.grid.len(), 19 * 7);
        assert!(plot.pass_count() > 0);
        assert!(plot.pass_count() < plot.grid.len());
    }

    #[test]
    fn rows_are_monotone_pass_then_fail() {
        // T_DQ strobe: pass region below fail region — each row must be a
        // prefix of passes followed by fails (no holes in a noiseless
        // shmoo).
        let plot = capture_march();
        for yi in 0..plot.y_axis().len() {
            let mut seen_fail = false;
            for xi in 0..plot.x_axis().len() {
                let pass = plot.at(xi, yi);
                if seen_fail {
                    assert!(!pass, "hole at ({xi},{yi})");
                }
                if !pass {
                    seen_fail = true;
                }
            }
        }
    }

    #[test]
    fn boundary_rises_with_vdd() {
        let plot = capture_march();
        let low = plot
            .row_boundary(0, RegionOrder::PassBelowFail)
            .expect("boundary on axis");
        let high = plot
            .row_boundary(6, RegionOrder::PassBelowFail)
            .expect("boundary on axis");
        assert!(high > low, "window widens with Vdd: {low} vs {high}");
    }

    #[test]
    fn ascii_render_shape() {
        let plot = capture_march();
        let text = plot.render_ascii();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 7 + 2, "7 rows + footer");
        assert!(lines[0].starts_with("   2.100"), "top row is highest Vdd");
        assert!(text.contains('*') && text.contains('.'));
    }

    #[test]
    fn csv_lists_every_cell() {
        let plot = capture_march();
        let csv = plot.to_csv();
        assert_eq!(csv.lines().count(), 1 + 19 * 7);
        assert!(csv.lines().nth(1).expect("row").ends_with(",1"));
    }

    #[test]
    fn overlay_accumulates_and_tracks_spread() {
        let (x, y) = axes();
        let mut overlay = OverlayShmoo::new(x, y, RegionOrder::PassBelowFail);
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let benign = Test::deterministic("march_c-", march::march_c_minus(64));
        let harsher = Test::deterministic("checkerboard", march::checkerboard(128));
        let (ax, ay) = axes();
        overlay.add(&ShmooPlot::capture(&mut ate, &benign, ax, ay));
        let (bx, by) = axes();
        overlay.add(&ShmooPlot::capture(&mut ate, &harsher, bx, by));
        assert_eq!(overlay.tests(), 2);
        let (_, lo, hi) = overlay.worst_spread().expect("both rows bounded");
        assert!(hi > lo, "two different tests spread the boundary");
    }

    #[test]
    fn overlay_fraction_extremes_render_as_star_and_dot() {
        let (x, y) = axes();
        let mut overlay = OverlayShmoo::new(x, y, RegionOrder::PassBelowFail);
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let t = Test::deterministic("march_c-", march::march_c_minus(64));
        let (ax, ay) = axes();
        overlay.add(&ShmooPlot::capture(&mut ate, &t, ax, ay));
        let text = overlay.render_ascii();
        assert!(text.contains('*') && text.contains('.'));
        assert_eq!(overlay.pass_fraction(0, 6), 1.0);
    }

    #[test]
    fn parallel_capture_matches_sequential_on_noiseless_sessions() {
        use crate::tester::AteConfig;
        use crate::{DriftModel, NoiseModel};
        let config = AteConfig {
            noise: NoiseModel::noiseless(),
            drift: DriftModel::none(),
            seed: 0,
            ..AteConfig::default()
        };
        let blueprint = ParallelAte::new(MemoryDevice::nominal(), config);
        let test = Test::deterministic("march_c-", march::march_c_minus(64));
        let (x, y) = axes();
        let (parallel, ledger) = ShmooPlot::capture_parallel(
            &blueprint,
            &test,
            x.clone(),
            y.clone(),
            ExecPolicy::with_threads(4),
        );
        assert_eq!(parallel, capture_march());
        assert_eq!(ledger.measurements(), (19 * 7) as u64);
    }

    #[test]
    fn parallel_capture_is_thread_count_invariant_even_with_noise() {
        use crate::tester::AteConfig;
        let blueprint = ParallelAte::new(
            MemoryDevice::nominal(),
            AteConfig {
                seed: 99,
                ..AteConfig::default()
            },
        );
        let test = Test::deterministic("march_c-", march::march_c_minus(64));
        let (x, y) = axes();
        let capture = |threads: usize| {
            ShmooPlot::capture_parallel(
                &blueprint,
                &test,
                x.clone(),
                y.clone(),
                ExecPolicy::with_threads(threads),
            )
        };
        assert_eq!(capture(1), capture(8));
    }

    #[test]
    fn parallel_overlay_matches_sequential_accumulation() {
        use crate::tester::AteConfig;
        use crate::{DriftModel, NoiseModel};
        let config = AteConfig {
            noise: NoiseModel::noiseless(),
            drift: DriftModel::none(),
            seed: 0,
            ..AteConfig::default()
        };
        let tests = vec![
            Test::deterministic("march_c-", march::march_c_minus(64)),
            Test::deterministic("checkerboard", march::checkerboard(128)),
            Test::deterministic("march_x", march::march_x(96)),
        ];
        let (x, y) = axes();
        let blueprint = ParallelAte::new(MemoryDevice::nominal(), config);
        let (overlay, ledger) = OverlayShmoo::capture_overlay(
            &blueprint,
            &tests,
            x.clone(),
            y.clone(),
            RegionOrder::PassBelowFail,
            ExecPolicy::with_threads(4),
        );
        // Sequential baseline: one shared noiseless session.
        let mut reference = OverlayShmoo::new(x.clone(), y.clone(), RegionOrder::PassBelowFail);
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        for t in &tests {
            reference.add(&ShmooPlot::capture(&mut ate, t, x.clone(), y.clone()));
        }
        assert_eq!(overlay, reference);
        assert_eq!(ledger.measurements(), ate.ledger().measurements());
        assert_eq!(overlay.tests(), 3);
    }

    #[test]
    #[should_panic(expected = "x axis mismatch")]
    fn overlay_rejects_mismatched_axes() {
        let (x, y) = axes();
        let mut overlay = OverlayShmoo::new(x, y, RegionOrder::PassBelowFail);
        let other_x = Axis::new(ParamKind::StrobeDelay, 10.0, 20.0, 5).expect("valid");
        let other_y = Axis::new(ParamKind::SupplyVoltage, 1.5, 2.1, 7).expect("valid");
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let t = Test::deterministic("march_c-", march::march_c_minus(64));
        overlay.add(&ShmooPlot::capture(&mut ate, &t, other_x, other_y));
    }

    #[test]
    #[should_panic(expected = "index out of grid")]
    fn at_rejects_out_of_range() {
        let plot = capture_march();
        let _ = plot.at(19, 0);
    }
}
