//! Measurement noise.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Gaussian measurement noise, per parameter, applied at every strobe.
///
/// Real ATE comparators and timing generators jitter; §1 lists inaccurate
/// readings among the pitfalls of slow searches. The defaults model a
/// well-maintained production tester.
///
/// # Examples
///
/// ```
/// use cichar_ate::NoiseModel;
///
/// let quiet = NoiseModel::noiseless();
/// assert_eq!(quiet.t_dq_sigma(), 0.0);
/// let real = NoiseModel::default();
/// assert!(real.t_dq_sigma() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    t_dq_sigma: f64,
    f_max_sigma: f64,
    vdd_min_sigma: f64,
}

impl NoiseModel {
    /// Creates a noise model with explicit sigmas (ns, MHz, V).
    ///
    /// # Panics
    ///
    /// Panics if any sigma is negative or non-finite.
    pub fn new(t_dq_sigma: f64, f_max_sigma: f64, vdd_min_sigma: f64) -> Self {
        for s in [t_dq_sigma, f_max_sigma, vdd_min_sigma] {
            assert!(s.is_finite() && s >= 0.0, "invalid sigma {s}");
        }
        Self {
            t_dq_sigma,
            f_max_sigma,
            vdd_min_sigma,
        }
    }

    /// A perfectly quiet tester (unit tests use this to assert physics).
    pub fn noiseless() -> Self {
        Self::new(0.0, 0.0, 0.0)
    }

    /// Whether every sigma is zero, making verdicts a pure function of the
    /// stimulus (the memoization cache is only sound in this regime).
    pub fn is_noiseless(&self) -> bool {
        self.t_dq_sigma == 0.0 && self.f_max_sigma == 0.0 && self.vdd_min_sigma == 0.0
    }

    /// Timing-strobe jitter sigma in nanoseconds.
    pub fn t_dq_sigma(&self) -> f64 {
        self.t_dq_sigma
    }

    /// Clock-generator sigma in megahertz.
    pub fn f_max_sigma(&self) -> f64 {
        self.f_max_sigma
    }

    /// Supply-forcing sigma in volts.
    pub fn vdd_min_sigma(&self) -> f64 {
        self.vdd_min_sigma
    }

    /// Draws one noise sample with the given sigma.
    pub(crate) fn sample<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
        if sigma == 0.0 {
            return 0.0;
        }
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * sigma
    }
}

impl Default for NoiseModel {
    /// 50 ps timing jitter, 0.1 MHz clock accuracy, 2 mV supply accuracy.
    fn default() -> Self {
        Self::new(0.05, 0.1, 0.002)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_samples_are_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(NoiseModel::sample(&mut rng, 0.0), 0.0);
        }
    }

    #[test]
    fn samples_have_requested_spread() {
        let mut rng = StdRng::seed_from_u64(2);
        let sigma = 0.05;
        let n = 5000;
        let samples: Vec<f64> = (0..n).map(|_| NoiseModel::sample(&mut rng, sigma)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.005, "mean {mean}");
        assert!((var.sqrt() - sigma).abs() < 0.01, "std {}", var.sqrt());
    }

    #[test]
    #[should_panic(expected = "invalid sigma")]
    fn rejects_negative_sigma() {
        let _ = NoiseModel::new(-0.1, 0.0, 0.0);
    }

    #[test]
    fn default_is_quieter_than_resolutions() {
        // Noise must not swamp the search resolutions or trip points
        // become unrepeatable.
        let n = NoiseModel::default();
        assert!(n.t_dq_sigma() <= 0.05 + 1e-12);
        assert!(n.f_max_sigma() <= 0.25);
        assert!(n.vdd_min_sigma() <= 0.005);
    }
}
