//! Adapter: the tester as a search oracle.

use crate::params::MeasuredParam;
use crate::tester::Ate;
use cichar_patterns::{PatternFeatures, Test};
use cichar_search::{PassFailOracle, Probe};
use cichar_trace::{SpanTrace, TraceEvent};

/// Borrows an [`Ate`] as a [`PassFailOracle`] for one test and one
/// parameter, so any `cichar-search` algorithm can drive the tester.
///
/// Pattern features are extracted once at construction: a trip-point search
/// applies the *same* stimulus at many parameter points, so the (pure)
/// feature extraction is hoisted out of the probe loop, mirroring how real
/// ATE loads the pattern into vector memory once per search.
///
/// # Examples
///
/// ```
/// use cichar_ate::{Ate, MeasuredParam};
/// use cichar_dut::MemoryDevice;
/// use cichar_patterns::{march, Test};
/// use cichar_search::{RegionOrder, SearchUntilTrip};
///
/// let mut ate = Ate::noiseless(MemoryDevice::nominal());
/// let test = Test::deterministic("march_y", march::march_y(96));
/// let param = MeasuredParam::MaxFrequency;
/// let stp = SearchUntilTrip::new(param.generous_range(), param.search_factor());
/// let outcome = stp.run(108.0, param.region_order(), ate.trip_oracle(&test, param));
/// assert!(outcome.converged);
/// ```
#[derive(Debug)]
pub struct TripOracle<'a> {
    ate: &'a mut Ate,
    test: &'a Test,
    param: MeasuredParam,
    features: PatternFeatures,
    pattern_cycles: u64,
    /// Precomputed memoization-key prefix (pattern + conditions +
    /// relaxation forces), present when the session can serve cached
    /// verdicts. Each probe extends it with the strobed value.
    memo_base: Option<u64>,
    /// The tester's trace span at construction; probes report
    /// `ProbeIssued` / `ProbeResolved` into it.
    trace: SpanTrace,
}

impl<'a> TripOracle<'a> {
    /// Creates the adapter (called via [`Ate::trip_oracle`]).
    pub(crate) fn new(ate: &'a mut Ate, test: &'a Test, param: MeasuredParam) -> Self {
        let pattern = test.pattern();
        let memo_base = ate.memo_active().then(|| {
            crate::tester::probe_identity(
                pattern.content_hash(),
                test.conditions(),
                param.relax_forces(),
            )
        });
        let trace = ate.trace().clone();
        Self {
            ate,
            test,
            param,
            features: PatternFeatures::extract(&pattern),
            pattern_cycles: pattern.len() as u64,
            memo_base,
            trace,
        }
    }

    /// The parameter this oracle strobes.
    pub fn param(&self) -> MeasuredParam {
        self.param
    }

    /// The test this oracle applies.
    pub fn test(&self) -> &Test {
        self.test
    }
}

impl PassFailOracle for TripOracle<'_> {
    fn probe(&mut self, value: f64) -> Probe {
        let key = self.memo_base.map(|base| {
            let h = crate::tester::mix(base, self.param.kind() as u64);
            crate::tester::mix(h, value.to_bits())
        });
        if let Some(key) = key {
            if let Some(verdict) = self.ate.cache_lookup(key) {
                self.trace.emit(TraceEvent::ProbeResolved {
                    value,
                    verdict: verdict.into(),
                    cached: true,
                });
                return verdict;
            }
        }
        self.trace.emit(TraceEvent::ProbeIssued { value });
        // §4 relaxation: non-measured parameters are forced to relaxed
        // values so only the strobed parameter can cause failure.
        let mut forces: Vec<_> = self.param.relax_forces().to_vec();
        forces.push((self.param.kind(), value));
        let verdict =
            self.ate
                .measure_features(&self.features, self.pattern_cycles, self.test, &forces);
        if let Some(key) = key {
            self.ate.cache_store(key, verdict);
        }
        self.trace.emit(TraceEvent::ProbeResolved {
            value,
            verdict: verdict.into(),
            cached: false,
        });
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cichar_dut::MemoryDevice;
    use cichar_patterns::march;
    use cichar_search::{BinarySearch, RegionOrder};

    #[test]
    fn oracle_probe_matches_direct_measure() {
        let test = Test::deterministic("march_x", march::march_x(96));
        let mut a = Ate::noiseless(MemoryDevice::nominal());
        let mut b = Ate::noiseless(MemoryDevice::nominal());
        let direct = a.measure(&test, MeasuredParam::DataValidTime, 30.0);
        let via_oracle = b
            .trip_oracle(&test, MeasuredParam::DataValidTime)
            .probe(30.0);
        assert_eq!(direct, via_oracle);
    }

    #[test]
    fn oracle_accessors_expose_context() {
        let test = Test::deterministic("march_x", march::march_x(96));
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let oracle = ate.trip_oracle(&test, MeasuredParam::MinVoltage);
        assert_eq!(oracle.param(), MeasuredParam::MinVoltage);
        assert_eq!(oracle.test().name(), "march_x");
    }

    #[test]
    fn searches_through_oracle_record_in_ledger() {
        let test = Test::deterministic("march_x", march::march_x(96));
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let param = MeasuredParam::DataValidTime;
        let outcome = BinarySearch::new(param.generous_range(), param.resolution()).run(
            RegionOrder::PassBelowFail,
            ate.trip_oracle(&test, param),
        );
        assert_eq!(ate.ledger().measurements(), outcome.measurements() as u64);
    }
}
