//! Adapter: the tester as a search oracle.

use crate::params::MeasuredParam;
use crate::tester::Ate;
use cichar_patterns::{PatternFeatures, Test};
use cichar_units::ParamKind;
use cichar_search::{BatchOracle, PassFailOracle, Probe};
use cichar_trace::{SpanTrace, TraceEvent};

/// Borrows an [`Ate`] as a [`PassFailOracle`] for one test and one
/// parameter, so any `cichar-search` algorithm can drive the tester.
///
/// Pattern features are extracted once at construction: a trip-point search
/// applies the *same* stimulus at many parameter points, so the (pure)
/// feature extraction is hoisted out of the probe loop, mirroring how real
/// ATE loads the pattern into vector memory once per search.
///
/// # Examples
///
/// ```
/// use cichar_ate::{Ate, MeasuredParam};
/// use cichar_dut::MemoryDevice;
/// use cichar_patterns::{march, Test};
/// use cichar_search::{RegionOrder, SearchUntilTrip};
///
/// let mut ate = Ate::noiseless(MemoryDevice::nominal());
/// let test = Test::deterministic("march_y", march::march_y(96));
/// let param = MeasuredParam::MaxFrequency;
/// let stp = SearchUntilTrip::new(param.generous_range(), param.search_factor());
/// let outcome = stp.run(108.0, param.region_order(), ate.trip_oracle(&test, param));
/// assert!(outcome.converged);
/// ```
#[derive(Debug)]
pub struct TripOracle<'a> {
    ate: &'a mut Ate,
    test: &'a Test,
    param: MeasuredParam,
    features: PatternFeatures,
    pattern_cycles: u64,
    /// §4 relaxation forces plus one trailing slot for the strobed value,
    /// allocated once per search instead of once per probe. The last
    /// element is overwritten with `(param.kind(), value)` at each probe.
    forces: Vec<(ParamKind, f64)>,
    /// Precomputed memoization-key prefix (pattern + conditions +
    /// relaxation forces), present when the session can serve cached
    /// verdicts. Each probe extends it with the strobed value.
    memo_base: Option<u64>,
    /// The tester's trace span at construction; probes report
    /// `ProbeIssued` / `ProbeResolved` into it.
    trace: SpanTrace,
}

impl<'a> TripOracle<'a> {
    /// Creates the adapter (called via [`Ate::trip_oracle`]).
    pub(crate) fn new(ate: &'a mut Ate, test: &'a Test, param: MeasuredParam) -> Self {
        let pattern = test.pattern();
        let memo_base = ate.memo_active().then(|| {
            crate::tester::probe_identity(
                pattern.content_hash(),
                test.conditions(),
                param.relax_forces(),
            )
        });
        let trace = ate.trace().clone();
        let mut forces: Vec<(ParamKind, f64)> = param.relax_forces().to_vec();
        forces.push((param.kind(), f64::NAN));
        Self {
            ate,
            test,
            param,
            features: PatternFeatures::extract(&pattern),
            pattern_cycles: pattern.len() as u64,
            forces,
            memo_base,
            trace,
        }
    }

    /// The parameter this oracle strobes.
    pub fn param(&self) -> MeasuredParam {
        self.param
    }

    /// The test this oracle applies.
    pub fn test(&self) -> &Test {
        self.test
    }

    /// One scalar probe, optionally marked speculative. Cache hits never
    /// count as speculative — they cost no measurement to discard.
    fn probe_marked(&mut self, value: f64, speculative: bool) -> Probe {
        let key = self.memo_base.map(|base| {
            let h = crate::tester::mix(base, self.param.kind() as u64);
            crate::tester::mix(h, value.to_bits())
        });
        if let Some(key) = key {
            if let Some(verdict) = self.ate.cache_lookup(key) {
                self.trace.emit(TraceEvent::ProbeResolved {
                    value,
                    verdict: verdict.into(),
                    cached: true,
                });
                return verdict;
            }
        }
        self.trace.emit(TraceEvent::ProbeIssued { value, speculative });
        // §4 relaxation: non-measured parameters are forced to relaxed
        // values so only the strobed parameter can cause failure. The
        // strobed value lands in the preallocated trailing slot.
        *self.forces.last_mut().expect("trailing strobe slot") = (self.param.kind(), value);
        let verdict = self.ate.measure_features(
            &self.features,
            self.pattern_cycles,
            self.test,
            &self.forces,
        );
        if speculative {
            self.ate.record_speculative(1);
        }
        if let Some(key) = key {
            self.ate.cache_store(key, verdict);
        }
        self.trace.emit(TraceEvent::ProbeResolved {
            value,
            verdict: verdict.into(),
            cached: false,
        });
        verdict
    }
}

impl PassFailOracle for TripOracle<'_> {
    fn probe(&mut self, value: f64) -> Probe {
        self.probe_marked(value, false)
    }
}

impl BatchOracle for TripOracle<'_> {
    fn probe_batch(&mut self, values: &[f64]) -> Vec<Probe> {
        self.probe_batch_speculative(values, values.len())
    }

    /// Resolves the batch with bit-identical verdicts to the scalar loop.
    ///
    /// With memoization active (noiseless, drift-free, fault-free session)
    /// the values are walked scalar-style so in-batch duplicates hit the
    /// cache exactly as sequential probes would. Otherwise every value is
    /// a physical measurement and the whole batch funnels into one
    /// [`Ate::measure_features_batch`] call, amortizing condition setup
    /// and the device's stress evaluation across the batch.
    fn probe_batch_speculative(&mut self, values: &[f64], first_speculative: usize) -> Vec<Probe> {
        if self.memo_base.is_some() {
            return values
                .iter()
                .enumerate()
                .map(|(i, &v)| self.probe_marked(v, i >= first_speculative))
                .collect();
        }
        for (i, &value) in values.iter().enumerate() {
            self.trace.emit(TraceEvent::ProbeIssued {
                value,
                speculative: i >= first_speculative,
            });
        }
        // The relaxation prefix of the hoisted buffer (the trailing slot
        // is the scalar path's strobe; the batch strobes via `values`).
        let relax = &self.forces[..self.forces.len() - 1];
        let verdicts = self.ate.measure_features_batch(
            &self.features,
            self.pattern_cycles,
            self.test,
            relax,
            self.param.kind(),
            values,
        );
        let speculated = values.len().saturating_sub(first_speculative) as u64;
        if speculated > 0 {
            self.ate.record_speculative(speculated);
        }
        for (&value, &verdict) in values.iter().zip(&verdicts) {
            self.trace.emit(TraceEvent::ProbeResolved {
                value,
                verdict: verdict.into(),
                cached: false,
            });
        }
        verdicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cichar_dut::MemoryDevice;
    use cichar_patterns::march;
    use cichar_search::{BinarySearch, RegionOrder};

    #[test]
    fn oracle_probe_matches_direct_measure() {
        let test = Test::deterministic("march_x", march::march_x(96));
        let mut a = Ate::noiseless(MemoryDevice::nominal());
        let mut b = Ate::noiseless(MemoryDevice::nominal());
        let direct = a.measure(&test, MeasuredParam::DataValidTime, 30.0);
        let via_oracle = b
            .trip_oracle(&test, MeasuredParam::DataValidTime)
            .probe(30.0);
        assert_eq!(direct, via_oracle);
    }

    #[test]
    fn oracle_accessors_expose_context() {
        let test = Test::deterministic("march_x", march::march_x(96));
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let oracle = ate.trip_oracle(&test, MeasuredParam::MinVoltage);
        assert_eq!(oracle.param(), MeasuredParam::MinVoltage);
        assert_eq!(oracle.test().name(), "march_x");
    }

    #[test]
    fn probe_batch_matches_scalar_probes_with_noise() {
        use crate::noise::NoiseModel;
        use crate::tester::AteConfig;
        let config = AteConfig {
            noise: NoiseModel::new(0.05, 0.1, 0.01),
            seed: 31,
            ..AteConfig::default()
        };
        let test = Test::deterministic("march_x", march::march_x(96));
        let values: Vec<f64> = (0..24).map(|i| 28.0 + 0.4 * f64::from(i)).collect();
        let mut a = Ate::with_config(MemoryDevice::nominal(), config.clone());
        let scalar: Vec<Probe> = {
            let mut oracle = a.trip_oracle(&test, MeasuredParam::DataValidTime);
            values.iter().map(|&v| oracle.probe(v)).collect()
        };
        let mut b = Ate::with_config(MemoryDevice::nominal(), config);
        let batch = b
            .trip_oracle(&test, MeasuredParam::DataValidTime)
            .probe_batch(&values);
        assert_eq!(batch, scalar);
        assert_eq!(*a.ledger(), *b.ledger());
    }

    #[test]
    fn memoized_batch_serves_in_batch_duplicates_from_cache() {
        let test = Test::deterministic("march_x", march::march_x(96));
        let mut ate = Ate::noiseless(MemoryDevice::nominal()).with_memoization();
        let batch = ate
            .trip_oracle(&test, MeasuredParam::DataValidTime)
            .probe_batch(&[30.0, 30.0, 34.0, 30.0]);
        assert_eq!(
            batch,
            vec![Probe::Pass, Probe::Pass, Probe::Fail, Probe::Pass]
        );
        assert_eq!(ate.ledger().measurements(), 2, "two distinct stimuli");
        assert_eq!(ate.ledger().cached_probes(), 2, "duplicates hit the cache");
    }

    #[test]
    fn speculative_tail_is_ledgered_but_verdicts_match() {
        let test = Test::deterministic("march_x", march::march_x(96));
        let values = [30.0, 28.0, 34.0];
        let mut plain_ate = Ate::noiseless(MemoryDevice::nominal());
        let plain = plain_ate
            .trip_oracle(&test, MeasuredParam::DataValidTime)
            .probe_batch(&values);
        let mut spec_ate = Ate::noiseless(MemoryDevice::nominal());
        let spec = spec_ate
            .trip_oracle(&test, MeasuredParam::DataValidTime)
            .probe_batch_speculative(&values, 1);
        assert_eq!(spec, plain, "the marker never changes physics");
        assert_eq!(plain_ate.ledger().speculative_probes(), 0);
        assert_eq!(spec_ate.ledger().speculative_probes(), 2);
        assert_eq!(spec_ate.ledger().non_speculative_measurements(), 1);
        assert_eq!(
            plain_ate.ledger().measurements(),
            spec_ate.ledger().measurements(),
            "speculative probes are still real measurements"
        );
    }

    #[test]
    fn searches_through_oracle_record_in_ledger() {
        let test = Test::deterministic("march_x", march::march_x(96));
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let param = MeasuredParam::DataValidTime;
        let outcome = BinarySearch::new(param.generous_range(), param.resolution()).run(
            RegionOrder::PassBelowFail,
            ate.trip_oracle(&test, param),
        );
        assert_eq!(ate.ledger().measurements(), outcome.measurements() as u64);
    }
}
