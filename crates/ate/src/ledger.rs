//! Measurement accounting — the cost currency of the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-measurement tester overhead in microseconds (pattern load, settle,
/// strobe arm). A realistic figure for a memory tester applying a short
/// pattern.
const MEASUREMENT_OVERHEAD_US: f64 = 50.0;

/// Counts every measurement the tester performs and estimates test time.
///
/// §4's entire motivation is measurement economy ("characterization is a
/// lengthy process since it involves multiple repetitions of a test"), and
/// fig. 3's saving is denominated in search steps. The ledger gives every
/// experiment the same cost axis.
///
/// # Examples
///
/// ```
/// use cichar_ate::MeasurementLedger;
///
/// let mut ledger = MeasurementLedger::new();
/// ledger.record(640, 100.0); // one 640-cycle pattern at 100 MHz
/// assert_eq!(ledger.measurements(), 1);
/// assert_eq!(ledger.cycles(), 640);
/// assert!(ledger.test_time_ms() > 0.05, "overhead dominates short patterns");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MeasurementLedger {
    measurements: u64,
    cycles: u64,
    pattern_time_us: f64,
}

impl MeasurementLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one measurement of a `cycles`-long pattern at `clock_mhz`.
    pub fn record(&mut self, cycles: u64, clock_mhz: f64) {
        self.measurements += 1;
        self.cycles += cycles;
        if clock_mhz > 0.0 {
            self.pattern_time_us += cycles as f64 / clock_mhz;
        }
    }

    /// Total measurements performed.
    pub fn measurements(&self) -> u64 {
        self.measurements
    }

    /// Total vector cycles applied.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Estimated tester-occupancy time in milliseconds (pattern time plus
    /// per-measurement overhead).
    pub fn test_time_ms(&self) -> f64 {
        (self.pattern_time_us + self.measurements as f64 * MEASUREMENT_OVERHEAD_US) / 1000.0
    }

    /// Measurements performed since `baseline` (for scoping one search
    /// inside a longer session).
    pub fn measurements_since(&self, baseline: &MeasurementLedger) -> u64 {
        self.measurements - baseline.measurements
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl fmt::Display for MeasurementLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} measurements, {} cycles, {:.2} ms tester time",
            self.measurements,
            self.cycles,
            self.test_time_ms()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut l = MeasurementLedger::new();
        l.record(100, 100.0);
        l.record(900, 50.0);
        assert_eq!(l.measurements(), 2);
        assert_eq!(l.cycles(), 1000);
    }

    #[test]
    fn test_time_includes_overhead_and_pattern() {
        let mut l = MeasurementLedger::new();
        l.record(1000, 100.0); // 10 µs pattern + 50 µs overhead
        assert!((l.test_time_ms() - 0.060).abs() < 1e-9);
    }

    #[test]
    fn measurements_since_scopes_a_window() {
        let mut l = MeasurementLedger::new();
        l.record(100, 100.0);
        let baseline = l;
        l.record(100, 100.0);
        l.record(100, 100.0);
        assert_eq!(l.measurements_since(&baseline), 2);
    }

    #[test]
    fn reset_clears_everything() {
        let mut l = MeasurementLedger::new();
        l.record(500, 100.0);
        l.reset();
        assert_eq!(l, MeasurementLedger::new());
    }

    #[test]
    fn zero_clock_is_tolerated() {
        let mut l = MeasurementLedger::new();
        l.record(100, 0.0);
        assert_eq!(l.measurements(), 1);
        assert!(l.test_time_ms() > 0.0, "overhead still counted");
    }

    #[test]
    fn display_reports_all_counters() {
        let mut l = MeasurementLedger::new();
        l.record(640, 100.0);
        let s = l.to_string();
        assert!(s.contains("1 measurements") && s.contains("640 cycles"), "{s}");
    }
}
