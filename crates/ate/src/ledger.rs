//! Measurement accounting — the cost currency of the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-measurement tester overhead in microseconds (pattern load, settle,
/// strobe arm). A realistic figure for a memory tester applying a short
/// pattern.
const MEASUREMENT_OVERHEAD_US: f64 = 50.0;

/// Counts every measurement the tester performs and estimates test time.
///
/// §4's entire motivation is measurement economy ("characterization is a
/// lengthy process since it involves multiple repetitions of a test"), and
/// fig. 3's saving is denominated in search steps. The ledger gives every
/// experiment the same cost axis.
///
/// # Examples
///
/// ```
/// use cichar_ate::MeasurementLedger;
///
/// let mut ledger = MeasurementLedger::new();
/// ledger.record(640, 100.0); // one 640-cycle pattern at 100 MHz
/// assert_eq!(ledger.measurements(), 1);
/// assert_eq!(ledger.cycles(), 640);
/// assert!(ledger.test_time_ms() > 0.05, "overhead dominates short patterns");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MeasurementLedger {
    measurements: u64,
    cycles: u64,
    pattern_time_us: f64,
    /// Probes answered from the memoization cache instead of the tester.
    /// Tracked apart from `measurements` so cached probes never inflate
    /// the paper's measurement-saving numbers (fig. 3).
    cached: u64,
    /// Measurements issued speculatively (pre-probed children of a
    /// bisection level that may be discarded). They are real pattern
    /// applications and count under `measurements` too; this column lets
    /// eq. 1 economy numbers subtract the speculative waste honestly.
    speculative: u64,
    /// Injected probe-contact dropouts (verdict unavailable), including
    /// every silent measurement inside a session-abort burst.
    dropouts: u64,
    /// Injected transient verdict flips.
    flips: u64,
    /// Measurements answered by a stuck-verdict channel instead of the
    /// device.
    stuck_probes: u64,
    /// Mid-search session-abort events (each masks a burst of
    /// measurements, counted under `dropouts`).
    aborts: u64,
    /// Recovery strobes re-issued after silent measurements.
    retries: u64,
    /// Test points excluded from characterization results because
    /// recovery could not produce a trustworthy trip point.
    quarantined: u64,
    /// Simulated settle time spent in retry backoff, in microseconds.
    backoff_time_us: f64,
    /// Hung strobes: measurements that answered only after a long stall.
    /// Postdates the first serialized ledgers; absent fields parse as 0.
    #[serde(default)]
    stalls: u64,
    /// Simulated tester time burned inside stalls, in microseconds.
    #[serde(default)]
    stall_time_us: f64,
    /// Tests the stall watchdog abandoned when a site's touchdown budget
    /// expired (each is also counted under `quarantined`).
    #[serde(default)]
    timeouts: u64,
}

impl MeasurementLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one measurement of a `cycles`-long pattern at `clock_mhz`.
    pub fn record(&mut self, cycles: u64, clock_mhz: f64) {
        self.measurements += 1;
        self.cycles += cycles;
        if clock_mhz > 0.0 {
            self.pattern_time_us += cycles as f64 / clock_mhz;
        }
    }

    /// Records one probe served from the memoization cache. The device
    /// never sees the pattern, so only the cached counter moves —
    /// measurements, cycles, and tester time all stay put.
    pub fn record_cached(&mut self) {
        self.cached += 1;
    }

    /// Records that the most recent measurement was issued speculatively.
    /// The measurement itself is already counted by [`Self::record`]; this
    /// marks it as pre-issued work that may be discarded unused.
    pub fn record_speculative(&mut self) {
        self.speculative += 1;
    }

    /// Records one injected probe-contact dropout (verdict unavailable).
    pub fn record_dropout(&mut self) {
        self.dropouts += 1;
    }

    /// Records one injected transient verdict flip.
    pub fn record_flip(&mut self) {
        self.flips += 1;
    }

    /// Records one measurement answered by a stuck-verdict channel.
    pub fn record_stuck_probe(&mut self) {
        self.stuck_probes += 1;
    }

    /// Records one mid-search session-abort event.
    pub fn record_abort(&mut self) {
        self.aborts += 1;
    }

    /// Charges a recovery effort to the ledger: `retries` re-issued
    /// strobes and `backoff_us` of simulated settle time. The retried
    /// measurements themselves are already counted by [`Self::record`];
    /// this adds only the recovery-specific bookkeeping.
    pub fn record_recovery(&mut self, retries: u64, backoff_us: f64) {
        self.retries += retries;
        self.backoff_time_us += backoff_us;
    }

    /// Records one quarantined test point.
    pub fn record_quarantined(&mut self) {
        self.quarantined += 1;
    }

    /// Records one hung strobe: the verdict arrived after `stall_us` extra
    /// microseconds of simulated tester time.
    pub fn record_stall(&mut self, stall_us: f64) {
        self.stalls += 1;
        self.stall_time_us += stall_us;
    }

    /// Records one test the stall watchdog abandoned. The quarantine
    /// itself is charged separately via [`Self::record_quarantined`].
    pub fn record_timeout(&mut self) {
        self.timeouts += 1;
    }

    /// Total measurements performed.
    pub fn measurements(&self) -> u64 {
        self.measurements
    }

    /// Total probes served from the memoization cache.
    pub fn cached_probes(&self) -> u64 {
        self.cached
    }

    /// Measurements that were issued speculatively.
    pub fn speculative_probes(&self) -> u64 {
        self.speculative
    }

    /// Measurements net of speculative pre-issues — the honest probe
    /// economy denominator of eq. 1 accounting.
    pub fn non_speculative_measurements(&self) -> u64 {
        self.measurements.saturating_sub(self.speculative)
    }

    /// Total vector cycles applied.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Injected probe-contact dropouts.
    pub fn dropouts(&self) -> u64 {
        self.dropouts
    }

    /// Injected transient verdict flips.
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// Measurements answered by a stuck-verdict channel.
    pub fn stuck_probes(&self) -> u64 {
        self.stuck_probes
    }

    /// Session-abort events.
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    /// Recovery strobes re-issued after silent measurements.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Test points quarantined out of characterization results.
    pub fn quarantined(&self) -> u64 {
        self.quarantined
    }

    /// Simulated retry-backoff settle time, in microseconds.
    pub fn backoff_time_us(&self) -> f64 {
        self.backoff_time_us
    }

    /// Hung strobes that answered only after a stall.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Simulated tester time burned inside stalls, in microseconds.
    pub fn stall_time_us(&self) -> f64 {
        self.stall_time_us
    }

    /// Tests abandoned by the stall watchdog.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Total injected tester faults of all kinds.
    pub fn injected_faults(&self) -> u64 {
        self.dropouts + self.flips + self.stuck_probes + self.aborts + self.stalls
    }

    /// Estimated tester-occupancy time in milliseconds (pattern time plus
    /// per-measurement overhead plus retry-backoff settle and stall time).
    pub fn test_time_ms(&self) -> f64 {
        (self.pattern_time_us
            + self.measurements as f64 * MEASUREMENT_OVERHEAD_US
            + self.backoff_time_us
            + self.stall_time_us)
            / 1000.0
    }

    /// Measurements performed since `baseline` (for scoping one search
    /// inside a longer session).
    pub fn measurements_since(&self, baseline: &MeasurementLedger) -> u64 {
        self.measurements - baseline.measurements
    }

    /// The full ledger delta since `baseline` — every counter, not just
    /// measurements. Scopes a whole campaign (cost, fault, and recovery
    /// accounting alike) inside a longer tester session. `baseline` must
    /// be an earlier snapshot of this ledger; counters saturate at zero
    /// rather than underflow if it is not.
    pub fn since(&self, baseline: &MeasurementLedger) -> MeasurementLedger {
        MeasurementLedger {
            measurements: self.measurements.saturating_sub(baseline.measurements),
            cycles: self.cycles.saturating_sub(baseline.cycles),
            pattern_time_us: (self.pattern_time_us - baseline.pattern_time_us).max(0.0),
            cached: self.cached.saturating_sub(baseline.cached),
            speculative: self.speculative.saturating_sub(baseline.speculative),
            dropouts: self.dropouts.saturating_sub(baseline.dropouts),
            flips: self.flips.saturating_sub(baseline.flips),
            stuck_probes: self.stuck_probes.saturating_sub(baseline.stuck_probes),
            aborts: self.aborts.saturating_sub(baseline.aborts),
            retries: self.retries.saturating_sub(baseline.retries),
            quarantined: self.quarantined.saturating_sub(baseline.quarantined),
            backoff_time_us: (self.backoff_time_us - baseline.backoff_time_us).max(0.0),
            stalls: self.stalls.saturating_sub(baseline.stalls),
            stall_time_us: (self.stall_time_us - baseline.stall_time_us).max(0.0),
            timeouts: self.timeouts.saturating_sub(baseline.timeouts),
        }
    }

    /// Folds another ledger's counters into this one. The parallel
    /// execution layer gives every worker session its own ledger and
    /// merges them **by test index**, so totals are identical to the
    /// sequential path no matter how work was scheduled.
    pub fn merge(&mut self, other: &MeasurementLedger) {
        self.measurements += other.measurements;
        self.cycles += other.cycles;
        self.pattern_time_us += other.pattern_time_us;
        self.cached += other.cached;
        self.speculative += other.speculative;
        self.dropouts += other.dropouts;
        self.flips += other.flips;
        self.stuck_probes += other.stuck_probes;
        self.aborts += other.aborts;
        self.retries += other.retries;
        self.quarantined += other.quarantined;
        self.backoff_time_us += other.backoff_time_us;
        self.stalls += other.stalls;
        self.stall_time_us += other.stall_time_us;
        self.timeouts += other.timeouts;
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl fmt::Display for MeasurementLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} measurements, {} cycles, {:.2} ms tester time",
            self.measurements,
            self.cycles,
            self.test_time_ms()
        )?;
        if self.cached > 0 {
            write!(f, " ({} cached probes)", self.cached)?;
        }
        if self.speculative > 0 {
            write!(f, " ({} speculative probes)", self.speculative)?;
        }
        if self.injected_faults() > 0 || self.retries > 0 || self.quarantined > 0 {
            write!(
                f,
                "; faults: {} dropouts, {} flips, {} stuck, {} aborts → {} retries, {} quarantined",
                self.dropouts,
                self.flips,
                self.stuck_probes,
                self.aborts,
                self.retries,
                self.quarantined
            )?;
        }
        if self.stalls > 0 || self.timeouts > 0 {
            write!(
                f,
                "; stalls: {} ({:.2} ms) → {} timeouts",
                self.stalls,
                self.stall_time_us / 1000.0,
                self.timeouts
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut l = MeasurementLedger::new();
        l.record(100, 100.0);
        l.record(900, 50.0);
        assert_eq!(l.measurements(), 2);
        assert_eq!(l.cycles(), 1000);
    }

    #[test]
    fn test_time_includes_overhead_and_pattern() {
        let mut l = MeasurementLedger::new();
        l.record(1000, 100.0); // 10 µs pattern + 50 µs overhead
        assert!((l.test_time_ms() - 0.060).abs() < 1e-9);
    }

    #[test]
    fn measurements_since_scopes_a_window() {
        let mut l = MeasurementLedger::new();
        l.record(100, 100.0);
        let baseline = l;
        l.record(100, 100.0);
        l.record(100, 100.0);
        assert_eq!(l.measurements_since(&baseline), 2);
    }

    #[test]
    fn since_scopes_every_counter() {
        let mut l = MeasurementLedger::new();
        l.record(100, 100.0);
        l.record_flip();
        let baseline = l;
        l.record(900, 50.0);
        l.record_dropout();
        l.record_recovery(2, 300.0);
        l.record_quarantined();
        let delta = l.since(&baseline);
        assert_eq!(delta.measurements(), 1);
        assert_eq!(delta.cycles(), 900);
        assert_eq!(delta.flips(), 0, "pre-baseline faults are scoped out");
        assert_eq!(delta.dropouts(), 1);
        assert_eq!(delta.retries(), 2);
        assert_eq!(delta.quarantined(), 1);
        assert!((delta.backoff_time_us() - 300.0).abs() < 1e-12);
        let mut rebuilt = baseline;
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, l, "baseline + delta reconstructs the ledger");
    }

    #[test]
    fn reset_clears_everything() {
        let mut l = MeasurementLedger::new();
        l.record(500, 100.0);
        l.reset();
        assert_eq!(l, MeasurementLedger::new());
    }

    #[test]
    fn zero_clock_is_tolerated() {
        let mut l = MeasurementLedger::new();
        l.record(100, 0.0);
        assert_eq!(l.measurements(), 1);
        assert!(l.test_time_ms() > 0.0, "overhead still counted");
    }

    #[test]
    fn display_reports_all_counters() {
        let mut l = MeasurementLedger::new();
        l.record(640, 100.0);
        let s = l.to_string();
        assert!(s.contains("1 measurements") && s.contains("640 cycles"), "{s}");
    }

    #[test]
    fn cached_probes_do_not_count_as_measurements() {
        let mut l = MeasurementLedger::new();
        l.record(640, 100.0);
        let time_before = l.test_time_ms();
        l.record_cached();
        l.record_cached();
        assert_eq!(l.measurements(), 1, "cache hits are not measurements");
        assert_eq!(l.cached_probes(), 2);
        assert_eq!(l.cycles(), 640, "cache hits apply no vectors");
        assert_eq!(l.test_time_ms(), time_before, "cache hits cost no tester time");
    }

    #[test]
    fn speculative_probes_stay_inside_measurements() {
        let mut l = MeasurementLedger::new();
        l.record(640, 100.0);
        l.record(640, 100.0);
        l.record_speculative();
        assert_eq!(l.measurements(), 2, "speculative probes are real measurements");
        assert_eq!(l.speculative_probes(), 1);
        assert_eq!(l.non_speculative_measurements(), 1);
        let baseline = l;
        l.record(640, 100.0);
        l.record_speculative();
        let delta = l.since(&baseline);
        assert_eq!(delta.speculative_probes(), 1);
        let mut merged = baseline;
        merged.merge(&delta);
        assert_eq!(merged, l);
        assert!(l.to_string().contains("2 speculative probes"), "{l}");
    }

    #[test]
    fn display_mentions_cached_probes_only_when_present() {
        let mut l = MeasurementLedger::new();
        l.record(640, 100.0);
        assert!(!l.to_string().contains("cached"));
        l.record_cached();
        assert!(l.to_string().contains("1 cached probes"), "{l}");
    }

    #[test]
    fn merge_adds_all_counters() {
        let mut a = MeasurementLedger::new();
        a.record(100, 100.0);
        a.record_cached();
        let mut b = MeasurementLedger::new();
        b.record(900, 50.0);
        b.record(500, 100.0);
        b.record_cached();
        b.record_cached();
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.measurements(), 3);
        assert_eq!(merged.cycles(), 1500);
        assert_eq!(merged.cached_probes(), 3);
        let expected_time = a.test_time_ms() + b.test_time_ms();
        assert!((merged.test_time_ms() - expected_time).abs() < 1e-12);
    }

    #[test]
    fn merge_order_does_not_change_counts() {
        let mut parts = [MeasurementLedger::new(); 3];
        parts[0].record(100, 100.0);
        parts[1].record(250, 50.0);
        parts[1].record_cached();
        parts[2].record(640, 100.0);
        let fold = |order: [usize; 3]| {
            let mut total = MeasurementLedger::new();
            for i in order {
                total.merge(&parts[i]);
            }
            total
        };
        assert_eq!(fold([0, 1, 2]), fold([2, 0, 1]));
        assert_eq!(fold([0, 1, 2]), fold([1, 2, 0]));
    }

    #[test]
    fn fault_columns_accumulate_and_merge() {
        let mut a = MeasurementLedger::new();
        a.record(100, 100.0);
        a.record_dropout();
        a.record_flip();
        a.record_flip();
        a.record_stuck_probe();
        a.record_abort();
        a.record_recovery(3, 700.0);
        a.record_quarantined();
        assert_eq!(a.dropouts(), 1);
        assert_eq!(a.flips(), 2);
        assert_eq!(a.stuck_probes(), 1);
        assert_eq!(a.aborts(), 1);
        assert_eq!(a.retries(), 3);
        assert_eq!(a.quarantined(), 1);
        assert_eq!(a.injected_faults(), 5);
        assert_eq!(a.backoff_time_us(), 700.0);
        let mut merged = MeasurementLedger::new();
        merged.merge(&a);
        merged.merge(&a);
        assert_eq!(merged.flips(), 4);
        assert_eq!(merged.retries(), 6);
        assert_eq!(merged.quarantined(), 2);
        assert_eq!(merged.backoff_time_us(), 1400.0);
    }

    #[test]
    fn backoff_time_is_charged_to_test_time() {
        let mut l = MeasurementLedger::new();
        l.record(1000, 100.0);
        let before = l.test_time_ms();
        l.record_recovery(1, 500.0);
        assert!((l.test_time_ms() - before - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_faults_only_when_present() {
        let mut l = MeasurementLedger::new();
        l.record(640, 100.0);
        assert!(!l.to_string().contains("faults"));
        l.record_dropout();
        l.record_recovery(1, 100.0);
        let s = l.to_string();
        assert!(s.contains("1 dropouts") && s.contains("1 retries"), "{s}");
    }

    #[test]
    fn stall_columns_accumulate_merge_and_scope() {
        let mut l = MeasurementLedger::new();
        l.record(1000, 100.0);
        let before = l.test_time_ms();
        l.record_stall(2_000.0);
        l.record_stall(2_000.0);
        l.record_timeout();
        assert_eq!(l.stalls(), 2);
        assert_eq!(l.stall_time_us(), 4_000.0);
        assert_eq!(l.timeouts(), 1);
        assert_eq!(l.injected_faults(), 2, "stalls are injected faults");
        assert!((l.test_time_ms() - before - 4.0).abs() < 1e-12, "stalls burn tester time");
        let baseline = l;
        l.record_stall(500.0);
        l.record_timeout();
        let delta = l.since(&baseline);
        assert_eq!(delta.stalls(), 1);
        assert_eq!(delta.stall_time_us(), 500.0);
        assert_eq!(delta.timeouts(), 1);
        let mut rebuilt = baseline;
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, l);
        let s = l.to_string();
        assert!(s.contains("stalls: 3") && s.contains("2 timeouts"), "{s}");
    }

    #[test]
    fn pre_stall_serialized_ledgers_parse_with_zero_stall_columns() {
        let mut l = MeasurementLedger::new();
        l.record(640, 100.0);
        let json = serde_json::to_string(&l)
            .expect("serialize")
            .replace(",\"stalls\":0", "")
            .replace(",\"stall_time_us\":0.0", "")
            .replace(",\"timeouts\":0", "");
        assert!(!json.contains("stall"), "{json}");
        let back: MeasurementLedger = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, l);
    }

    #[test]
    fn fault_columns_survive_serde() {
        let mut l = MeasurementLedger::new();
        l.record(640, 100.0);
        l.record_flip();
        l.record_quarantined();
        let json = serde_json::to_string(&l).expect("serialize");
        let back: MeasurementLedger = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, l);
        assert_eq!(back.flips(), 1);
        assert_eq!(back.quarantined(), 1);
    }

    #[test]
    fn merged_ledger_round_trips_through_serde() {
        let mut l = MeasurementLedger::new();
        l.record(640, 100.0);
        l.record_cached();
        let json = serde_json::to_string(&l).expect("serialize");
        let back: MeasurementLedger = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, l);
        assert_eq!(back.cached_probes(), 1);
    }
}
