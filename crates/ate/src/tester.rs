//! The tester: executes tests with forced parameters, returns verdicts.

use crate::drift::DriftModel;
use crate::fault::{FaultState, TesterFaultModel};
use crate::ledger::MeasurementLedger;
use crate::noise::NoiseModel;
use crate::oracle::TripOracle;
use crate::params::MeasuredParam;
use cichar_dut::{Device, Parametrics};
use cichar_patterns::{PatternFeatures, Test, TestConditions};
use cichar_search::{Probe, RecoveryStats, RetryPolicy, RobustOracle};
use cichar_trace::{FaultKind, SpanTrace, TraceEvent};
use cichar_units::{Celsius, Megahertz, ParamKind, Volts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Stream-split salt for the fault RNG: the fault stream must never share
/// draws with the noise stream, or enabling faults would perturb the noise
/// sequence of historical seeds.
const FAULT_STREAM: u64 = 0xFA_u64 << 56 | 0x17;

/// Key of one memoized probe: a hash of the exact stimulus (pattern,
/// conditions, and every forced parameter including the probed value).
pub(crate) type ProbeKey = u64;

/// Mixes one word into a probe-identity hash. The chain is sequential, so
/// a prefix of the mix (pattern + conditions + relaxation forces) can be
/// precomputed once per search and extended per probe.
pub(crate) fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(29)
}

/// Hashes the *exact* stimulus a probe applies: pattern content, the
/// test's own conditions (full `f64` bits, unlike `Test::identity`'s
/// quantization — the cache must never alias two different stimuli), and
/// every forced parameter in order.
pub(crate) fn probe_identity(
    pattern_hash: u64,
    conditions: &cichar_patterns::TestConditions,
    forces: &[(ParamKind, f64)],
) -> u64 {
    let mut h = mix(0x51CA_C4E5_D00D_F00D, pattern_hash);
    h = mix(h, conditions.vdd.value().to_bits());
    h = mix(h, conditions.temperature.value().to_bits());
    h = mix(h, conditions.clock.value().to_bits());
    for &(kind, value) in forces {
        h = mix(h, kind as u64);
        h = mix(h, value.to_bits());
    }
    h
}

/// Applies forced parameters over a test's base conditions, returning the
/// effective conditions and the forced strobe delay (if any). Force order
/// matters: a later force of the same parameter wins, exactly as the
/// historical inline loop behaved.
pub(crate) fn apply_forces(
    base: &TestConditions,
    forces: &[(ParamKind, f64)],
) -> (TestConditions, Option<f64>) {
    let mut conditions = *base;
    let mut strobe: Option<f64> = None;
    for &(kind, value) in forces {
        match kind {
            ParamKind::StrobeDelay => strobe = Some(value),
            ParamKind::SupplyVoltage => conditions = conditions.with_vdd(Volts::new(value)),
            ParamKind::ClockFrequency => {
                conditions = conditions.with_clock(Megahertz::new(value))
            }
            ParamKind::Temperature => {
                conditions = conditions.with_temperature(Celsius::new(value))
            }
        }
    }
    (conditions, strobe)
}

/// Tester configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AteConfig {
    /// Measurement noise model.
    pub noise: NoiseModel,
    /// Session thermal drift.
    pub drift: DriftModel,
    /// Tester fault injection (dropouts, flips, stuck channels, aborts).
    pub faults: TesterFaultModel,
    /// RNG seed for the noise and fault streams (sessions are
    /// reproducible; the two streams are split from this one seed).
    pub seed: u64,
}

impl Default for AteConfig {
    fn default() -> Self {
        Self {
            noise: NoiseModel::default(),
            drift: DriftModel::none(),
            faults: TesterFaultModel::none(),
            seed: 0x1CA7_ACE5,
        }
    }
}

/// The simulated automatic test equipment.
///
/// One `Ate` holds one device on its load board. A *measurement* applies a
/// test's pattern at its conditions — with zero or more parameters forced
/// to explicit values — and compares against the device's (noisy) limits:
///
/// * the forced strobe delay must lie within the data-valid window,
/// * the effective clock must not exceed `f_max`,
/// * the effective supply must not drop below `vdd_min`.
///
/// Only the [`Probe`] verdict leaves the tester; true parametrics stay
/// hidden, exactly like real ATE.
///
/// # Examples
///
/// ```
/// use cichar_ate::{Ate, MeasuredParam};
/// use cichar_dut::MemoryDevice;
/// use cichar_patterns::{march, Test};
/// use cichar_search::Probe;
///
/// let mut ate = Ate::new(MemoryDevice::nominal());
/// let test = Test::deterministic("march_x", march::march_x(96));
/// // Strobing far inside the valid window passes…
/// assert_eq!(ate.measure(&test, MeasuredParam::DataValidTime, 15.0), Probe::Pass);
/// // …strobing far beyond it fails.
/// assert_eq!(ate.measure(&test, MeasuredParam::DataValidTime, 39.0), Probe::Fail);
/// ```
#[derive(Debug, Clone)]
pub struct Ate {
    device: Device,
    config: AteConfig,
    ledger: MeasurementLedger,
    rng: StdRng,
    /// Fault-injection RNG, split from the session seed on its own stream
    /// so a fault-free session draws from it never and historical noise
    /// sequences stay stable.
    fault_rng: StdRng,
    /// Active stuck-channel / session-abort bursts.
    fault_state: FaultState,
    /// Oracle memoization cache (probe stimulus hash → verdict), present
    /// when enabled via [`Ate::with_memoization`]. Only consulted when
    /// the configuration is noiseless and drift-free — the sole regime
    /// where a verdict is a pure function of the stimulus.
    cache: Option<HashMap<ProbeKey, Probe>>,
    /// The active trace span. Fault injection emits `FaultInjected` events
    /// into it; disabled (the default) it costs one branch per fault.
    trace: SpanTrace,
}

impl Ate {
    /// Loads a device with the default configuration.
    pub fn new(device: impl Into<Device>) -> Self {
        Self::with_config(device, AteConfig::default())
    }

    /// Loads a device with an explicit configuration.
    pub fn with_config(device: impl Into<Device>, config: AteConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        let fault_rng = StdRng::seed_from_u64(cichar_exec::derive_seed(config.seed, FAULT_STREAM));
        Self {
            device: device.into(),
            config,
            ledger: MeasurementLedger::new(),
            rng,
            fault_rng,
            fault_state: FaultState::default(),
            cache: None,
            trace: SpanTrace::disabled(),
        }
    }

    /// Installs the trace span fault injection and probes report into.
    /// Runners install the span of the test being measured and reset to
    /// [`SpanTrace::disabled`] when done.
    pub fn set_trace(&mut self, span: SpanTrace) {
        self.trace = span;
    }

    /// The currently installed trace span.
    pub fn trace(&self) -> &SpanTrace {
        &self.trace
    }

    /// Enables the oracle memoization cache: repeated probes of the same
    /// test at the same parameter point are answered from memory instead
    /// of re-applying the pattern (STP re-probes near the reference trip
    /// point constantly). Cache hits are counted separately in the ledger
    /// ([`MeasurementLedger::cached_probes`]), so measurement-economy
    /// numbers stay honest.
    ///
    /// The cache is only *consulted* when the session is noiseless and
    /// drift-free; a noisy or drifting tester re-measures every probe,
    /// because its verdicts are not pure functions of the stimulus.
    pub fn with_memoization(mut self) -> Self {
        self.cache = Some(HashMap::new());
        self
    }

    /// Whether memoization was enabled on this session.
    pub fn memoization_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Whether memoized verdicts may be served right now: the cache is
    /// enabled and the configuration makes verdicts stimulus-pure (no
    /// noise, no drift, and no fault injection — a glitching tester's
    /// verdicts must never be replayed from memory).
    pub(crate) fn memo_active(&self) -> bool {
        self.cache.is_some()
            && self.config.noise.is_noiseless()
            && self.config.drift.is_none()
            && self.config.faults.is_none()
    }

    /// Serves a probe from the cache, charging the ledger's cached-probe
    /// counter. Returns `None` on miss or when memoization is inactive.
    pub(crate) fn cache_lookup(&mut self, key: ProbeKey) -> Option<Probe> {
        if !self.memo_active() {
            return None;
        }
        let verdict = *self.cache.as_ref()?.get(&key)?;
        self.ledger.record_cached();
        Some(verdict)
    }

    /// Remembers a measured verdict for future probes of the same key.
    pub(crate) fn cache_store(&mut self, key: ProbeKey, verdict: Probe) {
        if self.memo_active() {
            if let Some(cache) = self.cache.as_mut() {
                cache.insert(key, verdict);
            }
        }
    }

    /// A noiseless, drift-free tester — physics assertions in tests and
    /// reproducible examples use this.
    pub fn noiseless(device: impl Into<Device>) -> Self {
        Self::with_config(
            device,
            AteConfig {
                noise: NoiseModel::noiseless(),
                drift: DriftModel::none(),
                faults: TesterFaultModel::none(),
                seed: 0,
            },
        )
    }

    /// The measurement ledger (running totals for this session).
    pub fn ledger(&self) -> &MeasurementLedger {
        &self.ledger
    }

    /// The loaded device (read-only; the characterization stack must not
    /// peek at true values, but reports may describe the die).
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The tester configuration.
    pub fn config(&self) -> &AteConfig {
        &self.config
    }

    /// Measures the test with one parameter forced to `value`.
    ///
    /// This is the elementary trip-point probe: for
    /// [`MeasuredParam::DataValidTime`] the strobe delay is forced, for
    /// [`MeasuredParam::MaxFrequency`] the vector clock, for
    /// [`MeasuredParam::MinVoltage`] the supply.
    pub fn measure(&mut self, test: &Test, param: MeasuredParam, value: f64) -> Probe {
        let mut forces: Vec<(ParamKind, f64)> = param.relax_forces().to_vec();
        forces.push((param.kind(), value));
        self.measure_forced(test, &forces)
    }

    /// Measures the test with an arbitrary set of forced parameters
    /// (the shmoo engine forces two at once).
    pub fn measure_forced(&mut self, test: &Test, forces: &[(ParamKind, f64)]) -> Probe {
        let pattern = test.pattern();
        if self.memo_active() {
            let key = probe_identity(pattern.content_hash(), test.conditions(), forces);
            if let Some(verdict) = self.cache_lookup(key) {
                return verdict;
            }
            let features = PatternFeatures::extract(&pattern);
            let verdict = self.measure_features(&features, pattern.len() as u64, test, forces);
            self.cache_store(key, verdict);
            return verdict;
        }
        let features = PatternFeatures::extract(&pattern);
        self.measure_features(&features, pattern.len() as u64, test, forces)
    }

    /// Hot path: measure with pre-extracted features (search loops apply
    /// the same pattern at many parameter points; extraction is pure so it
    /// can be hoisted).
    pub fn measure_features(
        &mut self,
        features: &PatternFeatures,
        pattern_cycles: u64,
        test: &Test,
        forces: &[(ParamKind, f64)],
    ) -> Probe {
        let (conditions, strobe) = self.conditioned(test, forces);
        self.ledger.record(pattern_cycles, conditions.clock.value());
        let true_params = self.device.evaluate_features(features, &conditions);
        self.finish_measurement(true_params, strobe, &conditions)
    }

    /// [`Ate::measure_features`] with the stimulus' stress total already
    /// hoisted by the caller — the multi-site hot path, where one stress
    /// breakdown serves every site of a touchdown batch
    /// ([`crate::MultiSiteAte`]). Bit-identical to `measure_features` when
    /// `stress_total` comes from this device's stimulus (the scalar path
    /// itself evaluates through the same stress-hoisted arithmetic).
    pub(crate) fn measure_features_with_stress(
        &mut self,
        stress_total: f64,
        pattern_cycles: u64,
        test: &Test,
        forces: &[(ParamKind, f64)],
    ) -> Probe {
        let (conditions, strobe) = self.conditioned(test, forces);
        self.ledger.record(pattern_cycles, conditions.clock.value());
        let true_params = self.device.evaluate_with_stress(stress_total, &conditions);
        self.finish_measurement(true_params, strobe, &conditions)
    }

    /// The effective conditions and strobe of one measurement: forced
    /// environmental parameters applied over the test's own conditions,
    /// plus the session's drift-heated ambient.
    fn conditioned(
        &self,
        test: &Test,
        forces: &[(ParamKind, f64)],
    ) -> (TestConditions, Option<f64>) {
        let (mut conditions, strobe) = apply_forces(test.conditions(), forces);
        // Session drift heats the die on top of the forced ambient.
        let rise = self.config.drift.temperature_rise(self.ledger.cycles());
        if rise > 0.0 {
            conditions =
                conditions.with_temperature(conditions.temperature + Celsius::new(rise));
        }
        (conditions, strobe)
    }

    /// The measurement back half shared by the scalar and stress-hoisted
    /// paths: three noise draws (t_dq, f_max, vdd_min order), the verdict,
    /// and the fault layer. The ledger entry is recorded by the caller
    /// *before* the device evaluation, matching the historical order.
    fn finish_measurement(
        &mut self,
        true_params: Parametrics,
        strobe: Option<f64>,
        conditions: &TestConditions,
    ) -> Probe {
        let noise = &self.config.noise;
        let t_dq = true_params.t_dq.value() + NoiseModel::sample(&mut self.rng, noise.t_dq_sigma());
        let f_max =
            true_params.f_max.value() + NoiseModel::sample(&mut self.rng, noise.f_max_sigma());
        let vdd_min = true_params.vdd_min.value()
            + NoiseModel::sample(&mut self.rng, noise.vdd_min_sigma());

        let strobe_ok = strobe.is_none_or(|s| s <= t_dq);
        let clock_ok = conditions.clock.value() <= f_max;
        let vdd_ok = conditions.vdd.value() >= vdd_min;
        let verdict = if strobe_ok && clock_ok && vdd_ok {
            Probe::Pass
        } else {
            Probe::Fail
        };
        self.inject_faults(verdict)
    }

    /// Batched hot path: measures the same test at many values of one
    /// swept parameter in a single call.
    ///
    /// The per-element physics is **bit-identical** to calling
    /// [`Ate::measure_features`] once per value in order — drift advances
    /// by the pattern's cycle count between elements, and the noise and
    /// fault RNG streams are consumed in exactly the scalar order — but
    /// the device response is evaluated once over the whole batch
    /// ([`MemoryDevice::evaluate_batch`] hoists the pattern's stress
    /// breakdown out of the per-value loop), which is what the batched
    /// oracle call sites buy.
    ///
    /// `base_forces` are applied to every element (§4 relaxation);
    /// `swept` is forced to each of `values` in turn.
    pub fn measure_features_batch(
        &mut self,
        features: &PatternFeatures,
        pattern_cycles: u64,
        test: &Test,
        base_forces: &[(ParamKind, f64)],
        swept: ParamKind,
        values: &[f64],
    ) -> Vec<Probe> {
        if values.is_empty() {
            return Vec::new();
        }
        // Pass 1: per-element conditions. Drift for element `i` is known
        // analytically — every element of the batch applies the same
        // pattern, so its cycle counter reads `c0 + i·pattern_cycles`.
        let c0 = self.ledger.cycles();
        let mut conditions_batch = Vec::with_capacity(values.len());
        let mut strobes = Vec::with_capacity(values.len());
        for (i, &value) in values.iter().enumerate() {
            let mut conditions = *test.conditions();
            let mut strobe: Option<f64> = None;
            let swept_force = (swept, value);
            for &(kind, forced) in base_forces.iter().chain(std::iter::once(&swept_force)) {
                match kind {
                    ParamKind::StrobeDelay => strobe = Some(forced),
                    ParamKind::SupplyVoltage => {
                        conditions = conditions.with_vdd(Volts::new(forced))
                    }
                    ParamKind::ClockFrequency => {
                        conditions = conditions.with_clock(Megahertz::new(forced))
                    }
                    ParamKind::Temperature => {
                        conditions = conditions.with_temperature(Celsius::new(forced))
                    }
                }
            }
            let rise = self
                .config
                .drift
                .temperature_rise(c0 + i as u64 * pattern_cycles);
            if rise > 0.0 {
                conditions =
                    conditions.with_temperature(conditions.temperature + Celsius::new(rise));
            }
            conditions_batch.push(conditions);
            strobes.push(strobe);
        }

        // One pure device evaluation over the whole batch.
        let true_params = self.device.evaluate_batch(features, &conditions_batch);

        // Pass 2: sequential bookkeeping in exactly the scalar order —
        // ledger record, three noise draws, verdict, fault layer.
        let (t_dq_sigma, f_max_sigma, vdd_min_sigma) = (
            self.config.noise.t_dq_sigma(),
            self.config.noise.f_max_sigma(),
            self.config.noise.vdd_min_sigma(),
        );
        let mut verdicts = Vec::with_capacity(values.len());
        for (i, params) in true_params.iter().enumerate() {
            let conditions = &conditions_batch[i];
            self.ledger.record(pattern_cycles, conditions.clock.value());
            let t_dq = params.t_dq.value() + NoiseModel::sample(&mut self.rng, t_dq_sigma);
            let f_max = params.f_max.value() + NoiseModel::sample(&mut self.rng, f_max_sigma);
            let vdd_min =
                params.vdd_min.value() + NoiseModel::sample(&mut self.rng, vdd_min_sigma);
            let strobe_ok = strobes[i].is_none_or(|s| s <= t_dq);
            let clock_ok = conditions.clock.value() <= f_max;
            let vdd_ok = conditions.vdd.value() >= vdd_min;
            let verdict = if strobe_ok && clock_ok && vdd_ok {
                Probe::Pass
            } else {
                Probe::Fail
            };
            verdicts.push(self.inject_faults(verdict));
        }
        verdicts
    }

    /// Marks the `n` most recent measurements as speculative pre-issues in
    /// the ledger (batched oracles call this for the discardable tail of a
    /// speculative batch).
    pub(crate) fn record_speculative(&mut self, n: u64) {
        for _ in 0..n {
            self.ledger.record_speculative();
        }
    }

    /// Passes the true verdict through the tester's fault layer. A healthy
    /// tester short-circuits without touching the fault RNG; a faulty one
    /// draws a fixed number of uniforms per measurement so replay is exact
    /// regardless of which faults fire.
    fn inject_faults(&mut self, verdict: Probe) -> Probe {
        if self.config.faults.is_none() {
            return verdict;
        }
        // Active session abort: the handler lost the device; every verdict
        // in the burst is unavailable.
        if self.fault_state.abort_remaining > 0 {
            self.fault_state.abort_remaining -= 1;
            self.ledger.record_dropout();
            self.trace.emit(TraceEvent::FaultInjected {
                kind: FaultKind::Dropout,
            });
            return Probe::Invalid;
        }
        // Active stuck channel: the comparator repeats its latched verdict.
        if let (true, Some(stuck)) = (
            self.fault_state.stuck_remaining > 0,
            self.fault_state.stuck_verdict,
        ) {
            self.fault_state.stuck_remaining -= 1;
            if self.fault_state.stuck_remaining == 0 {
                self.fault_state.stuck_verdict = None;
            }
            self.ledger.record_stuck_probe();
            self.trace.emit(TraceEvent::FaultInjected {
                kind: FaultKind::Stuck,
            });
            return stuck;
        }
        // Fixed draw order — abort, dropout, stuck, flip, then stall — so
        // the stream consumption per measurement is constant and
        // replayable. The stall uniform is drawn only when the config
        // enables stalls: it was added after the first four, and gating it
        // on the *config* (never on which fault fired) keeps every
        // pre-stall seed's fault stream bit-identical.
        let faults = self.config.faults;
        let r_abort: f64 = self.fault_rng.gen();
        let r_dropout: f64 = self.fault_rng.gen();
        let r_stuck: f64 = self.fault_rng.gen();
        let r_flip: f64 = self.fault_rng.gen();
        let r_stall: Option<f64> = (faults.stall_rate() > 0.0).then(|| self.fault_rng.gen());
        if r_abort < faults.abort_rate() {
            // This measurement is the first casualty of the abort burst.
            self.fault_state.abort_remaining = faults.abort_len() - 1;
            self.ledger.record_abort();
            self.ledger.record_dropout();
            self.trace.emit(TraceEvent::FaultInjected {
                kind: FaultKind::Abort,
            });
            return Probe::Invalid;
        }
        if r_dropout < faults.dropout_rate() {
            self.ledger.record_dropout();
            self.trace.emit(TraceEvent::FaultInjected {
                kind: FaultKind::Dropout,
            });
            return Probe::Invalid;
        }
        if r_stuck < faults.stuck_rate() {
            // The channel latches this (true) verdict for the next burst.
            self.fault_state.stuck_remaining = faults.stuck_len();
            self.fault_state.stuck_verdict = Some(verdict);
            return verdict;
        }
        if r_flip < faults.flip_rate() {
            self.ledger.record_flip();
            self.trace.emit(TraceEvent::FaultInjected {
                kind: FaultKind::Flip,
            });
            return verdict.flipped();
        }
        // Lowest precedence: a hung strobe. The verdict is correct — the
        // channel just took `stall_us` of extra simulated tester time to
        // produce it, which is what the wafer watchdog budgets against.
        if r_stall.is_some_and(|r| r < faults.stall_rate()) {
            self.ledger.record_stall(faults.stall_us());
            self.trace.emit(TraceEvent::FaultInjected {
                kind: FaultKind::Stall,
            });
        }
        verdict
    }

    /// Borrows the tester as a search oracle for one test and parameter.
    pub fn trip_oracle<'a>(&'a mut self, test: &'a Test, param: MeasuredParam) -> TripOracle<'a> {
        TripOracle::new(self, test, param)
    }

    /// Borrows the tester as a fault-tolerant search oracle: a
    /// [`RobustOracle`] applying `policy`'s retry / backoff / voting
    /// ladder over the raw [`TripOracle`]. After the search, release the
    /// borrow with [`RobustOracle::into_stats`] and charge the recovery
    /// cost back with [`Ate::absorb_recovery`].
    pub fn robust_oracle<'a>(
        &'a mut self,
        test: &'a Test,
        param: MeasuredParam,
        policy: RetryPolicy,
    ) -> RobustOracle<TripOracle<'a>> {
        let span = self.trace.clone();
        RobustOracle::new(TripOracle::new(self, test, param), policy).with_trace(span)
    }

    /// Charges a [`RobustOracle`]'s recovery tally to this session's
    /// ledger: re-issued strobes and simulated backoff settle time. The
    /// retried measurements themselves were already recorded when they
    /// ran.
    pub fn absorb_recovery(&mut self, stats: &RecoveryStats) {
        self.ledger.record_recovery(stats.retries, stats.backoff_us);
    }

    /// Records in the ledger that a characterization point measured on
    /// this session was quarantined — excluded from the reported result
    /// because recovery could not produce a trustworthy trip point.
    pub fn quarantine(&mut self) {
        self.ledger.record_quarantined();
    }

    /// Records that the stall watchdog abandoned a test on this session:
    /// the point is quarantined *and* counted as a timeout, so breaker
    /// and durability accounting can tell "gave up waiting" apart from
    /// "measured but untrustworthy".
    pub fn time_out(&mut self) {
        self.ledger.record_timeout();
        self.ledger.record_quarantined();
    }

    /// One production-style application: the pattern runs once with
    /// `param` forced to `limit`, and the verdict combines the parametric
    /// envelope with a cycle-accurate data compare against the device's
    /// fault model — §1's "determines if the device meets its design
    /// specification", in a single measurement.
    pub fn measure_production(
        &mut self,
        test: &Test,
        param: MeasuredParam,
        limit: f64,
    ) -> Probe {
        let parametric = self.measure(test, param, limit);
        if parametric != Probe::Pass {
            return Probe::Fail;
        }
        // Same pattern application: the data compare costs no extra
        // tester time, so it is not charged to the ledger again.
        if self.device.execute_pattern(&test.pattern()).pass() {
            Probe::Pass
        } else {
            Probe::Fail
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cichar_dut::MemoryDevice;
    use cichar_patterns::{march, TestConditions};
    use cichar_search::{BinarySearch, SuccessiveApproximation};

    fn march_test() -> Test {
        Test::deterministic("march_c-", march::march_c_minus(64))
    }

    #[test]
    fn strobe_verdicts_bracket_t_dq() {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let t = march_test();
        // March C- true t_dq ≈ 32.3 ns on the nominal die.
        assert_eq!(ate.measure(&t, MeasuredParam::DataValidTime, 30.0), Probe::Pass);
        assert_eq!(ate.measure(&t, MeasuredParam::DataValidTime, 34.0), Probe::Fail);
    }

    #[test]
    fn frequency_verdicts_bracket_f_max() {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let t = march_test();
        assert_eq!(ate.measure(&t, MeasuredParam::MaxFrequency, 100.0), Probe::Pass);
        assert_eq!(ate.measure(&t, MeasuredParam::MaxFrequency, 125.0), Probe::Fail);
    }

    #[test]
    fn voltage_verdicts_bracket_vdd_min() {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let t = march_test();
        assert_eq!(ate.measure(&t, MeasuredParam::MinVoltage, 1.8), Probe::Pass);
        assert_eq!(ate.measure(&t, MeasuredParam::MinVoltage, 1.2), Probe::Fail);
    }

    #[test]
    fn ledger_counts_each_measurement() {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let t = march_test();
        for _ in 0..5 {
            let _ = ate.measure(&t, MeasuredParam::DataValidTime, 20.0);
        }
        assert_eq!(ate.ledger().measurements(), 5);
        assert_eq!(ate.ledger().cycles(), 5 * 640);
    }

    #[test]
    fn binary_search_recovers_true_t_dq() {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let t = march_test();
        let param = MeasuredParam::DataValidTime;
        let search = BinarySearch::new(param.generous_range(), 0.02);
        let outcome = search.run(param.region_order(), ate.trip_oracle(&t, param));
        let trip = outcome.trip_point.expect("in range");
        assert!((trip - 32.3).abs() < 0.5, "trip = {trip}");
    }

    #[test]
    fn vdd_min_search_uses_eq4_orientation() {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let t = march_test();
        let param = MeasuredParam::MinVoltage;
        let search = BinarySearch::new(param.generous_range(), param.resolution());
        let outcome = search.run(param.region_order(), ate.trip_oracle(&t, param));
        let trip = outcome.trip_point.expect("in range");
        assert!((1.3..1.5).contains(&trip), "vdd_min trip = {trip}");
    }

    #[test]
    fn forcing_vdd_shifts_the_t_dq_verdict() {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let t = march_test();
        // Passing strobe at nominal Vdd…
        let nominal = ate.measure_forced(
            &t,
            &[(ParamKind::StrobeDelay, 31.0), (ParamKind::SupplyVoltage, 1.8)],
        );
        // …fails when the supply is starved (window shrinks below 31 ns).
        let starved = ate.measure_forced(
            &t,
            &[(ParamKind::StrobeDelay, 31.0), (ParamKind::SupplyVoltage, 1.5)],
        );
        assert_eq!(nominal, Probe::Pass);
        assert_eq!(starved, Probe::Fail);
    }

    #[test]
    fn noise_flips_verdicts_only_near_the_boundary() {
        let device = MemoryDevice::nominal();
        let mut noisy = Ate::with_config(
            device,
            AteConfig {
                noise: NoiseModel::new(0.05, 0.0, 0.0),
                drift: DriftModel::none(),
                seed: 7,
                ..AteConfig::default()
            },
        );
        let t = march_test();
        let mut far_flips = 0;
        let mut near_mixed = (0, 0);
        for _ in 0..100 {
            if !matches!(noisy.measure(&t, MeasuredParam::DataValidTime, 20.0), Probe::Pass) {
                far_flips += 1;
            }
            match noisy.measure(&t, MeasuredParam::DataValidTime, 32.3) {
                Probe::Pass => near_mixed.0 += 1,
                Probe::Fail => near_mixed.1 += 1,
                Probe::Invalid => unreachable!("no fault injection configured"),
            }
        }
        assert_eq!(far_flips, 0, "20 ns is 12σ from the boundary");
        assert!(
            near_mixed.0 > 5 && near_mixed.1 > 5,
            "at the boundary noise must produce both verdicts, got {near_mixed:?}"
        );
    }

    #[test]
    fn drift_erodes_margin_over_long_sessions() {
        let config = AteConfig {
            noise: NoiseModel::noiseless(),
            drift: DriftModel::new(60.0, 2e5),
            seed: 0,
            ..AteConfig::default()
        };
        let mut ate = Ate::with_config(MemoryDevice::nominal(), config);
        let t = march_test();
        // Just inside the window when cold…
        assert_eq!(ate.measure(&t, MeasuredParam::DataValidTime, 32.0), Probe::Pass);
        // …after a long session the die is hot and the window shrank.
        for _ in 0..2000 {
            let _ = ate.measure(&t, MeasuredParam::DataValidTime, 5.0);
        }
        assert_eq!(ate.measure(&t, MeasuredParam::DataValidTime, 32.0), Probe::Fail);
    }

    #[test]
    fn drifting_session_still_converges_with_successive_approximation() {
        let config = AteConfig {
            noise: NoiseModel::noiseless(),
            drift: DriftModel::new(20.0, 5e4),
            seed: 0,
            ..AteConfig::default()
        };
        let mut ate = Ate::with_config(MemoryDevice::nominal(), config);
        let t = march_test();
        let param = MeasuredParam::DataValidTime;
        let search = SuccessiveApproximation::new(param.generous_range(), param.resolution());
        let outcome = search.run(param.region_order(), ate.trip_oracle(&t, param));
        assert!(outcome.converged, "drift-tolerant search should converge");
    }

    fn faulty_config(faults: TesterFaultModel, seed: u64) -> AteConfig {
        AteConfig {
            noise: NoiseModel::noiseless(),
            drift: DriftModel::none(),
            faults,
            seed,
        }
    }

    #[test]
    fn fault_free_sessions_ignore_the_fault_layer() {
        // Same seed, faults explicitly none vs default: identical verdict
        // streams and zero fault columns.
        let t = march_test();
        let mut ate = Ate::with_config(
            MemoryDevice::nominal(),
            faulty_config(TesterFaultModel::none(), 42),
        );
        for i in 0..50 {
            let v = ate.measure(&t, MeasuredParam::DataValidTime, 20.0 + 0.2 * f64::from(i));
            assert!(v.is_valid());
        }
        assert_eq!(ate.ledger().injected_faults(), 0);
    }

    #[test]
    fn dropouts_return_invalid_and_are_ledgered() {
        let t = march_test();
        let faults = TesterFaultModel::transient(0.0, 0.3);
        let mut ate = Ate::with_config(MemoryDevice::nominal(), faulty_config(faults, 9));
        let mut invalids = 0;
        for _ in 0..200 {
            if !ate.measure(&t, MeasuredParam::DataValidTime, 20.0).is_valid() {
                invalids += 1;
            }
        }
        assert!(invalids > 20, "30% dropout must show, got {invalids}");
        assert_eq!(ate.ledger().dropouts(), invalids);
        assert_eq!(ate.ledger().flips(), 0);
    }

    #[test]
    fn flips_invert_verdicts_and_are_ledgered() {
        let t = march_test();
        let faults = TesterFaultModel::transient(0.3, 0.0);
        let mut ate = Ate::with_config(MemoryDevice::nominal(), faulty_config(faults, 11));
        // 20 ns is deep inside the valid window: every Fail is a flip.
        let mut fails = 0;
        for _ in 0..200 {
            if ate.measure(&t, MeasuredParam::DataValidTime, 20.0) == Probe::Fail {
                fails += 1;
            }
        }
        assert!(fails > 20, "30% flips must show, got {fails}");
        assert_eq!(ate.ledger().flips(), fails);
        assert_eq!(ate.ledger().dropouts(), 0);
    }

    #[test]
    fn stuck_channel_repeats_latched_verdict() {
        let t = march_test();
        // Certain stick on the first measurement (rate ~1), long burst.
        let faults = TesterFaultModel::none().with_stuck_channels(0.999, 4);
        let mut ate = Ate::with_config(MemoryDevice::nominal(), faulty_config(faults, 3));
        // First measurement passes (deep in window) and latches the channel…
        assert_eq!(ate.measure(&t, MeasuredParam::DataValidTime, 20.0), Probe::Pass);
        // …so the next four verdicts are Pass even far beyond the window.
        for _ in 0..4 {
            assert_eq!(ate.measure(&t, MeasuredParam::DataValidTime, 39.5), Probe::Pass);
        }
        assert_eq!(ate.ledger().stuck_probes(), 4);
    }

    #[test]
    fn session_abort_masks_a_burst_of_verdicts() {
        let t = march_test();
        let faults = TesterFaultModel::none().with_session_aborts(0.999, 3);
        let mut ate = Ate::with_config(MemoryDevice::nominal(), faulty_config(faults, 5));
        for _ in 0..3 {
            assert_eq!(ate.measure(&t, MeasuredParam::DataValidTime, 20.0), Probe::Invalid);
        }
        assert_eq!(ate.ledger().aborts(), 1, "one abort event");
        assert_eq!(ate.ledger().dropouts(), 3, "every masked verdict counted");
    }

    #[test]
    fn faulty_sessions_replay_bit_identically() {
        let faults = TesterFaultModel::transient(0.05, 0.05)
            .with_stuck_channels(0.01, 3)
            .with_session_aborts(0.005, 4);
        let run = || {
            let mut ate =
                Ate::with_config(MemoryDevice::nominal(), faulty_config(faults, 1234));
            let t = march_test();
            let verdicts: Vec<Probe> = (0..120)
                .map(|i| ate.measure(&t, MeasuredParam::DataValidTime, 25.0 + 0.1 * f64::from(i)))
                .collect();
            (verdicts, *ate.ledger())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn faults_disable_memoization() {
        let faults = TesterFaultModel::transient(0.0, 0.2);
        let ate = Ate::with_config(MemoryDevice::nominal(), faulty_config(faults, 1))
            .with_memoization();
        assert!(ate.memoization_enabled());
        assert!(!ate.memo_active(), "glitching verdicts must not be cached");
    }

    #[test]
    fn robust_oracle_recovers_dropouts_and_charges_ledger() {
        let t = march_test();
        let faults = TesterFaultModel::transient(0.0, 0.3);
        let mut ate = Ate::with_config(MemoryDevice::nominal(), faulty_config(faults, 21));
        let policy = cichar_search::RetryPolicy::new(5, 100.0);
        let mut oracle = ate.robust_oracle(&t, MeasuredParam::DataValidTime, policy);
        use cichar_search::PassFailOracle;
        for _ in 0..50 {
            // Deep in the window: with retries, every verdict resolves.
            assert_eq!(oracle.probe(20.0), Probe::Pass);
        }
        let stats = oracle.into_stats();
        assert!(stats.retries > 0, "30% dropouts need retries");
        ate.absorb_recovery(&stats);
        assert_eq!(ate.ledger().retries(), stats.retries);
        assert!(ate.ledger().backoff_time_us() > 0.0);
        assert!(ate.ledger().dropouts() >= stats.retries, "every retry was caused by a dropout");
    }

    #[test]
    fn batch_measurement_is_bit_identical_to_scalar_sequence() {
        // The nastiest regime: noise, drift AND fault injection all on.
        // Batch element i must consume exactly the RNG draws, drift cycles
        // and fault-state transitions of the i-th sequential measurement.
        let faults = TesterFaultModel::transient(0.05, 0.05)
            .with_stuck_channels(0.02, 3)
            .with_session_aborts(0.01, 4);
        let config = AteConfig {
            noise: NoiseModel::new(0.05, 0.1, 0.01),
            drift: DriftModel::new(30.0, 1e5),
            faults,
            seed: 77,
        };
        let t = march_test();
        let pattern = t.pattern();
        let features = PatternFeatures::extract(&pattern);
        let cycles = pattern.len() as u64;
        let base = MeasuredParam::DataValidTime.relax_forces().to_vec();
        let values: Vec<f64> = (0..60).map(|i| 25.0 + 0.25 * f64::from(i)).collect();

        let mut scalar = Ate::with_config(MemoryDevice::nominal(), config.clone());
        let scalar_verdicts: Vec<Probe> = values
            .iter()
            .map(|&v| {
                let mut forces = base.clone();
                forces.push((ParamKind::StrobeDelay, v));
                scalar.measure_features(&features, cycles, &t, &forces)
            })
            .collect();

        let mut batched = Ate::with_config(MemoryDevice::nominal(), config);
        let batch = batched.measure_features_batch(
            &features,
            cycles,
            &t,
            &base,
            ParamKind::StrobeDelay,
            &values,
        );
        assert_eq!(batch, scalar_verdicts);
        assert_eq!(*batched.ledger(), *scalar.ledger());
    }

    #[test]
    fn batch_of_one_equals_one_measurement() {
        let t = march_test();
        let pattern = t.pattern();
        let features = PatternFeatures::extract(&pattern);
        let cycles = pattern.len() as u64;
        let base = MeasuredParam::DataValidTime.relax_forces().to_vec();
        let mut a = Ate::noiseless(MemoryDevice::nominal());
        let mut forces = base.clone();
        forces.push((ParamKind::StrobeDelay, 30.0));
        let scalar = a.measure_features(&features, cycles, &t, &forces);
        let mut b = Ate::noiseless(MemoryDevice::nominal());
        let batch =
            b.measure_features_batch(&features, cycles, &t, &base, ParamKind::StrobeDelay, &[30.0]);
        assert_eq!(batch, vec![scalar]);
        assert_eq!(*b.ledger(), *a.ledger());
        assert!(b
            .measure_features_batch(&features, cycles, &t, &base, ParamKind::StrobeDelay, &[])
            .is_empty());
    }

    #[test]
    fn sessions_are_seed_reproducible() {
        let run = || {
            let mut ate = Ate::with_config(MemoryDevice::nominal(), AteConfig::default());
            let t = march_test();
            (0..50)
                .map(|i| {
                    ate.measure(&t, MeasuredParam::DataValidTime, 31.0 + 0.05 * f64::from(i))
                        .is_pass()
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn conditions_from_test_are_respected() {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let cold = march_test();
        let starved = cold.with_conditions(TestConditions::nominal().with_vdd(Volts::new(1.5)));
        // The same strobe passes at nominal but fails on the starved test.
        assert_eq!(ate.measure(&cold, MeasuredParam::DataValidTime, 31.0), Probe::Pass);
        assert_eq!(
            ate.measure(&starved, MeasuredParam::DataValidTime, 31.0),
            Probe::Fail
        );
    }
}
