//! Session drift: the device heats up as measurements accumulate.

use serde::{Deserialize, Serialize};

/// Thermal drift across a test session.
///
/// §1 warns that "if the specification parameter changes over time due to
/// device heating or other factors, an inaccurate reading could result" —
/// it is the reason successive approximation exists. The model is a
/// first-order heat-up: die temperature rises with every applied vector
/// cycle and saturates at `max_rise` degrees above ambient.
///
/// # Examples
///
/// ```
/// use cichar_ate::DriftModel;
///
/// let drift = DriftModel::new(8.0, 5_000_000.0);
/// assert_eq!(drift.temperature_rise(0), 0.0);
/// let warm = drift.temperature_rise(2_000_000);
/// let hot = drift.temperature_rise(20_000_000);
/// assert!(warm > 0.0 && hot > warm && hot <= 8.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftModel {
    max_rise: f64,
    time_constant_cycles: f64,
}

impl DriftModel {
    /// Creates a drift model saturating at `max_rise` °C with the given
    /// time constant in vector cycles.
    ///
    /// # Panics
    ///
    /// Panics if `max_rise` is negative or `time_constant_cycles` is not
    /// positive.
    pub fn new(max_rise: f64, time_constant_cycles: f64) -> Self {
        assert!(max_rise >= 0.0, "negative max_rise {max_rise}");
        assert!(
            time_constant_cycles > 0.0,
            "non-positive time constant {time_constant_cycles}"
        );
        Self {
            max_rise,
            time_constant_cycles,
        }
    }

    /// No drift at all — the default for repeatable experiments.
    pub fn none() -> Self {
        Self {
            max_rise: 0.0,
            time_constant_cycles: 1.0,
        }
    }

    /// Saturation temperature rise in °C.
    pub fn max_rise(&self) -> f64 {
        self.max_rise
    }

    /// Whether this model never drifts, making verdicts independent of
    /// session history (the memoization cache is only sound in this
    /// regime).
    pub fn is_none(&self) -> bool {
        self.max_rise == 0.0
    }

    /// Die temperature rise after `cycles` total applied vector cycles.
    pub fn temperature_rise(&self, cycles: u64) -> f64 {
        self.max_rise * (1.0 - (-(cycles as f64) / self.time_constant_cycles).exp())
    }
}

impl Default for DriftModel {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_drifts() {
        let d = DriftModel::none();
        assert_eq!(d.temperature_rise(u64::MAX / 2), 0.0);
    }

    #[test]
    fn rise_is_monotone_and_saturating() {
        let d = DriftModel::new(10.0, 1e6);
        let mut prev = -1.0;
        for cycles in [0u64, 100_000, 1_000_000, 10_000_000, 100_000_000] {
            let r = d.temperature_rise(cycles);
            assert!(r >= prev);
            assert!(r <= 10.0);
            prev = r;
        }
        assert!(d.temperature_rise(100_000_000) > 9.9, "saturates near max");
    }

    #[test]
    fn time_constant_sets_63_percent_point() {
        let d = DriftModel::new(10.0, 1e6);
        let r = d.temperature_rise(1_000_000);
        assert!((r - 6.32).abs() < 0.1, "rise at tau = {r}");
    }

    #[test]
    #[should_panic(expected = "non-positive time constant")]
    fn rejects_zero_time_constant() {
        let _ = DriftModel::new(1.0, 0.0);
    }
}
