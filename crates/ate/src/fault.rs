//! Tester fault injection — the third hostile-environment model.
//!
//! [`NoiseModel`](crate::NoiseModel) jitters the device's limits and
//! [`DriftModel`](crate::DriftModel) heats the die; [`TesterFaultModel`]
//! breaks the *tester itself*. Real ATE glitches in four characteristic
//! ways, each injected here per strobed verdict:
//!
//! * **probe-contact dropout** — the strobe channel goes silent for one
//!   measurement; no verdict is available
//!   ([`Probe::Invalid`](cichar_search::Probe::Invalid));
//! * **transient verdict flip** — electrical noise on the comparator
//!   inverts a single verdict;
//! * **stuck-verdict channel** — the comparator latches whatever verdict
//!   it last produced and repeats it for a burst of measurements;
//! * **session abort** — the handler loses the device mid-search and every
//!   verdict in the burst is unavailable.
//!
//! Faults draw from their own deterministic RNG stream (derived from the
//! session seed, separate from the noise stream), so a faulty campaign
//! replays bit-identically under [`ParallelAte`](crate::ParallelAte) at
//! any thread count — and a fault-free session consumes no fault
//! randomness at all, keeping historical seeds stable.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Default length of a stuck-verdict burst, in measurements.
const DEFAULT_STUCK_LEN: u32 = 5;
/// Default length of a session-abort burst, in measurements.
const DEFAULT_ABORT_LEN: u32 = 8;

/// Per-verdict fault rates of the simulated tester.
///
/// All rates are probabilities per strobed measurement, in `[0, 1)`. The
/// order of precedence when multiple faults could fire on one measurement
/// is fixed (abort, dropout, stuck, flip) so replay is exact.
///
/// # Examples
///
/// ```
/// use cichar_ate::TesterFaultModel;
///
/// let faults = TesterFaultModel::transient(0.02, 0.01);
/// assert!(!faults.is_none());
/// assert_eq!(faults.flip_rate(), 0.02);
/// assert_eq!(faults.dropout_rate(), 0.01);
/// assert!(TesterFaultModel::none().is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TesterFaultModel {
    dropout_rate: f64,
    flip_rate: f64,
    stuck_rate: f64,
    stuck_len: u32,
    abort_rate: f64,
    abort_len: u32,
    // The stall fields postdate the first serialized fault models; they
    // deserialize as zero (healthy) when absent.
    #[serde(default)]
    stall_rate: f64,
    #[serde(default)]
    stall_us: f64,
}

impl Default for TesterFaultModel {
    fn default() -> Self {
        Self::none()
    }
}

impl TesterFaultModel {
    /// A perfectly healthy tester: no faults, and no fault randomness is
    /// ever consumed.
    pub fn none() -> Self {
        Self {
            dropout_rate: 0.0,
            flip_rate: 0.0,
            stuck_rate: 0.0,
            stuck_len: DEFAULT_STUCK_LEN,
            abort_rate: 0.0,
            abort_len: DEFAULT_ABORT_LEN,
            stall_rate: 0.0,
            stall_us: 0.0,
        }
    }

    /// Only the transient, single-measurement faults: verdict flips at
    /// `flip_rate` and contact dropouts at `dropout_rate`.
    ///
    /// # Panics
    ///
    /// Panics if either rate is outside `[0, 1)`.
    pub fn transient(flip_rate: f64, dropout_rate: f64) -> Self {
        let mut model = Self::none();
        model.flip_rate = validated(flip_rate, "flip rate");
        model.dropout_rate = validated(dropout_rate, "dropout rate");
        model
    }

    /// Adds stuck-verdict channels: at `rate` per measurement the channel
    /// latches its current verdict for the next `len` measurements.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1)` or `len` is zero.
    pub fn with_stuck_channels(mut self, rate: f64, len: u32) -> Self {
        assert!(len > 0, "stuck burst must cover at least one measurement");
        self.stuck_rate = validated(rate, "stuck rate");
        self.stuck_len = len;
        self
    }

    /// Adds mid-search session aborts: at `rate` per measurement the
    /// session drops for `len` measurements, each returning no verdict.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1)` or `len` is zero.
    pub fn with_session_aborts(mut self, rate: f64, len: u32) -> Self {
        assert!(len > 0, "abort burst must cover at least one measurement");
        self.abort_rate = validated(rate, "abort rate");
        self.abort_len = len;
        self
    }

    /// Adds hung-strobe stalls: at `rate` per measurement the channel
    /// still answers, but only after `stall_us` extra microseconds of
    /// simulated tester time. Stalls never corrupt a verdict — they burn
    /// the clock, which is what the wafer engine's stall watchdog guards
    /// against.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1)` or `stall_us` is not a
    /// positive finite duration.
    pub fn with_stalls(mut self, rate: f64, stall_us: f64) -> Self {
        assert!(
            stall_us.is_finite() && stall_us > 0.0,
            "stall duration {stall_us} must be a positive finite µs count"
        );
        self.stall_rate = validated(rate, "stall rate");
        self.stall_us = stall_us;
        self
    }

    /// `true` when every fault rate is zero — the fast path that skips
    /// fault RNG entirely.
    pub fn is_none(&self) -> bool {
        self.dropout_rate == 0.0
            && self.flip_rate == 0.0
            && self.stuck_rate == 0.0
            && self.abort_rate == 0.0
            && self.stall_rate == 0.0
    }

    /// Probability of a probe-contact dropout per measurement.
    pub fn dropout_rate(&self) -> f64 {
        self.dropout_rate
    }

    /// Probability of a transient verdict flip per measurement.
    pub fn flip_rate(&self) -> f64 {
        self.flip_rate
    }

    /// Probability of a channel sticking per measurement.
    pub fn stuck_rate(&self) -> f64 {
        self.stuck_rate
    }

    /// Length of a stuck-verdict burst, in measurements.
    pub fn stuck_len(&self) -> u32 {
        self.stuck_len
    }

    /// Probability of a session abort per measurement.
    pub fn abort_rate(&self) -> f64 {
        self.abort_rate
    }

    /// Length of a session-abort burst, in measurements.
    pub fn abort_len(&self) -> u32 {
        self.abort_len
    }

    /// Probability of a hung-strobe stall per measurement.
    pub fn stall_rate(&self) -> f64 {
        self.stall_rate
    }

    /// Extra simulated tester time a stalled strobe burns, in µs.
    pub fn stall_us(&self) -> f64 {
        self.stall_us
    }
}

fn validated(rate: f64, what: &str) -> f64 {
    assert!(
        rate.is_finite() && (0.0..1.0).contains(&rate),
        "{what} {rate} outside [0, 1)"
    );
    rate
}

impl fmt::Display for TesterFaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return f.write_str("no tester faults");
        }
        write!(
            f,
            "faults: {:.2}% dropout, {:.2}% flip, {:.2}% stuck(×{}), {:.2}% abort(×{})",
            self.dropout_rate * 100.0,
            self.flip_rate * 100.0,
            self.stuck_rate * 100.0,
            self.stuck_len,
            self.abort_rate * 100.0,
            self.abort_len
        )?;
        if self.stall_rate > 0.0 {
            write!(
                f,
                ", {:.2}% stall({} µs)",
                self.stall_rate * 100.0,
                self.stall_us
            )?;
        }
        Ok(())
    }
}

/// Mutable burst state of an injecting tester: an active stuck channel
/// and/or an in-flight session abort.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct FaultState {
    pub(crate) stuck_remaining: u32,
    pub(crate) stuck_verdict: Option<cichar_search::Probe>,
    pub(crate) abort_remaining: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none() {
        assert!(TesterFaultModel::none().is_none());
        assert!(TesterFaultModel::default().is_none());
        assert!(!TesterFaultModel::transient(0.0, 0.5).is_none());
    }

    #[test]
    fn builders_set_rates() {
        let m = TesterFaultModel::transient(0.02, 0.01)
            .with_stuck_channels(0.005, 3)
            .with_session_aborts(0.001, 10);
        assert_eq!(m.flip_rate(), 0.02);
        assert_eq!(m.dropout_rate(), 0.01);
        assert_eq!(m.stuck_rate(), 0.005);
        assert_eq!(m.stuck_len(), 3);
        assert_eq!(m.abort_rate(), 0.001);
        assert_eq!(m.abort_len(), 10);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn rejects_rate_of_one() {
        let _ = TesterFaultModel::transient(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn rejects_negative_rate() {
        let _ = TesterFaultModel::transient(0.0, -0.1);
    }

    #[test]
    #[should_panic(expected = "at least one measurement")]
    fn rejects_zero_burst() {
        let _ = TesterFaultModel::none().with_stuck_channels(0.1, 0);
    }

    #[test]
    fn display_summarizes_rates() {
        assert_eq!(TesterFaultModel::none().to_string(), "no tester faults");
        let s = TesterFaultModel::transient(0.02, 0.01).to_string();
        assert!(s.contains("2.00% flip") && s.contains("1.00% dropout"), "{s}");
    }

    #[test]
    fn round_trips_through_serde() {
        let m = TesterFaultModel::transient(0.02, 0.01)
            .with_stuck_channels(0.005, 3)
            .with_stalls(0.1, 2_000.0);
        let json = serde_json::to_string(&m).expect("serialize");
        let back: TesterFaultModel = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, m);
    }

    #[test]
    fn stall_model_activates_faults_and_displays() {
        let m = TesterFaultModel::none().with_stalls(0.25, 1_500.0);
        assert!(!m.is_none(), "a stalling tester is not healthy");
        assert_eq!(m.stall_rate(), 0.25);
        assert_eq!(m.stall_us(), 1_500.0);
        let s = m.to_string();
        assert!(s.contains("25.00% stall(1500 µs)"), "{s}");
    }

    #[test]
    fn pre_stall_serialized_models_parse_as_stall_free() {
        let m = TesterFaultModel::transient(0.02, 0.01);
        let json = serde_json::to_string(&m)
            .expect("serialize")
            .replace(",\"stall_rate\":0.0", "")
            .replace(",\"stall_us\":0.0", "");
        assert!(!json.contains("stall"), "{json}");
        let back: TesterFaultModel = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, m);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn rejects_zero_stall_duration() {
        let _ = TesterFaultModel::none().with_stalls(0.1, 0.0);
    }
}
