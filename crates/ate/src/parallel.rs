//! The parallel-session adapter: one tester blueprint, many deterministic
//! worker sessions.

use crate::tester::{Ate, AteConfig};
use cichar_dut::Device;
use cichar_exec::derive_seed;

/// Blueprint for spawning per-work-item [`Ate`] sessions whose results are
/// bit-identical regardless of thread count or scheduling order.
///
/// Real multi-site ATE duplicates the load board per site; this adapter
/// does the in-simulation equivalent. It captures a device and a campaign
/// configuration, and [`ParallelAte::session`] clones them into an
/// independent tester whose RNG seed is
/// [`derive_seed`]`(campaign seed, item index)` — a pure function of the
/// item's identity. A worker therefore sees the same noise stream for
/// item *i* whether it runs first on one thread or last on sixteen, and
/// the caller merges ledgers and results **by index** to reassemble a
/// deterministic campaign total.
///
/// # Examples
///
/// ```
/// use cichar_ate::{AteConfig, ParallelAte};
/// use cichar_dut::MemoryDevice;
///
/// let blueprint = ParallelAte::new(MemoryDevice::nominal(), AteConfig::default());
/// let a = blueprint.session(7);
/// let b = blueprint.session(7);
/// // The same index always yields an identically-seeded session…
/// assert_eq!(a.config(), b.config());
/// // …and different indices never share a seed.
/// assert_ne!(blueprint.session(8).config().seed, a.config().seed);
/// ```
#[derive(Debug, Clone)]
pub struct ParallelAte {
    device: Device,
    config: AteConfig,
    memoize: bool,
}

impl ParallelAte {
    /// Captures a device and campaign configuration as the blueprint every
    /// worker session is cloned from. `config.seed` is the campaign seed.
    pub fn new(device: impl Into<Device>, config: AteConfig) -> Self {
        Self {
            device: device.into(),
            config,
            memoize: false,
        }
    }

    /// Builds the blueprint from an existing tester, inheriting its
    /// device, configuration, and memoization setting.
    pub fn from_ate(ate: &Ate) -> Self {
        Self {
            device: ate.device().clone(),
            config: ate.config().clone(),
            memoize: ate.memoization_enabled(),
        }
    }

    /// Enables oracle memoization on every spawned session.
    pub fn with_memoization(mut self) -> Self {
        self.memoize = true;
        self
    }

    /// The campaign seed worker seeds are derived from.
    pub fn campaign_seed(&self) -> u64 {
        self.config.seed
    }

    /// The blueprint configuration.
    pub fn config(&self) -> &AteConfig {
        &self.config
    }

    /// Spawns the tester session for work item `index`: a clone of the
    /// blueprint device and configuration with the per-item derived seed
    /// and a fresh ledger.
    pub fn session(&self, index: u64) -> Ate {
        let config = AteConfig {
            seed: derive_seed(self.config.seed, index),
            ..self.config.clone()
        };
        let session = Ate::with_config(self.device.clone(), config);
        if self.memoize {
            session.with_memoization()
        } else {
            session
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cichar_dut::MemoryDevice;
    use crate::params::MeasuredParam;
    use crate::noise::NoiseModel;
    use crate::drift::DriftModel;
    use cichar_patterns::{march, Test};

    fn noisy_config() -> AteConfig {
        AteConfig {
            noise: NoiseModel::default(),
            drift: DriftModel::none(),
            seed: 0xCAFE,
            ..AteConfig::default()
        }
    }

    #[test]
    fn same_index_replays_the_same_noisy_session() {
        let blueprint = ParallelAte::new(MemoryDevice::nominal(), noisy_config());
        let test = Test::deterministic("march_x", march::march_x(96));
        let run = || {
            let mut session = blueprint.session(3);
            (0..40)
                .map(|i| {
                    session
                        .measure(&test, MeasuredParam::DataValidTime, 31.0 + 0.05 * f64::from(i))
                        .is_pass()
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sessions_start_with_fresh_ledgers() {
        let blueprint = ParallelAte::new(MemoryDevice::nominal(), noisy_config());
        let test = Test::deterministic("march_x", march::march_x(96));
        let mut first = blueprint.session(0);
        let _ = first.measure(&test, MeasuredParam::DataValidTime, 20.0);
        assert_eq!(first.ledger().measurements(), 1);
        assert_eq!(blueprint.session(0).ledger().measurements(), 0);
    }

    #[test]
    fn memoization_flag_propagates_to_sessions() {
        let blueprint =
            ParallelAte::new(MemoryDevice::nominal(), AteConfig::default()).with_memoization();
        assert!(blueprint.session(0).memoization_enabled());
        let plain = ParallelAte::new(MemoryDevice::nominal(), AteConfig::default());
        assert!(!plain.session(0).memoization_enabled());
    }

    #[test]
    fn from_ate_inherits_the_blueprint() {
        let ate = Ate::with_config(MemoryDevice::nominal(), noisy_config()).with_memoization();
        let blueprint = ParallelAte::from_ate(&ate);
        assert_eq!(blueprint.campaign_seed(), 0xCAFE);
        assert!(blueprint.session(1).memoization_enabled());
    }
}
