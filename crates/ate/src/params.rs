//! The characterization parameters the ATE can strobe or force.

use cichar_search::RegionOrder;
use cichar_units::{ParamKind, ParamRange};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A device parameter whose trip point the ATE can search.
///
/// Each parameter knows its [`RegionOrder`] (which of §4's eq. 3 / eq. 4
/// applies), a *generous* default search range ("very generous starting
/// ranges should be selected", §4) and a sensible resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MeasuredParam {
    /// Data-output valid time `T_DQ`, measured by sweeping the output
    /// strobe delay. Pass at or below the window, fail beyond → eq. (3).
    DataValidTime,
    /// Maximum operating frequency, measured by sweeping the vector clock.
    /// Pass below `f_max`, fail above → eq. (3). §4's worked example.
    MaxFrequency,
    /// Minimum operating voltage, measured by sweeping Vdd downward.
    /// Pass above `vdd_min`, fail below → eq. (4).
    MinVoltage,
}

impl MeasuredParam {
    /// All searchable parameters.
    pub const ALL: [MeasuredParam; 3] = [
        MeasuredParam::DataValidTime,
        MeasuredParam::MaxFrequency,
        MeasuredParam::MinVoltage,
    ];

    /// The unit-tagged kind this parameter forces on the tester.
    pub fn kind(self) -> ParamKind {
        match self {
            MeasuredParam::DataValidTime => ParamKind::StrobeDelay,
            MeasuredParam::MaxFrequency => ParamKind::ClockFrequency,
            MeasuredParam::MinVoltage => ParamKind::SupplyVoltage,
        }
    }

    /// Which side of the trip point passes.
    pub fn region_order(self) -> RegionOrder {
        match self {
            MeasuredParam::DataValidTime => RegionOrder::PassBelowFail,
            MeasuredParam::MaxFrequency => RegionOrder::PassBelowFail,
            MeasuredParam::MinVoltage => RegionOrder::PassAboveFail,
        }
    }

    /// The generous default search range (§4's `CR`).
    ///
    /// For [`MeasuredParam::MaxFrequency`] this is the paper's own worked
    /// example: `S1 = 80 MHz`, `S2 = 130 MHz`, `CR = 50 MHz`.
    pub fn generous_range(self) -> ParamRange {
        match self {
            MeasuredParam::DataValidTime => ParamRange::new(5.0, 40.0),
            MeasuredParam::MaxFrequency => ParamRange::new(80.0, 130.0),
            MeasuredParam::MinVoltage => ParamRange::new(1.1, 2.1),
        }
        .expect("static ranges are valid")
    }

    /// Default search resolution.
    pub fn resolution(self) -> f64 {
        match self {
            MeasuredParam::DataValidTime => 0.05,
            MeasuredParam::MaxFrequency => 0.25,
            MeasuredParam::MinVoltage => 0.005,
        }
    }

    /// The forces that *relax* every non-measured parameter while this one
    /// is searched.
    ///
    /// §4: "characterization tests are aimed at characterizing independent
    /// parameters one at a time. The test conditions must be such that only
    /// the parameters being tested can cause test failure. All the other
    /// parameters must be relaxed so they can not cause test failures and
    /// false convergence." Concretely: timing is strobed at the specified
    /// 100 MHz operating rate regardless of the test's own clock, and the
    /// `Vdd_min` sweep slows the vector rate to 60 MHz so the frequency
    /// envelope can never masquerade as a voltage trip.
    pub fn relax_forces(self) -> &'static [(ParamKind, f64)] {
        match self {
            MeasuredParam::DataValidTime => &[(ParamKind::ClockFrequency, 100.0)],
            MeasuredParam::MinVoltage => &[(ParamKind::ClockFrequency, 60.0)],
            MeasuredParam::MaxFrequency => &[],
        }
    }

    /// Default search factor `SF` for search-until-trip-point (§4 suggests
    /// "1 MHz or 2 MHz per step" for the frequency example).
    pub fn search_factor(self) -> f64 {
        match self {
            MeasuredParam::DataValidTime => 0.25,
            MeasuredParam::MaxFrequency => 1.0,
            MeasuredParam::MinVoltage => 0.02,
        }
    }
}

impl fmt::Display for MeasuredParam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MeasuredParam::DataValidTime => "T_DQ (data output valid time)",
            MeasuredParam::MaxFrequency => "f_max (maximum operating frequency)",
            MeasuredParam::MinVoltage => "Vdd_min (minimum operating voltage)",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientations_match_equations() {
        assert_eq!(
            MeasuredParam::DataValidTime.region_order(),
            RegionOrder::PassBelowFail
        );
        assert_eq!(
            MeasuredParam::MaxFrequency.region_order(),
            RegionOrder::PassBelowFail
        );
        assert_eq!(
            MeasuredParam::MinVoltage.region_order(),
            RegionOrder::PassAboveFail
        );
    }

    #[test]
    fn frequency_range_is_the_papers_example() {
        let r = MeasuredParam::MaxFrequency.generous_range();
        assert_eq!(r.start(), 80.0);
        assert_eq!(r.end(), 130.0);
        assert_eq!(r.width(), 50.0);
    }

    #[test]
    fn kinds_carry_matching_units() {
        assert_eq!(MeasuredParam::DataValidTime.kind().unit_symbol(), "ns");
        assert_eq!(MeasuredParam::MaxFrequency.kind().unit_symbol(), "MHz");
        assert_eq!(MeasuredParam::MinVoltage.kind().unit_symbol(), "V");
    }

    #[test]
    fn resolutions_are_finer_than_ranges() {
        for p in MeasuredParam::ALL {
            assert!(p.resolution() < p.generous_range().width() / 10.0);
            assert!(p.search_factor() >= p.resolution());
        }
    }

    #[test]
    fn display_names_every_param() {
        for p in MeasuredParam::ALL {
            assert!(!p.to_string().is_empty());
        }
    }
}
