//! Multi-site tester: N sites share one test program, each keeping its own
//! device, ledger, noise/drift state, fault state and RNG streams.
//!
//! Real ATE amortizes touchdown cost by strobing many dies at once. The
//! simulator mirrors that: a [`MultiSiteAte`] is a vector of per-site
//! [`Ate`] sessions whose seeds derive from the campaign seed and the site
//! index ([`cichar_exec::derive_seed`]), so every site's verdict stream is
//! a pure function of its identity — bit-identical to running that site
//! alone, and therefore independent of how sites are grouped into
//! touchdowns, which site is strobed first, or how many worker threads the
//! campaign uses.
//!
//! The throughput win is structural: all sites of a touchdown apply the
//! *same* stimulus, and the stress breakdown of a stimulus depends only on
//! its pattern features (never on the die), so one
//! [`Device::stress_total`] hoist serves the entire batch. Each site's
//! measurement then runs the exact per-condition arithmetic of the
//! scalar path ([`Device::evaluate_with_stress`]).

use crate::ledger::MeasurementLedger;
use crate::tester::{Ate, AteConfig};
use cichar_dut::Device;
use cichar_patterns::{PatternFeatures, Test};
use cichar_search::Probe;
use cichar_units::ParamKind;

/// A touchdown's worth of tester sites sharing one test program.
///
/// # Examples
///
/// ```
/// use cichar_ate::{AteConfig, MultiSiteAte};
/// use cichar_dut::{Die, MemoryDevice};
/// use cichar_patterns::{march, PatternFeatures, Test};
/// use cichar_units::ParamKind;
///
/// let devices = vec![MemoryDevice::nominal(), MemoryDevice::nominal()];
/// let mut sites = MultiSiteAte::new(devices, AteConfig::default());
/// let test = Test::deterministic("march_x", march::march_x(96));
/// let pattern = test.pattern();
/// let features = PatternFeatures::extract(&pattern);
/// let verdicts = sites.measure_sites(
///     &features,
///     pattern.len() as u64,
///     &test,
///     &[(ParamKind::StrobeDelay, 15.0)],
/// );
/// assert_eq!(verdicts.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct MultiSiteAte {
    sites: Vec<Ate>,
    /// Whether every site shares one backend structure — the regime where
    /// a single stress hoist is provably identical to per-site hoists.
    uniform_surface: bool,
}

impl MultiSiteAte {
    /// Loads one device per site. Site `i`'s session seed is
    /// `derive_seed(config.seed, i)`, mirroring
    /// [`ParallelAte::session`](crate::ParallelAte::session), so per-site
    /// streams never alias and results are reproducible from the campaign
    /// seed alone.
    ///
    /// # Panics
    ///
    /// Panics when `devices` is empty — a touchdown needs at least one
    /// site.
    pub fn new<D: Into<Device>>(devices: Vec<D>, config: AteConfig) -> Self {
        let campaign = config.seed;
        let sites = devices
            .into_iter()
            .enumerate()
            .map(|(i, device)| {
                Ate::with_config(
                    device,
                    AteConfig {
                        seed: cichar_exec::derive_seed(campaign, i as u64),
                        ..config.clone()
                    },
                )
            })
            .collect();
        Self::from_sessions(sites)
    }

    /// Assembles a touchdown from caller-seeded sessions. The wafer runner
    /// uses this so a die's seed derives from its *global* die index, which
    /// makes results invariant under re-grouping dies into touchdowns of
    /// any site count.
    ///
    /// # Panics
    ///
    /// Panics when `sites` is empty.
    pub fn from_sessions(sites: Vec<Ate>) -> Self {
        assert!(!sites.is_empty(), "a touchdown needs at least one site");
        let uniform_surface = sites
            .windows(2)
            .all(|w| w[0].device().structural_key() == w[1].device().structural_key());
        Self {
            sites,
            uniform_surface,
        }
    }

    /// Number of sites on the touchdown.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// The per-site sessions.
    pub fn sites(&self) -> &[Ate] {
        &self.sites
    }

    /// One site's session.
    ///
    /// # Panics
    ///
    /// Panics when `site` is out of range.
    pub fn site(&self, site: usize) -> &Ate {
        &self.sites[site]
    }

    /// One site's session, mutably — per-site span installation, searches
    /// and quarantine accounting go through here.
    ///
    /// # Panics
    ///
    /// Panics when `site` is out of range.
    pub fn site_mut(&mut self, site: usize) -> &mut Ate {
        &mut self.sites[site]
    }

    /// Releases the per-site sessions (the wafer runner folds their
    /// ledgers after a touchdown completes).
    pub fn into_sessions(self) -> Vec<Ate> {
        self.sites
    }

    /// The campaign-level ledger: per-site ledgers folded in site order.
    /// Per-site accounting always reconciles with this merge — merging is
    /// column-wise addition, so any counter here equals the sum of that
    /// counter across [`Self::sites`].
    pub fn merged_ledger(&self) -> MeasurementLedger {
        let mut merged = MeasurementLedger::new();
        for site in &self.sites {
            merged.merge(site.ledger());
        }
        merged
    }

    /// Strobes every site once with the same stimulus and forces — the
    /// shared-test-program touchdown strobe. One stress hoist serves the
    /// whole batch; each site's verdict, noise draws, drift cycles and
    /// fault transitions are bit-identical to a scalar
    /// [`Ate::measure_features`] call on that site alone.
    pub fn measure_sites(
        &mut self,
        features: &PatternFeatures,
        pattern_cycles: u64,
        test: &Test,
        forces: &[(ParamKind, f64)],
    ) -> Vec<Probe> {
        let shared = self.shared_stress(features);
        (0..self.sites.len())
            .map(|site| {
                let stress = self.stress_for(site, features, shared);
                self.sites[site].measure_features_with_stress(
                    stress,
                    pattern_cycles,
                    test,
                    forces,
                )
            })
            .collect()
    }

    /// Strobes an explicit subset of sites, each at its own value of the
    /// swept parameter — the batched probe a lockstep cross-site search
    /// issues when its sites have diverged (different walk positions, or
    /// some sites already converged).
    ///
    /// `probes` pairs a site index with the value forced for `swept` on
    /// that site; `base_forces` (§4 relaxation) apply to every probe. The
    /// stress hoist is shared across the batch; verdicts come back in
    /// `probes` order. Each site's subsequence of probes is bit-identical
    /// to scalar measurements on that site in the same order — sites never
    /// share RNG, drift or fault state, so interleaving across sites is
    /// irrelevant.
    ///
    /// # Panics
    ///
    /// Panics when a probe names a site out of range.
    pub fn measure_subset(
        &mut self,
        features: &PatternFeatures,
        pattern_cycles: u64,
        test: &Test,
        base_forces: &[(ParamKind, f64)],
        swept: ParamKind,
        probes: &[(usize, f64)],
    ) -> Vec<Probe> {
        if probes.is_empty() {
            return Vec::new();
        }
        let shared = self.shared_stress(features);
        // One forces buffer reused across the batch: only the swept slot
        // changes per probe.
        let mut forces = base_forces.to_vec();
        forces.push((swept, 0.0));
        let swept_slot = forces.len() - 1;
        probes
            .iter()
            .map(|&(site, value)| {
                forces[swept_slot].1 = value;
                let stress = self.stress_for(site, features, shared);
                self.sites[site].measure_features_with_stress(
                    stress,
                    pattern_cycles,
                    test,
                    &forces,
                )
            })
            .collect()
    }

    /// The batch-wide stress total, when all sites share a surface.
    fn shared_stress(&self, features: &PatternFeatures) -> Option<f64> {
        self.uniform_surface
            .then(|| self.sites[0].device().stress_total(features))
    }

    /// A site's stress total: the shared hoist, or (heterogeneous
    /// surfaces — ablation rigs) its own device's.
    fn stress_for(&self, site: usize, features: &PatternFeatures, shared: Option<f64>) -> f64 {
        shared.unwrap_or_else(|| self.sites[site].device().stress_total(features))
    }
}

/// Minimum observations (measurements plus watchdog-abandoned tests) a
/// site must accumulate before its breaker may latch — small-sample fault
/// bursts must not condemn a healthy site.
const BREAKER_MIN_OBSERVATIONS: u64 = 8;

/// A per-site-position health circuit breaker for multi-site campaigns.
///
/// The wafer engine feeds it one per-touchdown ledger delta per site (in
/// the deterministic fold order) and evaluates trips only at **chunk
/// boundaries** via [`Self::end_chunk`] — so whether a site latches is a
/// pure function of the campaign schedule, never of thread interleaving.
/// Once latched, a breaker stays open for the rest of the campaign:
/// the engine excludes the site position from later touchdowns and
/// quarantines its tests instead of measuring them.
///
/// The health signal is the site's rolling fault rate: injected tester
/// faults plus watchdog-abandoned tests, over measurements performed.
///
/// # Examples
///
/// ```
/// use cichar_ate::{MeasurementLedger, SiteHealthBreaker};
///
/// let mut breaker = SiteHealthBreaker::new(0.5);
/// let mut sick = MeasurementLedger::new();
/// for _ in 0..10 {
///     sick.record(64, 100.0);
///     sick.record_dropout();
/// }
/// breaker.observe(1, &sick);
/// assert_eq!(breaker.end_chunk(), vec![1], "site 1 latches");
/// assert!(breaker.is_open(1));
/// assert!(!breaker.is_open(0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SiteHealthBreaker {
    threshold: f64,
    sites: Vec<SiteHealth>,
}

#[derive(Debug, Clone, Copy, Default)]
struct SiteHealth {
    measurements: u64,
    faults: u64,
    timeouts: u64,
    tripped: bool,
}

impl SiteHealthBreaker {
    /// A breaker that latches a site whose rolling fault rate reaches
    /// `threshold`.
    ///
    /// # Panics
    ///
    /// Panics unless `threshold` is in `(0, 1]` — a zero threshold would
    /// quarantine every site on its first fault-free chunk.
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold > 0.0 && threshold <= 1.0,
            "site fault threshold {threshold} outside (0, 1]"
        );
        Self {
            threshold,
            sites: Vec::new(),
        }
    }

    /// Accumulates one per-touchdown ledger delta for `site`. Call in the
    /// deterministic fold order (the wafer engine's per-touchdown,
    /// per-site merge loop) so replayed and live campaigns agree.
    pub fn observe(&mut self, site: usize, delta: &MeasurementLedger) {
        if site >= self.sites.len() {
            self.sites.resize(site + 1, SiteHealth::default());
        }
        let health = &mut self.sites[site];
        health.measurements += delta.measurements();
        health.faults += delta.injected_faults();
        health.timeouts += delta.timeouts();
    }

    /// Evaluates trip conditions at a chunk boundary, latching every site
    /// whose rolling fault rate reached the threshold. Returns the site
    /// positions that latched **on this call**, in ascending order.
    pub fn end_chunk(&mut self) -> Vec<usize> {
        let mut newly = Vec::new();
        for (site, health) in self.sites.iter_mut().enumerate() {
            if health.tripped {
                continue;
            }
            if health.measurements + health.timeouts < BREAKER_MIN_OBSERVATIONS {
                continue;
            }
            if Self::rate(health) >= self.threshold {
                health.tripped = true;
                newly.push(site);
            }
        }
        newly
    }

    /// Whether `site`'s breaker has latched open.
    pub fn is_open(&self, site: usize) -> bool {
        self.sites.get(site).is_some_and(|h| h.tripped)
    }

    /// The site's current rolling fault rate (0 when unobserved).
    pub fn fault_rate(&self, site: usize) -> f64 {
        self.sites.get(site).map_or(0.0, Self::rate)
    }

    /// Every latched site position, ascending.
    pub fn open_sites(&self) -> Vec<u64> {
        self.sites
            .iter()
            .enumerate()
            .filter(|(_, h)| h.tripped)
            .map(|(site, _)| site as u64)
            .collect()
    }

    fn rate(health: &SiteHealth) -> f64 {
        (health.faults + health.timeouts) as f64 / health.measurements.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cichar_dut::MemoryDevice;
    use crate::drift::DriftModel;
    use crate::fault::TesterFaultModel;
    use crate::noise::NoiseModel;
    use cichar_dut::{Die, ProcessCorner};
    use cichar_patterns::march;
    use proptest::prelude::*;

    fn march_test() -> Test {
        Test::deterministic("march_c-", march::march_c_minus(64))
    }

    fn harsh_config(seed: u64) -> AteConfig {
        AteConfig {
            noise: NoiseModel::new(0.05, 0.1, 0.01),
            drift: DriftModel::new(30.0, 1e5),
            faults: TesterFaultModel::transient(0.05, 0.05)
                .with_stuck_channels(0.02, 3)
                .with_session_aborts(0.01, 4),
            seed,
        }
    }

    fn corner_devices(n: usize) -> Vec<MemoryDevice> {
        let corners = [
            ProcessCorner::Typical,
            ProcessCorner::Fast,
            ProcessCorner::Slow,
            ProcessCorner::Noisy,
        ];
        (0..n)
            .map(|i| MemoryDevice::new(Die::at_corner(corners[i % corners.len()])))
            .collect()
    }

    /// A solo session identical to site `i` of `MultiSiteAte::new`.
    fn solo_site(i: usize, config: &AteConfig) -> Ate {
        let device = corner_devices(i + 1).pop().expect("device");
        Ate::with_config(
            device,
            AteConfig {
                seed: cichar_exec::derive_seed(config.seed, i as u64),
                ..config.clone()
            },
        )
    }

    #[test]
    fn touchdown_strobe_matches_solo_sessions_bit_exactly() {
        // The nastiest regime: noise, drift AND faults on, across four
        // sites with different dies.
        let config = harsh_config(0x5EED);
        let t = march_test();
        let pattern = t.pattern();
        let features = PatternFeatures::extract(&pattern);
        let cycles = pattern.len() as u64;
        let mut touchdown = MultiSiteAte::new(corner_devices(4), config.clone());

        let values: Vec<f64> = (0..40).map(|i| 25.0 + 0.3 * f64::from(i)).collect();
        let mut batched: Vec<Vec<Probe>> = vec![Vec::new(); 4];
        for &v in &values {
            let verdicts = touchdown.measure_sites(
                &features,
                cycles,
                &t,
                &[(ParamKind::StrobeDelay, v)],
            );
            for (site, verdict) in verdicts.into_iter().enumerate() {
                batched[site].push(verdict);
            }
        }

        for site in 0..4 {
            let mut solo = solo_site(site, &config);
            let scalar: Vec<Probe> = values
                .iter()
                .map(|&v| {
                    solo.measure_features(
                        &features,
                        cycles,
                        &t,
                        &[(ParamKind::StrobeDelay, v)],
                    )
                })
                .collect();
            assert_eq!(batched[site], scalar, "site {site} verdict stream");
            assert_eq!(
                *touchdown.site(site).ledger(),
                *solo.ledger(),
                "site {site} ledger"
            );
        }
    }

    #[test]
    fn merged_ledger_reconciles_with_per_site_ledgers() {
        let config = harsh_config(0xACC0);
        let t = march_test();
        let pattern = t.pattern();
        let features = PatternFeatures::extract(&pattern);
        let cycles = pattern.len() as u64;
        let mut touchdown = MultiSiteAte::new(corner_devices(3), config);
        for i in 0..30 {
            let _ = touchdown.measure_sites(
                &features,
                cycles,
                &t,
                &[(ParamKind::StrobeDelay, 28.0 + 0.2 * f64::from(i))],
            );
        }
        touchdown.site_mut(1).quarantine();

        let merged = touchdown.merged_ledger();
        let sum = |f: fn(&MeasurementLedger) -> u64| -> u64 {
            touchdown.sites().iter().map(|s| f(s.ledger())).sum()
        };
        assert_eq!(merged.measurements(), sum(MeasurementLedger::measurements));
        assert_eq!(merged.dropouts(), sum(MeasurementLedger::dropouts));
        assert_eq!(merged.flips(), sum(MeasurementLedger::flips));
        assert_eq!(merged.quarantined(), sum(MeasurementLedger::quarantined));
        assert_eq!(merged.quarantined(), 1);
        assert_eq!(merged.measurements(), 3 * 30);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The multi-site extension of the scalar-parity batch proptest:
        /// any interleaving of subset probes across any number of sites
        /// leaves each site's verdict stream and ledger bit-identical to
        /// a solo session consuming that site's subsequence — so site
        /// ordering and touchdown grouping can never change a result.
        #[test]
        fn subset_probes_match_solo_sessions(
            seed in any::<u64>(),
            site_count in 1usize..5,
            schedule in proptest::collection::vec((0usize..5, 20.0f64..40.0), 1..80),
            noisy in any::<bool>(),
            faulty in any::<bool>(),
        ) {
            let config = AteConfig {
                noise: if noisy { NoiseModel::new(0.05, 0.1, 0.01) } else { NoiseModel::noiseless() },
                drift: DriftModel::new(30.0, 1e5),
                faults: if faulty {
                    TesterFaultModel::transient(0.05, 0.05)
                        .with_stuck_channels(0.02, 3)
                        .with_session_aborts(0.01, 4)
                } else {
                    TesterFaultModel::none()
                },
                seed,
            };
            let t = march_test();
            let pattern = t.pattern();
            let features = PatternFeatures::extract(&pattern);
            let cycles = pattern.len() as u64;
            let base = MeasuredParam::DataValidTime.relax_forces().to_vec();
            let probes: Vec<(usize, f64)> = schedule
                .into_iter()
                .map(|(site, value)| (site % site_count, value))
                .collect();

            let mut touchdown = MultiSiteAte::new(corner_devices(site_count), config.clone());
            let verdicts = touchdown.measure_subset(
                &features,
                cycles,
                &t,
                &base,
                ParamKind::StrobeDelay,
                &probes,
            );
            prop_assert_eq!(verdicts.len(), probes.len());

            for site in 0..site_count {
                let mut solo = solo_site(site, &config);
                let scalar: Vec<Probe> = probes
                    .iter()
                    .filter(|(s, _)| *s == site)
                    .map(|&(_, v)| {
                        let mut forces = base.clone();
                        forces.push((ParamKind::StrobeDelay, v));
                        solo.measure_features(&features, cycles, &t, &forces)
                    })
                    .collect();
                let batched: Vec<Probe> = probes
                    .iter()
                    .zip(&verdicts)
                    .filter(|((s, _), _)| *s == site)
                    .map(|(_, &v)| v)
                    .collect();
                prop_assert_eq!(batched, scalar);
                prop_assert_eq!(*touchdown.site(site).ledger(), *solo.ledger());
            }
        }
    }

    use crate::params::MeasuredParam;

    fn ledger_with(measurements: u64, dropouts: u64, timeouts: u64) -> MeasurementLedger {
        let mut l = MeasurementLedger::new();
        for _ in 0..measurements {
            l.record(64, 100.0);
        }
        for _ in 0..dropouts {
            l.record_dropout();
        }
        for _ in 0..timeouts {
            l.record_timeout();
        }
        l
    }

    #[test]
    fn breaker_latches_only_past_threshold_and_min_observations() {
        let mut breaker = SiteHealthBreaker::new(0.5);
        // Faulty but under the observation floor: no trip yet.
        breaker.observe(0, &ledger_with(2, 2, 0));
        assert_eq!(breaker.end_chunk(), Vec::<usize>::new());
        assert!(!breaker.is_open(0));
        // More of the same pushes it over the floor and the threshold.
        breaker.observe(0, &ledger_with(6, 4, 0));
        assert_eq!(breaker.end_chunk(), vec![0]);
        assert!(breaker.is_open(0));
        assert_eq!(breaker.open_sites(), vec![0]);
        // Already-latched sites are not re-reported.
        breaker.observe(0, &ledger_with(4, 4, 0));
        assert_eq!(breaker.end_chunk(), Vec::<usize>::new());
    }

    #[test]
    fn healthy_sites_never_trip() {
        let mut breaker = SiteHealthBreaker::new(0.2);
        for _ in 0..50 {
            breaker.observe(0, &ledger_with(20, 1, 0));
            assert_eq!(breaker.end_chunk(), Vec::<usize>::new());
        }
        assert!(breaker.open_sites().is_empty());
        assert!(breaker.fault_rate(0) < 0.2);
        assert_eq!(breaker.fault_rate(7), 0.0, "unobserved sites are healthy");
    }

    #[test]
    fn watchdog_timeouts_count_toward_the_fault_rate() {
        let mut breaker = SiteHealthBreaker::new(0.5);
        // A site so hung it barely measures: timeouts alone must trip it.
        breaker.observe(2, &ledger_with(1, 0, 8));
        assert_eq!(breaker.end_chunk(), vec![2]);
        assert!(breaker.fault_rate(2) >= 0.5);
    }

    #[test]
    fn trips_evaluate_only_at_chunk_boundaries() {
        let mut breaker = SiteHealthBreaker::new(0.5);
        breaker.observe(1, &ledger_with(10, 10, 0));
        // No end_chunk yet: the site stays in service mid-chunk.
        assert!(!breaker.is_open(1));
        assert_eq!(breaker.end_chunk(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn breaker_rejects_zero_threshold() {
        let _ = SiteHealthBreaker::new(0.0);
    }
}
