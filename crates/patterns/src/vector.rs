//! Single-cycle test vectors and the device-under-test bus geometry.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Address bus width of the simulated memory test chip (64 Ki addresses).
pub const ADDR_BITS: u32 = 16;

/// Number of distinct addresses (`2^ADDR_BITS`).
pub const ADDR_SPACE: u32 = 1 << ADDR_BITS;

/// Data bus width in bits. `T_DQ` is measured on this bus.
pub const DATA_BITS: u32 = 16;

/// Bits of the address that select the row: `row = addr >> ROW_SHIFT`.
pub const ROW_SHIFT: u32 = 8;

/// Mask selecting the column bits of an address.
pub const COL_MASK: u16 = (1 << ROW_SHIFT) - 1;

/// One memory-bus operation, applied for one vector cycle.
///
/// # Examples
///
/// ```
/// use cichar_patterns::MemOp;
///
/// assert!(MemOp::Read.drives_outputs());
/// assert!(!MemOp::Write.drives_outputs());
/// assert_eq!(MemOp::Nop.to_string(), "NOP");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemOp {
    /// Write the vector's data word to the vector's address.
    Write,
    /// Read the vector's address; the data word is the expected value.
    Read,
    /// Idle cycle — address and data buses hold their previous state.
    Nop,
}

impl MemOp {
    /// Whether this operation makes the device drive its DQ outputs.
    ///
    /// Only reads produce output switching, which is what couples into the
    /// data-output valid time through simultaneous-switching noise.
    pub fn drives_outputs(self) -> bool {
        matches!(self, MemOp::Read)
    }

    /// Whether this operation consumes the data word on the bus.
    pub fn uses_data(self) -> bool {
        matches!(self, MemOp::Write | MemOp::Read)
    }
}

impl fmt::Display for MemOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemOp::Write => "W",
            MemOp::Read => "R",
            MemOp::Nop => "NOP",
        })
    }
}

/// One vector cycle: an operation, an address and a data word.
///
/// For [`MemOp::Write`] the data is driven into the device; for
/// [`MemOp::Read`] it is the value expected on DQ; for [`MemOp::Nop`] it is
/// ignored.
///
/// # Examples
///
/// ```
/// use cichar_patterns::{MemOp, TestVector};
///
/// let v = TestVector::new(MemOp::Write, 0x1234, 0x5555);
/// assert_eq!(v.row(), 0x12);
/// assert_eq!(v.col(), 0x34);
/// assert_eq!(format!("{v}"), "W @1234 =5555");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TestVector {
    /// The bus operation this cycle performs.
    pub op: MemOp,
    /// The address driven on the address bus.
    pub address: u16,
    /// The data word (driven for writes, expected for reads).
    pub data: u16,
}

impl TestVector {
    /// Creates a vector cycle.
    pub fn new(op: MemOp, address: u16, data: u16) -> Self {
        Self { op, address, data }
    }

    /// Convenience constructor for a write cycle.
    pub fn write(address: u16, data: u16) -> Self {
        Self::new(MemOp::Write, address, data)
    }

    /// Convenience constructor for a read cycle expecting `data`.
    pub fn read(address: u16, data: u16) -> Self {
        Self::new(MemOp::Read, address, data)
    }

    /// Convenience constructor for an idle cycle.
    pub fn nop() -> Self {
        Self::new(MemOp::Nop, 0, 0)
    }

    /// The row this address selects.
    pub fn row(self) -> u16 {
        self.address >> ROW_SHIFT
    }

    /// The column this address selects.
    pub fn col(self) -> u16 {
        self.address & COL_MASK
    }
}

impl fmt::Display for TestVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            MemOp::Nop => f.write_str("NOP"),
            op => write!(f, "{op} @{:04x} ={:04x}", self.address, self.data),
        }
    }
}

/// Number of bit positions in which two bus words differ.
///
/// This is the elementary measure behind every switching-activity feature:
/// each differing bit is one output driver toggling simultaneously.
///
/// # Examples
///
/// ```
/// use cichar_patterns::{MemOp, TestVector};
///
/// // 0x5555 -> 0xAAAA flips all 16 bus lines at once: worst-case SSO.
/// assert_eq!(cichar_patterns::hamming(0x5555, 0xAAAA), 16);
/// ```
pub fn hamming(a: u16, b: u16) -> u32 {
    (a ^ b).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn geometry_constants_are_consistent() {
        assert_eq!(ADDR_SPACE, 65_536);
        assert_eq!(COL_MASK, 0x00ff);
        assert_eq!(ADDR_BITS - ROW_SHIFT, 8, "256 rows");
    }

    #[test]
    fn row_col_partition_address() {
        let v = TestVector::read(0xBEEF, 0);
        assert_eq!(v.row(), 0xBE);
        assert_eq!(v.col(), 0xEF);
        assert_eq!(
            (v.row() << ROW_SHIFT) | v.col(),
            0xBEEF
        );
    }

    #[test]
    fn only_reads_drive_outputs() {
        assert!(MemOp::Read.drives_outputs());
        assert!(!MemOp::Write.drives_outputs());
        assert!(!MemOp::Nop.drives_outputs());
    }

    #[test]
    fn nop_ignores_data_in_display() {
        assert_eq!(TestVector::nop().to_string(), "NOP");
        assert_eq!(TestVector::write(1, 2).to_string(), "W @0001 =0002");
    }

    #[test]
    fn hamming_extremes() {
        assert_eq!(hamming(0, 0), 0);
        assert_eq!(hamming(0, u16::MAX), 16);
        assert_eq!(hamming(0x00ff, 0xff00), 16);
    }

    proptest! {
        #[test]
        fn hamming_is_symmetric(a: u16, b: u16) {
            prop_assert_eq!(hamming(a, b), hamming(b, a));
        }

        #[test]
        fn hamming_triangle_inequality(a: u16, b: u16, c: u16) {
            prop_assert!(hamming(a, c) <= hamming(a, b) + hamming(b, c));
        }

        #[test]
        fn row_col_reconstruct(addr: u16) {
            let v = TestVector::read(addr, 0);
            prop_assert_eq!((v.row() << ROW_SHIFT) | v.col(), addr);
        }
    }
}
