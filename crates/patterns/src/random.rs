//! The non-deterministic random test generator of the paper's refs \[9\]\[10\].
//!
//! §3 proposes determining the worst-case trip point "with respect to
//! different non-deterministic random tests" produced by "the random test
//! generator based on [9-10]". Those companion papers randomize both the
//! stimulus structure and the test conditions; we reproduce that by drawing
//! a random [`SegmentProgram`] (random segment count, random sequencing
//! modes and parameters) plus random [`TestConditions`] from a
//! [`ConditionSpace`].

use crate::conditions::{ConditionSpace, TestConditions};
use crate::program::{AddrMode, DataMode, OpMode, Segment, SegmentProgram};
use crate::test::{Test, TestSource};
use rand::Rng;

/// Draws a random ALPG segment.
pub fn random_segment<R: Rng + ?Sized>(rng: &mut R) -> Segment {
    let op = match rng.gen_range(0..5) {
        0 => OpMode::WriteOnly,
        1 => OpMode::ReadOnly,
        2 => OpMode::WritePairRead,
        3 => OpMode::AlternateWriteRead,
        _ => OpMode::WriteOnceReadBurst,
    };
    let addr = match rng.gen_range(0..5) {
        0 => AddrMode::Sequential {
            stride: rng.gen_range(-8i16..=8),
        },
        1 => AddrMode::Toggle { mask: rng.gen() },
        2 => AddrMode::Hold,
        3 => AddrMode::Lcg { seed: rng.gen() },
        _ => AddrMode::RowBounce {
            distance: rng.gen_range(1..=128),
        },
    };
    let data = match rng.gen_range(0..5) {
        0 => DataMode::Constant(rng.gen()),
        1 => DataMode::Alternating(rng.gen()),
        2 => DataMode::InvertPrevious,
        3 => DataMode::WalkingOne,
        _ => DataMode::Lcg(rng.gen()),
    };
    Segment::new(op, addr, data, rng.gen_range(2..=125), rng.gen())
        .expect("sampled length is in range")
}

/// Draws a random segment program with 2–8 segments.
pub fn random_program<R: Rng + ?Sized>(rng: &mut R) -> SegmentProgram {
    let count = rng.gen_range(2..=SegmentProgram::MAX_SEGMENTS);
    let segments = (0..count).map(|_| random_segment(rng)).collect();
    SegmentProgram::new(segments)
        .expect("sampled count is in range")
        .with_loops(rng.gen_range(1..=10))
}

/// Draws a complete random test: random program and random conditions.
///
/// # Examples
///
/// ```
/// use cichar_patterns::{random::random_test, ConditionSpace};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let test = random_test(&mut rng, &ConditionSpace::default());
/// assert!(test.pattern().len() >= 100);
/// assert!(ConditionSpace::default().validate(test.conditions()).is_ok());
/// ```
pub fn random_test<R: Rng + ?Sized>(rng: &mut R, space: &ConditionSpace) -> Test {
    let program = random_program(rng);
    let conditions = space.sample(rng);
    Test::from_program(
        format!("random_{:08x}", rng.gen::<u32>()),
        TestSource::Random,
        program,
        conditions,
    )
}

/// Draws a random test at fixed (typically nominal) conditions.
///
/// Table 1's *Random* row varies only the stimulus at Vdd = 1.8 V; this is
/// the generator for that row.
pub fn random_test_at<R: Rng + ?Sized>(rng: &mut R, conditions: TestConditions) -> Test {
    let program = random_program(rng);
    Test::from_program(
        format!("random_{:08x}", rng.gen::<u32>()),
        TestSource::Random,
        program,
        conditions,
    )
}

/// Draws `count` random tests.
pub fn random_suite<R: Rng + ?Sized>(
    rng: &mut R,
    space: &ConditionSpace,
    count: usize,
) -> Vec<Test> {
    (0..count).map(|_| random_test(rng, space)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn random_programs_expand_in_window() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let p = random_program(&mut rng).expand();
            assert!(p.len() >= crate::MIN_PATTERN_LEN);
            assert!(p.len() <= crate::MAX_PATTERN_LEN);
        }
    }

    #[test]
    fn random_tests_are_distinct() {
        let mut rng = StdRng::seed_from_u64(12);
        let space = ConditionSpace::default();
        let hashes: HashSet<u64> = (0..50)
            .map(|_| random_test(&mut rng, &space).pattern().content_hash())
            .collect();
        assert!(hashes.len() > 45, "only {} distinct patterns", hashes.len());
    }

    #[test]
    fn random_test_is_reproducible_by_seed() {
        let space = ConditionSpace::default();
        let a = random_test(&mut StdRng::seed_from_u64(99), &space);
        let b = random_test(&mut StdRng::seed_from_u64(99), &space);
        assert_eq!(a.pattern(), b.pattern());
        assert_eq!(a.conditions(), b.conditions());
    }

    #[test]
    fn random_test_at_pins_conditions() {
        let mut rng = StdRng::seed_from_u64(5);
        let nominal = TestConditions::nominal();
        for _ in 0..20 {
            let t = random_test_at(&mut rng, nominal);
            assert_eq!(*t.conditions(), nominal);
        }
    }

    #[test]
    fn random_suite_has_requested_size_and_source() {
        let mut rng = StdRng::seed_from_u64(6);
        let suite = random_suite(&mut rng, &ConditionSpace::default(), 17);
        assert_eq!(suite.len(), 17);
        assert!(suite.iter().all(|t| t.source() == TestSource::Random));
    }

    #[test]
    fn random_segments_cover_all_op_modes() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = HashSet::new();
        for _ in 0..200 {
            seen.insert(std::mem::discriminant(&random_segment(&mut rng).op));
        }
        assert_eq!(seen.len(), 5, "all five op modes should appear");
    }
}
